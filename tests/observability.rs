//! End-to-end observability: a tracer installed through the facade sees
//! every layer — tuner phases, profiling instants, dispatch spans and
//! simulator launches — and the exported artifacts are well-formed.

use std::sync::Arc;

use nitro::core::{ClassifierConfig, Context};
use nitro::simt::DeviceConfig;
use nitro::trace::{validate_chrome_trace, ChromeSink, MetricsSnapshot, RegretLedger, Tracer};
use nitro::tuner::{Autotuner, ProfileTable};

/// One test exercises the whole traced pipeline: the process-global slot
/// (which the simulator layer reads) is shared state, so the simt
/// assertions must not race with other traced tests in this binary.
#[test]
fn traced_sort_pipeline_emits_valid_artifacts() {
    let ctx = Context::new();
    let mut cv = nitro::sort::variants::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let (train, test) = nitro::sort::keys::sort_small_sets(0x0B5);

    let sink = Arc::new(ChromeSink::new());
    let tracer = Tracer::new(sink.clone());
    ctx.install_tracer(tracer.clone());
    cv.declare_tracer_metrics(&tracer);
    nitro::trace::install_global(tracer.clone());

    let report = Autotuner::new().tune(&mut cv, &train).unwrap();
    let phases: Vec<&str> = report
        .phase_timings
        .iter()
        .map(|p| p.phase.as_str())
        .collect();
    assert_eq!(
        phases,
        vec!["profiling", "labeling", "training", "evaluation"]
    );

    // Ground truth for regret accounting, then dispatch every test input.
    let table = ProfileTable::build(&cv, &test);
    let mut ledger = RegretLedger::new(3);
    for (i, input) in test.iter().enumerate() {
        let inv = cv.call(input).unwrap();
        ledger.record(&format!("sort[{i}]"), inv.variant, &table.costs[i]);
    }
    // The radix variant is vetoed on 64-bit keys (its cost row holds the
    // paper's ∞ sentinel), and the ledger only accounts rows with a full
    // finite cost vector — so the expected count is the finite subset.
    let finite_rows = table
        .costs
        .iter()
        .filter(|row| row.iter().all(|c| c.is_finite()))
        .count();
    assert_eq!(ledger.count as usize, finite_rows);
    assert!(finite_rows > 0, "no fully-finite cost rows in test set");
    assert!(
        ledger.oracle_fraction() > 0.5,
        "{}",
        ledger.oracle_fraction()
    );

    nitro::trace::uninstall_global();
    ctx.clear_tracer();

    // The Chrome document passes the strict-nesting validator and saw
    // all three instrumented layers.
    let stats = validate_chrome_trace(&sink.to_chrome_json()).expect("valid chrome trace");
    assert!(stats.spans > 0, "no spans recorded");
    assert!(stats.instants > 0, "no instants recorded");
    let events = sink.snapshot();
    for cat in ["dispatch", "tuning", "profile", "simt"] {
        assert!(
            events.iter().any(|e| e.cat == cat),
            "no '{cat}' events in trace"
        );
    }

    // Metrics cover dispatch, profiling and the simulator, and the
    // snapshot round-trips through its JSON form.
    let snap = tracer.metrics().snapshot();
    assert_eq!(snap.counter("dispatch.sort.calls"), Some(test.len() as u64));
    assert!(snap.counter("profile.sort.inputs").unwrap_or(0) > 0);
    assert!(snap.counter("simt.launches").unwrap_or(0) > 0);
    assert!(snap.gauge("tune.sort.training_ns").is_some());
    assert!(snap.histogram("dispatch.sort.predict_ns").is_some());

    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("metrics round-trip");
    assert_eq!(back.counters, snap.counters);
    assert_eq!(back.gauges.len(), snap.gauges.len());

    // The runtime-metrics audit accepts the snapshot (no error-severity
    // findings on a healthy run).
    let diags = nitro::audit::analyze_metrics(&snap, &nitro::audit::MetricsAuditConfig::default());
    assert!(
        !nitro::audit::has_errors(&diags),
        "{}",
        nitro::audit::render_text(&diags)
    );
}
