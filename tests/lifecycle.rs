//! Integration tests for `nitro-store`'s durability guarantees, driven
//! through the public facade:
//!
//! * a durable tune killed at an **arbitrary byte offset** of its journal
//!   resumes to a byte-identical artifact — with and without a seeded
//!   `nitro-simt` fault plan injecting launch failures underneath;
//! * seeded corruption of a stored artifact (bit flips, truncation) is
//!   always detected and never installed: loads fail with `NITRO071`,
//!   intact-fallback walks back to an uncorrupted version, and rollback
//!   refuses corrupt targets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use nitro::core::context::temp_model_dir;
use nitro::core::{ClassifierConfig, CodeVariant, Context, FnFeature, FnVariant};
use nitro::simt::{
    install_fault_plan, silence_injected_panics, uninstall_fault_plan, DeviceConfig, FaultPlan,
};
use nitro::store::{ArtifactStore, TuningJournal};
use nitro::tuner::Autotuner;
use proptest::prelude::*;

/// Unique scratch directory per proptest case.
fn case_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    temp_model_dir(&format!("{tag}-{n}")).expect("temp dir")
}

/// Toy function with an input-dependent winner (no simulated kernels, so
/// fault plans do not apply here).
fn toy(ctx: &Context) -> CodeVariant<f64> {
    let mut cv = CodeVariant::new("lifecycle-toy", ctx);
    cv.add_variant(FnVariant::new("low", |&x: &f64| 1.0 + x));
    cv.add_variant(FnVariant::new("high", |&x: &f64| 11.0 - x));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    cv
}

fn toy_inputs() -> Vec<f64> {
    (0..24).map(|i| ((i * 37) % 100) as f64 / 10.0).collect()
}

/// The uninterrupted toy run: full journal bytes + final artifact JSON.
fn toy_reference() -> &'static (Vec<u8>, String) {
    static REF: OnceLock<(Vec<u8>, String)> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = case_dir("journal-ref");
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let mut journal = TuningJournal::open(&path).unwrap();
        Autotuner::new()
            .tune_durable(&mut cv, &toy_inputs(), &mut journal)
            .unwrap();
        drop(journal);
        let bytes = std::fs::read(&path).unwrap();
        let json = cv.export_artifact().unwrap().to_json().unwrap();
        std::fs::remove_dir_all(dir).ok();
        (bytes, json)
    })
}

/// SpMV under a seeded fault plan: the reference artifact for the
/// fault-injected resume test. The plan is deterministic per
/// `(seed, gpu seed, kernel, launch index)` and profiling uses a fresh
/// device per cell, so killed-and-resumed runs see identical faults.
fn spmv_reference() -> &'static (Vec<u8>, String, Vec<nitro::sparse::spmv::SpmvInput>) {
    static REF: OnceLock<(Vec<u8>, String, Vec<nitro::sparse::spmv::SpmvInput>)> = OnceLock::new();
    REF.get_or_init(|| {
        silence_injected_panics();
        let (train, _) = nitro::sparse::collection::spmv_small_sets(42);
        let dir = case_dir("spmv-ref");
        let path = dir.join("spmv.journal.jsonl");
        install_fault_plan(FaultPlan::with_failure_prob(7, 0.05));
        let ctx = Context::new();
        let mut cv = nitro::sparse::spmv::build_code_variant(&ctx, &DeviceConfig::default());
        let mut journal = TuningJournal::open(&path).unwrap();
        Autotuner::new()
            .tune_durable(&mut cv, &train, &mut journal)
            .unwrap();
        uninstall_fault_plan();
        drop(journal);
        let bytes = std::fs::read(&path).unwrap();
        let json = cv.export_artifact().unwrap().to_json().unwrap();
        std::fs::remove_dir_all(dir).ok();
        (bytes, json, train)
    })
}

proptest! {

    /// Kill the journal at ANY byte offset — mid-record, mid-line, on a
    /// boundary, even before the header — and the resumed run must
    /// produce an artifact byte-identical to the uninterrupted one.
    #[test]
    fn resume_from_any_byte_offset_is_bit_identical(frac in 0.0f64..1.0) {
        let (full, want) = toy_reference();
        let cut = ((full.len() as f64) * frac) as usize;
        let dir = case_dir("journal-cut");
        let path = dir.join("toy.journal.jsonl");
        std::fs::write(&path, &full[..cut]).unwrap();

        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let mut journal = TuningJournal::open(&path).unwrap();
        // A cut landing mid-line must be reported as a torn tail.
        let torn = cut > 0 && full[..cut].split(|&b| b == b'\n').next_back().is_some_and(|l| !l.is_empty());
        if torn {
            prop_assert!(
                journal.recovery_diagnostics().iter().any(|d| d.code == "NITRO070"),
                "cut at {cut} left a torn tail but no NITRO070: {:?}",
                journal.recovery_diagnostics()
            );
        }
        Autotuner::new().tune_durable(&mut cv, &toy_inputs(), &mut journal).unwrap();
        drop(journal);

        let got = cv.export_artifact().unwrap().to_json().unwrap();
        prop_assert_eq!(&got, want, "resume from byte offset {} diverged", cut);
        std::fs::remove_dir_all(dir).ok();
    }
}

proptest! {

    /// Same guarantee with a seeded `nitro-simt` fault plan killing ~5%
    /// of kernel launches underneath the profiler: faults are part of
    /// the deterministic run, so resume is still bit-identical.
    #[test]
    fn resume_under_fault_plan_is_bit_identical(frac in 0.0f64..1.0) {
        let (full, want, train) = spmv_reference();
        let cut = ((full.len() as f64) * frac) as usize;
        let dir = case_dir("spmv-cut");
        let path = dir.join("spmv.journal.jsonl");
        std::fs::write(&path, &full[..cut]).unwrap();

        silence_injected_panics();
        install_fault_plan(FaultPlan::with_failure_prob(7, 0.05));
        let ctx = Context::new();
        let mut cv = nitro::sparse::spmv::build_code_variant(&ctx, &DeviceConfig::default());
        let mut journal = TuningJournal::open(&path).unwrap();
        let report = Autotuner::new().tune_durable(&mut cv, train, &mut journal);
        uninstall_fault_plan();
        let report = report.unwrap();
        drop(journal);

        let got = cv.export_artifact().unwrap().to_json().unwrap();
        prop_assert_eq!(&got, want, "fault-plan resume from byte offset {} diverged", cut);
        // Any cut past the first full row must replay something.
        if cut > full.len() / 4 {
            prop_assert!(report.replayed_cells > 0);
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

proptest! {

    /// Seeded corruption of the newest stored version — a flipped byte or
    /// a truncation at an arbitrary offset — is always detected, never
    /// installed, and never blocks fallback to the intact predecessor.
    #[test]
    fn corrupt_versions_are_detected_and_never_installed(
        frac in 0.0f64..1.0,
        flip in 0u16..=256 // 256 = truncate, otherwise flip to this byte
    ) {
        let dir = case_dir("store-corrupt");
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        Autotuner::new().tune(&mut cv, &toy_inputs()).unwrap();
        let artifact = cv.export_artifact().unwrap();
        let clean_json = artifact.to_json().unwrap();

        let mut store = ArtifactStore::open(&dir, "lifecycle-toy").unwrap();
        let v1 = store.publish(&artifact, "v1").unwrap();
        let v2 = store.publish(&artifact, "v2").unwrap();

        // Corrupt v2's bytes: truncate at `frac`, or flip one byte to a
        // guaranteed-different value.
        let path = dir.join("lifecycle-toy").join(format!("v{v2:06}.model.json"));
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (((bytes.len() - 1) as f64) * frac) as usize;
        if flip == 256 {
            bytes.truncate(at);
        } else {
            let b = flip as u8;
            bytes[at] = if bytes[at] == b { b.wrapping_add(1) } else { b };
        }
        std::fs::write(&path, &bytes).unwrap();

        // Direct load of the corrupt version must fail with NITRO071.
        let err = store.load(v2).expect_err("corrupt version must not load");
        prop_assert!(
            err.diagnostics().iter().any(|d| d.code == "NITRO071"),
            "{err:?}"
        );
        // verify() reports it too.
        prop_assert!(store.verify().iter().any(|d| d.code == "NITRO071"));
        // Intact fallback skips it and serves v1 — bit-identical to what
        // was published, proving the corrupt bytes were never installed.
        let (loaded, diags) = store.load_latest_intact();
        let (version, recovered) = loaded.expect("v1 is intact");
        prop_assert_eq!(version, v1);
        prop_assert_eq!(recovered.to_json().unwrap(), clean_json);
        prop_assert!(diags.iter().any(|d| d.code == "NITRO071"));
        // Rolling back INTO corruption is refused.
        prop_assert!(store.rollback(v2).is_err());
        // Rolling back to the intact version works and repoints latest.
        store.rollback(v1).unwrap();
        prop_assert_eq!(store.latest(), Some(v1));
        std::fs::remove_dir_all(dir).ok();
    }
}
