//! Integration tests for the extension features, driven through the
//! public facade: online tuning, Matrix Market I/O, variant families and
//! the energy objective.

use nitro::core::{ClassifierConfig, Context};
use nitro::simt::DeviceConfig;
use nitro::tuner::{Autotuner, OnlineCodeVariant, OnlineOptions, ProfileTable};

#[test]
fn online_tuning_learns_sort_selection_in_production() {
    let ctx = Context::new();
    let mut cv = nitro::sort::variants::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let mut online = OnlineCodeVariant::new(cv, OnlineOptions::default());

    // Live traffic alternating between regimes.
    for i in 0..48 {
        let wide = i % 2 == 0;
        let category = if i % 3 == 0 {
            "almost_sorted"
        } else {
            "uniform"
        };
        let input = nitro::sort::keys::generate(category, 3_000, wide, i as u64, &format!("t/{i}"));
        online.call(&input).unwrap();
    }
    assert!(online.inner().has_model());
    assert!(online.stats().retrains >= 1);

    // The learned model routes 32-bit uniform keys to Radix.
    let mut cv = online.into_inner();
    let probe = nitro::sort::keys::generate("uniform", 3_000, false, 999, "probe");
    assert_eq!(cv.call(&probe).unwrap().variant_name, "Radix");
}

#[test]
fn mtx_files_feed_the_spmv_pipeline() {
    let dir = std::env::temp_dir().join(format!("nitro-ext-mtx-{}", std::process::id()));
    let (train, _) = nitro::sparse::collection::spmv_small_sets(0x717);
    nitro::sparse::io::export_collection(&train, &dir).unwrap();

    let loaded = nitro::sparse::io::load_collection(&dir).unwrap();
    assert_eq!(loaded.len(), train.len());

    let ctx = Context::new();
    let mut cv = nitro::sparse::spmv::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let report = Autotuner::new().tune(&mut cv, &loaded).unwrap();
    assert_eq!(report.training_inputs, train.len());
    assert!(cv.has_model());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn energy_and_time_objectives_produce_valid_tables() {
    use nitro::sparse::spmv::{build_code_variant_metric, SpmvMetric};
    let ctx = Context::new();
    let cfg = DeviceConfig::fermi_c2050();
    let (_, test) = nitro::sparse::collection::spmv_small_sets(0x88);
    let subset = &test[..6];

    let time_cv = build_code_variant_metric(&ctx, &cfg, SpmvMetric::Time);
    let energy_cv = build_code_variant_metric(&ctx, &cfg, SpmvMetric::Energy);
    let tt = ProfileTable::build(&time_cv, subset);
    let et = ProfileTable::build(&energy_cv, subset);
    for i in 0..subset.len() {
        for v in 0..tt.n_variants() {
            let (t, e) = (tt.costs[i][v], et.costs[i][v]);
            assert_eq!(t.is_finite(), e.is_finite(), "veto sets must agree");
            if t.is_finite() {
                assert!(t > 0.0 && e > 0.0);
                // Energy is never cheaper than the static floor over the
                // elapsed time.
                assert!(
                    e >= t * cfg.static_watts * 0.99,
                    "input {i} variant {v}: {e} vs {t}"
                );
            }
        }
    }
}

#[test]
fn variant_family_tunes_through_public_api() {
    let ctx = Context::new();
    let mut cv = nitro::core::CodeVariant::<f64>::new("family", &ctx);
    cv.add_variant_family("poly", vec![1u32, 2, 3], |&p, &x: &f64| {
        (x - p as f64 * 3.0).abs()
    });
    cv.set_default(0);
    cv.add_input_feature(nitro::core::FnFeature::new("x", |&x: &f64| x));
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    let train: Vec<f64> = (0..30).map(|i| i as f64 / 3.0).collect();
    Autotuner::new().tune(&mut cv, &train).unwrap();
    assert_eq!(cv.call(&9.1).unwrap().variant_name, "poly@3");
    assert_eq!(cv.call(&2.9).unwrap().variant_name, "poly@1");
}
