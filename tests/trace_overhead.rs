//! Disabled-tracer overhead: with no tracer installed, the dispatch hot
//! path must not allocate on account of the instrumentation.
//!
//! A counting global allocator measures allocations across identical
//! dispatch batches. Dispatch itself allocates (the returned
//! `Invocation` owns a name and a feature vector), so the test compares
//! *identical* batches — their counts must match exactly, proving the
//! tracer check adds nothing nondeterministic — and separately asserts
//! the bare `Context::tracer()` probe allocates zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Count allocations during `f`. Only valid while nothing else runs —
/// which is why this file holds exactly one test.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn untraced_dispatch_adds_no_allocations() {
    use nitro::core::{CodeVariant, Context, FnFeature, FnVariant};
    use nitro::trace::{RingSink, Tracer};

    let ctx = Context::new();
    let mut cv = CodeVariant::<f64>::new("overhead", &ctx);
    cv.add_variant(FnVariant::new("a", |&x: &f64| x + 1.0));
    cv.add_variant(FnVariant::new("b", |&x: &f64| 10.0 - x));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));

    const BATCH: usize = 64;
    let run_batch = |cv: &mut CodeVariant<f64>| {
        for i in 0..BATCH {
            cv.call(&(i as f64)).unwrap();
        }
    };

    // Warm up lazily-initialized state (stats maps, thread-ids, …).
    run_batch(&mut cv);

    // Steady state: two identical untraced batches allocate identically.
    let first = allocations_during(|| run_batch(&mut cv));
    let second = allocations_during(|| run_batch(&mut cv));
    assert_eq!(
        first, second,
        "untraced dispatch batches must allocate deterministically"
    );

    // The disabled-path probe itself: checking for a tracer is free.
    let probe = allocations_during(|| {
        for _ in 0..BATCH {
            assert!(ctx.tracer().is_none());
        }
    });
    assert_eq!(probe, 0, "tracer probe must not allocate when disabled");

    // Sanity check the measurement: with a tracer installed, the same
    // batch must allocate strictly more (spans, args, ring entries).
    let tracer = Tracer::new(Arc::new(RingSink::new(4096)));
    ctx.install_tracer(tracer);
    let traced = allocations_during(|| run_batch(&mut cv));
    assert!(
        traced > second,
        "traced batch ({traced}) should allocate more than untraced ({second})"
    );
    ctx.clear_tracer();

    // The compiled-SVM prediction fast path: once the scratch buffers
    // are warm, `predict_into` must allocate NOTHING — not
    // "deterministically", but literally zero.
    {
        use nitro::ml::{ClassifierConfig, Dataset, PredictScratch, TrainedModel};

        let data = Dataset::from_parts(
            (0..24).map(|i| vec![i as f64, (24 - i) as f64]).collect(),
            (0..24).map(|i| usize::from(i >= 12)).collect(),
        );
        let model = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        let mut scratch = PredictScratch::default();
        // Warm-up: compiles the model (OnceLock) and sizes every buffer.
        for x in &data.x {
            model.predict_into(x, &mut scratch);
        }
        let steady = allocations_during(|| {
            for _ in 0..4 {
                for x in &data.x {
                    std::hint::black_box(model.predict_into(x, &mut scratch));
                }
            }
        });
        assert_eq!(
            steady, 0,
            "steady-state predict_into must be allocation-free"
        );
        // And it agrees with the allocating entry point.
        for x in &data.x {
            assert_eq!(model.predict_into(x, &mut scratch), model.predict(x));
        }
    }
}
