//! Cross-crate integration: the full Nitro pipeline — register variants,
//! tune, persist, reload, dispatch — on real benchmark substrates.

use nitro::core::{ClassifierConfig, Context};
use nitro::simt::DeviceConfig;
use nitro::tuner::{evaluate_fixed_variant, evaluate_model, Autotuner, ProfileTable};

fn fast_svm() -> ClassifierConfig {
    ClassifierConfig::Svm {
        c: Some(32.0),
        gamma: Some(1.0),
        grid_search: false,
        cache_bytes: None,
    }
}

#[test]
fn sort_pipeline_beats_every_fixed_variant() {
    let ctx = Context::new();
    let mut cv = nitro::sort::variants::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    cv.policy_mut().classifier = fast_svm();
    let (train, test) = nitro::sort::keys::sort_small_sets(0xE2E);
    let table = ProfileTable::build(&cv, &test);
    let (_, nitro) = Autotuner::new()
        .tune_and_evaluate(&mut cv, &train, &table)
        .unwrap();
    assert!(nitro.mean_relative_perf > 0.9, "{nitro:?}");
    for v in 0..cv.n_variants() {
        let fixed = evaluate_fixed_variant(&table, v);
        assert!(fixed.mean_relative_perf <= nitro.mean_relative_perf + 1e-9);
    }
}

#[test]
fn histogram_pipeline_handles_skewed_distributions() {
    let ctx = Context::new();
    let mut cv = nitro::histogram::variants::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let (train, test) = nitro::histogram::data::hist_small_sets(0xE2E);
    let table = ProfileTable::build(&cv, &test);
    let (_, nitro) = Autotuner::new()
        .tune_and_evaluate(&mut cv, &train, &table)
        .unwrap();
    assert!(nitro.mean_relative_perf > 0.85, "{nitro:?}");
}

#[test]
fn bfs_pipeline_selects_per_topology() {
    let ctx = Context::new();
    let cfg = DeviceConfig::fermi_c2050();
    let mut cv = nitro::graph::bfs::build_code_variant(&ctx, &cfg);
    cv.policy_mut().classifier = fast_svm();
    let (train, test) = nitro::graph::collection::bfs_small_sets(0xE2E);
    let table = ProfileTable::build(&cv, &test);
    let (_, nitro) = Autotuner::new()
        .tune_and_evaluate(&mut cv, &train, &table)
        .unwrap();
    assert!(nitro.mean_relative_perf > 0.85, "{nitro:?}");

    // The tuned dispatcher should not collapse to one variant across the
    // test topologies.
    let model = cv.export_artifact().unwrap().model;
    let mut distinct = std::collections::HashSet::new();
    for i in 0..table.len() {
        distinct.insert(model.predict(&table.features[i]));
    }
    assert!(
        distinct.len() >= 2,
        "model collapsed to one variant: {distinct:?}"
    );
}

#[test]
fn solver_pipeline_avoids_non_converging_variants() {
    let ctx = Context::new();
    let cfg = DeviceConfig::fermi_c2050();
    let mut cv = nitro::solvers::variants::build_code_variant(&ctx, &cfg);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let (train, test) = nitro::solvers::collection::solver_small_sets(0xE2E);
    let table = ProfileTable::build(&cv, &test);
    Autotuner::new().tune(&mut cv, &train).unwrap();
    let model = cv.export_artifact().unwrap().model;
    let s = evaluate_model(&table, &model, cv.default_variant());
    assert!(s.mean_relative_perf > 0.6, "{s:?}");
    // On inputs where some variant fails, the pipeline should rarely pick
    // a failing one (failures => relative perf 0).
    assert!(
        s.failures <= s.n_inputs / 4,
        "too many failing selections: {s:?}"
    );
}

#[test]
fn model_artifacts_round_trip_between_library_instances() {
    let dir = std::env::temp_dir().join(format!("nitro-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ctx = Context::with_model_dir(&dir);
    let cfg = DeviceConfig::fermi_c2050();

    // Process 1: tune and save.
    {
        let mut cv = nitro::sort::variants::build_code_variant(&ctx, &cfg);
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
        let (train, _) = nitro::sort::keys::sort_small_sets(0xAB);
        Autotuner {
            save_model: true,
            ..Default::default()
        }
        .tune(&mut cv, &train)
        .unwrap();
    }

    // Process 2: fresh context over the same directory.
    let ctx2 = Context::with_model_dir(&dir);
    let mut cv = nitro::sort::variants::build_code_variant(&ctx2, &cfg);
    cv.load_model().expect("artifact loads");
    let input = nitro::sort::keys::generate("uniform", 4_000, false, 3, "rt");
    let outcome = cv.call(&input).unwrap();
    assert_eq!(
        outcome.variant_name, "Radix",
        "32-bit uniform keys should go to radix"
    );
    std::fs::remove_dir_all(dir).ok();
}
