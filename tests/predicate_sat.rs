//! Property tests for the whole-configuration satisfiability engine:
//! randomly generated predicate trees and profile tables, checked
//! against brute-force evaluation. The load-bearing invariant is
//! one-directional soundness — when the analyzer says *unsatisfiable*
//! (and therefore "statically dead variant", `NITRO080`), no input may
//! exist that satisfies the predicate. Failing to prove emptiness only
//! suppresses findings and is always safe.

use nitro::audit::sat::{self, Sat};
use nitro::audit::{analyze_graph, TuningGraph};
use nitro::core::{CmpOp, CodeVariant, Context, FnFeature, FnVariant, Predicate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 3;

/// Constants drawn from a small grid so contradictions and touching
/// bounds actually happen; the brute-force grid below straddles every
/// value with half-step offsets so strict-vs-non-strict bounds differ.
const CONSTS: [f64; 5] = [-2.0, -1.0, 0.0, 1.0, 2.0];
const GRID: [f64; 11] = [-2.5, -2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5];
const OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];

/// A random predicate tree of bounded depth over `N_FEATURES` features.
fn random_predicate(rng: &mut StdRng, depth: usize) -> Predicate {
    let leaf = depth == 0 || rng.random_range(0..100) < 35;
    if leaf {
        match rng.random_range(0..8) {
            0 => Predicate::True,
            1 => Predicate::False,
            2..=5 => Predicate::Feature {
                feature: rng.random_range(0..N_FEATURES),
                op: OPS[rng.random_range(0..OPS.len())],
                value: CONSTS[rng.random_range(0..CONSTS.len())],
            },
            _ => Predicate::Pair {
                lhs: rng.random_range(0..N_FEATURES),
                op: OPS[rng.random_range(0..OPS.len())],
                rhs: rng.random_range(0..N_FEATURES),
            },
        }
    } else {
        match rng.random_range(0..3) {
            0 => Predicate::And(
                (0..rng.random_range(2..4))
                    .map(|_| random_predicate(rng, depth - 1))
                    .collect(),
            ),
            1 => Predicate::Or(
                (0..rng.random_range(2..4))
                    .map(|_| random_predicate(rng, depth - 1))
                    .collect(),
            ),
            _ => random_predicate(rng, depth - 1).not(),
        }
    }
}

/// Every grid point over `N_FEATURES` dimensions.
fn grid_points() -> Vec<Vec<f64>> {
    let mut points = vec![Vec::new()];
    for _ in 0..N_FEATURES {
        points = points
            .into_iter()
            .flat_map(|p| {
                GRID.iter().map(move |&v| {
                    let mut q = p.clone();
                    q.push(v);
                    q
                })
            })
            .collect();
    }
    points
}

proptest! {
    /// Soundness: an `Unsatisfiable` verdict means brute force finds no
    /// witness either — on the full grid, which straddles every constant
    /// the predicates use.
    #[test]
    fn unsat_verdicts_have_no_brute_force_witness(seed in 0u64..1_000_000u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_predicate(&mut rng, 3);
        let b = random_predicate(&mut rng, 2);
        let verdict = sat::check(&[&a, &b]);
        if verdict == Sat::Unsatisfiable {
            for point in grid_points() {
                prop_assert!(
                    !(a.eval(&point) && b.eval(&point)),
                    "false unsat proof for ({a}) && ({b}) at {point:?}"
                );
            }
        }
    }

    /// A brute-force witness forces a `Satisfiable` verdict (never
    /// `Unsatisfiable`; `Unknown` only on budget blowout, which these
    /// small trees cannot trigger).
    #[test]
    fn brute_force_witness_forces_satisfiable(seed in 0u64..1_000_000u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let p = random_predicate(&mut rng, 3);
        let witnessed = grid_points().iter().any(|pt| p.eval(pt));
        if witnessed {
            prop_assert_eq!(sat::check(&[&p]), Sat::Satisfiable, "predicate: {}", &p);
        }
    }

    /// A proven implication holds pointwise on the whole grid.
    #[test]
    fn proven_implications_hold_pointwise(seed in 0u64..1_000_000u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1119);
        let a = random_predicate(&mut rng, 2);
        let b = random_predicate(&mut rng, 2);
        if sat::implies(&a, &b) {
            for point in grid_points() {
                prop_assert!(
                    !a.eval(&point) || b.eval(&point),
                    "({a}) was proven to imply ({b}) but not at {point:?}"
                );
            }
        }
    }

    /// End to end through the IR: when the deep pass claims a variant is
    /// statically dead (`NITRO080`), dispatch agrees — the variant's
    /// constraints veto every row of a random profile table.
    #[test]
    fn dead_variant_claims_agree_with_dispatch(
        seed in 0u64..1_000_000u64,
        rows in prop::collection::vec(prop::collection::vec(-2.5f64..2.5, N_FEATURES), 4..16)
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let p1 = random_predicate(&mut rng, 2);
        let p2 = random_predicate(&mut rng, 2);

        let ctx = Context::new();
        let mut cv = CodeVariant::<Vec<f64>>::new("prop-deep", &ctx);
        cv.add_variant(FnVariant::new("base", |r: &Vec<f64>| r[0]));
        cv.add_variant(FnVariant::new("guarded", |r: &Vec<f64>| r[0] * 2.0));
        cv.set_default(0);
        for i in 0..N_FEATURES {
            cv.add_input_feature(FnFeature::new(format!("f{i}"), move |r: &Vec<f64>| r[i]));
        }
        cv.add_predicate_constraint(1, "p1", p1.clone()).unwrap();
        cv.add_predicate_constraint(1, "p2", p2.clone()).unwrap();

        let graph = TuningGraph::from_code_variant(&cv);
        let claims_dead = analyze_graph(&graph)
            .iter()
            .any(|d| d.code == "NITRO080");
        if claims_dead {
            for row in &rows {
                prop_assert!(
                    !cv.constraints_satisfied(1, row),
                    "NITRO080 claimed variant 1 dead but dispatch admits {row:?} \
                     under ({p1}) && ({p2})"
                );
            }
            for point in grid_points() {
                prop_assert!(!(p1.eval(&point) && p2.eval(&point)));
            }
        }
    }
}
