//! Integration tests for the Table II tuning options, exercised through
//! the public facade exactly as the examples use them.

use std::sync::Arc;

use nitro::core::{
    ClassifierConfig, CodeVariant, Context, FnConstraint, FnFeature, FnVariant, Objective,
    StoppingCriterion,
};
use nitro::ml::TreeParams;
use nitro::tuner::Autotuner;

/// Toy function: variant 0 cheap below x = 5, variant 1 above.
fn toy(ctx: &Context) -> CodeVariant<f64> {
    let mut cv = CodeVariant::new("toy", ctx);
    cv.add_variant(FnVariant::new("low", |&x: &f64| 1.0 + x));
    cv.add_variant(FnVariant::new("high", |&x: &f64| 11.0 - x));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
    cv
}

fn train_inputs() -> Vec<f64> {
    (0..40).map(|i| i as f64 * 0.25).collect()
}

#[test]
fn every_classifier_family_learns_the_toy_boundary() {
    for config in [
        ClassifierConfig::Svm {
            c: Some(8.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: None,
        },
        ClassifierConfig::Svm {
            c: None,
            gamma: None,
            grid_search: true,
            cache_bytes: None,
        },
        ClassifierConfig::Knn { k: 3 },
        ClassifierConfig::Tree(TreeParams::default()),
    ] {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().classifier = config.clone();
        Autotuner::new().tune(&mut cv, &train_inputs()).unwrap();
        assert_eq!(cv.call(&1.0).unwrap().variant, 0, "{config:?}");
        assert_eq!(cv.call(&9.0).unwrap().variant, 1, "{config:?}");
    }
}

#[test]
fn incremental_option_reduces_profiling() {
    let ctx = Context::new();
    let mut cv = toy(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(6));
    let inputs = train_inputs();
    let report = Autotuner::new().tune(&mut cv, &inputs).unwrap();
    assert!(report.profiled_inputs < inputs.len());
    assert!(report.incremental_iterations <= 6);
}

#[test]
fn constraints_toggle_controls_fallback() {
    let ctx = Context::new();
    let mut cv = toy(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    cv.add_constraint(1, FnConstraint::new("never_high", |_: &f64| false))
        .unwrap();
    // Train with constraints off so labels still cover both variants.
    cv.policy_mut().constraints = false;
    Autotuner::new().tune(&mut cv, &train_inputs()).unwrap();

    cv.policy_mut().constraints = true;
    let gated = cv.call(&9.0).unwrap();
    assert!(gated.fell_back_to_default);
    assert_eq!(gated.variant, 0);

    cv.policy_mut().constraints = false;
    let ungated = cv.call(&9.0).unwrap();
    assert_eq!(ungated.variant, 1);
}

#[test]
fn maximize_objective_inverts_labels() {
    let ctx = Context::new();
    let mut cv = toy(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    cv.policy_mut().objective = Objective::Maximize;
    Autotuner::new().tune(&mut cv, &train_inputs()).unwrap();
    // With "bigger is better", the *expensive* variant is preferred.
    assert_eq!(cv.call(&1.0).unwrap().variant, 1);
    assert_eq!(cv.call(&9.0).unwrap().variant, 0);
}

#[test]
fn feature_subset_restricts_model_inputs() {
    let ctx = Context::new();
    let mut cv = toy(&ctx);
    cv.add_input_feature(FnFeature::new("noise", |_: &f64| 42.0));
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    cv.policy_mut().feature_subset = Some(vec![0]);
    Autotuner::new().tune(&mut cv, &train_inputs()).unwrap();
    assert_eq!(cv.active_feature_names(), vec!["x".to_string()]);
    assert_eq!(cv.call(&9.0).unwrap().features.len(), 1);
}

#[test]
fn async_and_parallel_feature_evaluation_agree_with_sync() {
    let ctx = Context::new();
    let mut cv = toy(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    Autotuner::new().tune(&mut cv, &train_inputs()).unwrap();

    let sync = cv.call(&7.5).unwrap();
    cv.policy_mut().parallel_feature_evaluation = true;
    cv.policy_mut().async_feature_eval = true;
    cv.fix_inputs(Arc::new(7.5));
    let asynced = cv.call_fixed().unwrap();
    assert_eq!(sync.variant, asynced.variant);
    assert_eq!(sync.features, asynced.features);
}
