//! Resilient dispatch: retry, quarantine, fallback cascade, degradation.
//!
//! [`GuardedVariant`] wraps a [`CodeVariant`] and replaces its
//! single-step veto fallback with a full recovery pipeline:
//!
//! 1. **Fallback cascade** — candidates are the model's full posterior
//!    ranking (best first), constraint-vetoed entries dropped, the
//!    default variant always appended last. In degraded mode the cascade
//!    is just the default variant.
//! 2. **Quarantine** — each variant owns a [`CircuitBreaker`];
//!    candidates whose breaker is Open are skipped. Breakers tick on
//!    every guarded call, so quarantined variants are probed back in
//!    (HalfOpen) after `cooldown_calls`.
//! 3. **Retry with backoff** — each candidate gets `1 + retry_budget`
//!    failure-isolated attempts ([`CodeVariant::try_run_variant`]), with
//!    an exponentially-doubling simulated backoff charged to the
//!    invocation.
//! 4. **Graceful degradation** — when the model artifact is missing or
//!    fails the `nitro-audit` artifact audit, the guard downgrades to
//!    default-variant dispatch and reports [`HealthStatus::Degraded`]
//!    instead of erroring.
//!
//! The guard is **shard-shareable**: breaker, health and statistics
//! state live in a [`GuardShared`] bundle of atomics, and the whole
//! dispatch pipeline — [`GuardedVariant::call`] — takes `&self`. One
//! guard instance behind an `Arc` serves any number of worker threads
//! with no mutex on the dispatch path; alternatively, several guards
//! (each owning its own `CodeVariant`, e.g. one per serving shard) can
//! share a single `GuardShared` via [`GuardedVariant::new_sharing`], so
//! a variant melting down on one shard is quarantined on all of them.
//!
//! Every recovery decision is visible to `nitro-trace`:
//! `guard.<fn>.quarantine`, `guard.<fn>.retry`, `guard.<fn>.degraded`,
//! plus `guard.<fn>.{calls,failure,fallback,recovered}` counters and a
//! `guard:<fn>` instant per state transition.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nitro_audit::AuditedInstall;
use nitro_core::{CodeVariant, ModelArtifact, NitroError, Result};

use crate::audit::audit_guard_policy;
use crate::breaker::{BreakerState, CircuitBreaker, GuardPolicy, Transition};

/// Whether the guard is serving model-driven or degraded traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthStatus {
    /// Model-driven dispatch.
    Healthy,
    /// Default-variant dispatch; the reason says why.
    Degraded {
        /// Why the guard downgraded (missing artifact, failed audit…).
        reason: String,
    },
}

impl HealthStatus {
    /// True when the guard is in degraded (default-variant) mode.
    pub fn is_degraded(&self) -> bool {
        matches!(self, HealthStatus::Degraded { .. })
    }
}

/// Cumulative guard statistics (the counter mirror of the trace metrics,
/// available without a tracer). Snapshot of the atomics in
/// [`GuardShared`]; when several guards share state, these aggregate
/// across all of them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardStats {
    /// Guarded calls served (success or error).
    pub calls: u64,
    /// Retry attempts across all calls and candidates.
    pub retries: u64,
    /// Failed execution attempts observed.
    pub failures: u64,
    /// Breaker trips (Closed→Open and HalfOpen→Open).
    pub quarantines: u64,
    /// Breakers probed back to Closed (HalfOpen→Closed).
    pub recoveries: u64,
    /// Calls served while degraded.
    pub degraded_calls: u64,
    /// Calls where the executed variant was not the first preference.
    pub fallbacks: u64,
    /// Total simulated backoff charged, in nanoseconds.
    pub backoff_ns: f64,
}

/// Outcome of one guarded call.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedInvocation {
    /// Index of the variant that finally executed.
    pub variant: usize,
    /// Its name.
    pub variant_name: String,
    /// Objective value it returned.
    pub objective: f64,
    /// Feature vector used for selection.
    pub features: Vec<f64>,
    /// Simulated feature-evaluation cost (ns).
    pub feature_cost_ns: f64,
    /// Execution attempts across the whole cascade (≥ 1).
    pub attempts: u32,
    /// Retries among those attempts.
    pub retries: u32,
    /// Simulated backoff charged to this call (ns).
    pub backoff_ns: f64,
    /// The candidate order this call considered (before breaker skips).
    pub cascade: Vec<usize>,
    /// True when the executed variant was not the cascade's head.
    pub fell_back: bool,
    /// True when the call was served in degraded mode.
    pub degraded: bool,
}

/// Health state shared between workers: a lock-free degraded flag on the
/// dispatch path, with the human-readable reason behind a mutex touched
/// only when health actually changes (or is snapshotted).
#[derive(Debug)]
struct SharedHealth {
    degraded: AtomicBool,
    reason: Mutex<String>,
}

impl SharedHealth {
    fn new(status: HealthStatus) -> Self {
        let health = Self {
            degraded: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
        };
        health.set(status);
        health
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn snapshot(&self) -> HealthStatus {
        if self.is_degraded() {
            HealthStatus::Degraded {
                reason: self.reason.lock().expect("health reason lock").clone(),
            }
        } else {
            HealthStatus::Healthy
        }
    }

    fn set(&self, status: HealthStatus) {
        match status {
            HealthStatus::Healthy => {
                self.degraded.store(false, Ordering::SeqCst);
            }
            HealthStatus::Degraded { reason } => {
                *self.reason.lock().expect("health reason lock") = reason;
                self.degraded.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// Atomic mirror of [`GuardStats`].
#[derive(Debug, Default)]
struct SharedStats {
    calls: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    quarantines: AtomicU64,
    recoveries: AtomicU64,
    degraded_calls: AtomicU64,
    fallbacks: AtomicU64,
    /// f64 bit pattern, accumulated with a CAS loop.
    backoff_ns_bits: AtomicU64,
}

impl SharedStats {
    fn add_backoff(&self, ns: f64) {
        let mut current = self.backoff_ns_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + ns).to_bits();
            match self.backoff_ns_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    fn snapshot(&self) -> GuardStats {
        GuardStats {
            calls: self.calls.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            degraded_calls: self.degraded_calls.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            backoff_ns: f64::from_bits(self.backoff_ns_bits.load(Ordering::Relaxed)),
        }
    }
}

/// The shard-shareable slice of a guard: breaker bank, health flag and
/// cumulative statistics, all atomics. Create one with
/// [`GuardedVariant::new`] (implicitly) and hand it to sibling guards
/// with [`GuardedVariant::new_sharing`] so every worker shard sees the
/// same quarantine and health decisions.
#[derive(Debug)]
pub struct GuardShared {
    breakers: Vec<CircuitBreaker>,
    health: SharedHealth,
    stats: SharedStats,
}

impl GuardShared {
    fn new(policy: &GuardPolicy, n_variants: usize, health: HealthStatus) -> Self {
        Self {
            breakers: (0..n_variants)
                .map(|_| CircuitBreaker::new(policy))
                .collect(),
            health: SharedHealth::new(health),
            stats: SharedStats::default(),
        }
    }

    /// Number of variants the breaker bank covers.
    pub fn n_breakers(&self) -> usize {
        self.breakers.len()
    }

    /// All breaker states, in variant order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(|b| b.state()).collect()
    }
}

/// A [`CodeVariant`] wrapped in the resilience layer.
pub struct GuardedVariant<I: ?Sized> {
    cv: CodeVariant<I>,
    policy: GuardPolicy,
    shared: Arc<GuardShared>,
    pulse: Option<nitro_pulse::GuardPulse>,
    /// Per-instance jitter salt (shard id, say): guards with the same
    /// policy seed but different salts draw decorrelated backoff
    /// schedules.
    jitter_salt: u64,
    /// Monotonic retry counter feeding the jitter stream, so successive
    /// retries of the same `(candidate, attempt)` also decorrelate.
    retry_seq: AtomicU64,
}

impl<I: ?Sized> std::fmt::Debug for GuardedVariant<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedVariant")
            .field("function", &self.cv.name())
            .field("health", &self.health())
            .field("stats", &self.stats())
            .field("breakers", &self.breaker_states())
            .finish_non_exhaustive()
    }
}

impl<I: ?Sized> GuardedVariant<I> {
    /// Wrap a code variant. Fails with [`NitroError::Audit`] when the
    /// policy audit (`NITRO05x`) finds error-severity problems. A
    /// wrapped function without an installed model starts out
    /// [`HealthStatus::Degraded`] (default-variant mode) — load one via
    /// [`GuardedVariant::load_model_or_degrade`].
    pub fn new(cv: CodeVariant<I>, policy: GuardPolicy) -> Result<Self> {
        let diagnostics = audit_guard_policy(cv.name(), &policy);
        if nitro_audit::has_errors(&diagnostics) {
            return Err(NitroError::Audit { diagnostics });
        }
        let health = if cv.has_model() {
            HealthStatus::Healthy
        } else {
            HealthStatus::Degraded {
                reason: "no trained model installed; serving the default variant".into(),
            }
        };
        let shared = Arc::new(GuardShared::new(&policy, cv.n_variants(), health));
        let guard = Self {
            cv,
            policy,
            shared,
            pulse: None,
            jitter_salt: 0,
            retry_seq: AtomicU64::new(0),
        };
        if let Some(tracer) = guard.cv.context().tracer() {
            guard.declare_tracer_metrics(&tracer);
        }
        Ok(guard)
    }

    /// Wrap a code variant that shares breaker, health and statistics
    /// state with sibling guards (one per serving shard, say). The
    /// constructing guard does **not** reset the shared health — the
    /// bundle keeps whatever state its owners have driven it to. The
    /// shared breaker bank should cover this function's variants
    /// (candidates beyond the bank dispatch without quarantine
    /// tracking).
    pub fn new_sharing(
        cv: CodeVariant<I>,
        policy: GuardPolicy,
        shared: Arc<GuardShared>,
    ) -> Result<Self> {
        let diagnostics = audit_guard_policy(cv.name(), &policy);
        if nitro_audit::has_errors(&diagnostics) {
            return Err(NitroError::Audit { diagnostics });
        }
        let guard = Self {
            cv,
            policy,
            shared,
            pulse: None,
            jitter_salt: 0,
            retry_seq: AtomicU64::new(0),
        };
        if let Some(tracer) = guard.cv.context().tracer() {
            guard.declare_tracer_metrics(&tracer);
        }
        Ok(guard)
    }

    /// Set this guard's jitter salt (typically the serving shard index)
    /// and reset its retry sequence. Guards with the same policy seed
    /// but different salts draw decorrelated backoff schedules; the
    /// same `(seed, salt)` replays the same one.
    pub fn set_backoff_salt(&mut self, salt: u64) {
        self.jitter_salt = salt;
        self.retry_seq = AtomicU64::new(0);
    }

    /// The jittered pause before a retry: the exponentially-doubled
    /// base scaled by a deterministic factor in
    /// `[1 − jitter, 1 + jitter)` drawn from
    /// `(jitter_seed, salt, candidate, attempt, seq)`. With jitter 0
    /// (the default) this is exactly the bare exponential schedule.
    fn backoff_pause_ns(&self, candidate: usize, attempt: u32, seq: u64) -> f64 {
        let base = self.policy.backoff_base_ns * f64::from(1u32 << (attempt - 1));
        let jitter = if self.policy.backoff_jitter.is_finite() {
            self.policy.backoff_jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if jitter == 0.0 || base <= 0.0 {
            return base;
        }
        let word = nitro_core::mix64(
            self.policy.jitter_seed
                ^ nitro_core::mix64(self.jitter_salt)
                ^ nitro_core::mix64(
                    (candidate as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (u64::from(attempt) << 40)
                        ^ seq,
                ),
        );
        let u = (word >> 11) as f64 / (1u64 << 53) as f64;
        base * (1.0 + jitter * (2.0 * u - 1.0))
    }

    /// Wrap with the default policy.
    pub fn with_default_policy(cv: CodeVariant<I>) -> Result<Self> {
        Self::new(cv, GuardPolicy::default())
    }

    /// The shared breaker/health/stats bundle, for constructing sibling
    /// guards with [`GuardedVariant::new_sharing`].
    pub fn shared(&self) -> Arc<GuardShared> {
        self.shared.clone()
    }

    /// The wrapped code variant.
    pub fn inner(&self) -> &CodeVariant<I> {
        &self.cv
    }

    /// Mutable access to the wrapped code variant. Variants registered
    /// through this borrow get breakers once
    /// [`GuardedVariant::sync_breakers`] runs (the model-loading paths
    /// call it for you); until then they dispatch without quarantine
    /// tracking.
    pub fn inner_mut(&mut self) -> &mut CodeVariant<I> {
        &mut self.cv
    }

    /// Unwrap, discarding guard state.
    pub fn into_inner(self) -> CodeVariant<I> {
        self.cv
    }

    /// Extend the breaker bank to cover late-registered variants. Only
    /// possible while this guard holds the sole reference to its shared
    /// state (a bank shared across live shards has a fixed variant
    /// count); returns whether the bank now covers every variant.
    pub fn sync_breakers(&mut self) -> bool {
        let n = self.cv.n_variants();
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            while shared.breakers.len() < n {
                shared.breakers.push(CircuitBreaker::new(&self.policy));
            }
        }
        self.shared.breakers.len() >= n
    }

    /// The active guard policy.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Current health status (snapshot of the shared flag).
    pub fn health(&self) -> HealthStatus {
        self.shared.health.snapshot()
    }

    /// Cumulative statistics (snapshot; aggregated across every guard
    /// sharing this state).
    pub fn stats(&self) -> GuardStats {
        self.shared.stats.snapshot()
    }

    /// One variant's breaker state, if the index is in range.
    pub fn breaker_state(&self, variant: usize) -> Option<BreakerState> {
        self.shared.breakers.get(variant).map(|b| b.state())
    }

    /// All breaker states, in variant order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.shared.breaker_states()
    }

    /// Whether a variant is currently quarantined.
    pub fn is_quarantined(&self, variant: usize) -> bool {
        self.shared
            .breakers
            .get(variant)
            .is_some_and(|b| b.is_quarantined())
    }

    /// The static fallback structure [`GuardedVariant::plan_cascade`]
    /// guarantees, as tuning-graph edges: every dynamic cascade ends at
    /// the terminal default, whatever the model ranks in between, so
    /// each non-default variant gets one edge into the default. Feed
    /// this to [`nitro_audit::TuningGraph::with_cascade`] for the
    /// NITRO084 termination analysis; an empty vector (no default set)
    /// makes that analysis report the missing terminal.
    pub fn cascade_edges(&self) -> Vec<nitro_audit::CascadeEdge> {
        let n = self.cv.n_variants();
        let Some(default) = self.cv.default_variant().filter(|&d| d < n) else {
            return Vec::new();
        };
        (0..n)
            .filter(|&v| v != default)
            .map(|from| nitro_audit::CascadeEdge { from, to: default })
            .collect()
    }

    /// Lower the wrapped registration into a whole-configuration
    /// [`nitro_audit::TuningGraph`], with the cascade this guard's
    /// planner actually guarantees instead of the dispatcher's default
    /// veto edges.
    pub fn tuning_graph(&self) -> nitro_audit::TuningGraph {
        nitro_audit::TuningGraph::from_code_variant(&self.cv).with_cascade(self.cascade_edges())
    }

    /// Pre-register this guard's counters in a tracer's registry so an
    /// exported snapshot distinguishes "never happened" from "never
    /// instrumented" (same contract as
    /// [`CodeVariant::declare_tracer_metrics`]).
    pub fn declare_tracer_metrics(&self, tracer: &nitro_trace::Tracer) {
        let m = tracer.metrics();
        for suffix in [
            "calls",
            "retry",
            "failure",
            "quarantine",
            "recovered",
            "degraded",
            "fallback",
        ] {
            m.declare_counter(&format!("guard.{}.{suffix}", self.cv.name()));
        }
    }

    /// Register this guard's resilience counters in a pulse registry
    /// and record them lock-free on every call, alongside (not instead
    /// of) any attached tracer. Also installs a
    /// [`nitro_pulse::FunctionPulse`] observer on the wrapped
    /// `CodeVariant`, so model-path dispatches feed the latency sketch.
    pub fn attach_pulse(&mut self, registry: &nitro_pulse::PulseRegistry) {
        self.pulse = Some(nitro_pulse::GuardPulse::register(registry, self.cv.name()));
        nitro_pulse::FunctionPulse::install(&mut self.cv, registry, None);
    }

    /// Load and audit this function's model from the context, degrading
    /// (instead of erroring) when it is missing, mismatched or fails the
    /// artifact audit. Returns the resulting health status.
    pub fn load_model_or_degrade(&mut self) -> HealthStatus {
        self.sync_breakers();
        let name = self.cv.name().to_string();
        let result = match self.cv.context().fetch_model(&name) {
            None => Err(NitroError::ModelMismatch {
                detail: format!("no stored model for '{name}'"),
            }),
            Some(artifact) => self.cv.install_artifact_audited(artifact).map(|_| ()),
        };
        self.absorb_model_result(result);
        self.health()
    }

    /// Install and audit an explicit artifact, degrading on any failure.
    pub fn install_artifact_or_degrade(&mut self, artifact: ModelArtifact) -> HealthStatus {
        self.sync_breakers();
        let result = self.cv.install_artifact_audited(artifact).map(|_| ());
        self.absorb_model_result(result);
        self.health()
    }

    /// Load the newest *intact* version from a `nitro-store`
    /// [`ArtifactStore`], degrading instead of erroring when the store is
    /// empty or every version is corrupt. Versions that fail their
    /// checksum are walked past (never installed), and the store's
    /// `NITRO071`/`NITRO072` diagnostics for them are returned alongside
    /// the resulting health status so callers can surface what was
    /// skipped.
    pub fn load_latest_or_degrade(
        &mut self,
        store: &nitro_store::ArtifactStore,
    ) -> (HealthStatus, Vec<nitro_audit::Diagnostic>) {
        self.sync_breakers();
        let (loaded, diagnostics) = store.load_latest_intact();
        let result = match loaded {
            Some((_, artifact)) => self.cv.install_artifact_audited(artifact).map(|_| ()),
            None => Err(NitroError::ModelMismatch {
                detail: format!(
                    "store has no intact version for '{}' ({} corrupt/unreadable)",
                    store.function(),
                    diagnostics.len()
                ),
            }),
        };
        self.absorb_model_result(result);
        (self.health(), diagnostics)
    }

    fn absorb_model_result(&mut self, result: Result<()>) {
        match result {
            Ok(()) => self.shared.health.set(HealthStatus::Healthy),
            Err(e) => self.degrade(format!("model unavailable: {e}")),
        }
    }

    /// Enter degraded mode explicitly (also used by the model paths).
    /// `&self`: health is shared atomic state, so any worker holding the
    /// guard behind an `Arc` may degrade it.
    pub fn degrade(&self, reason: impl Into<String>) {
        let reason = reason.into();
        if let Some(tracer) = self.cv.context().tracer() {
            tracer.instant(
                &format!("guard:{}", self.cv.name()),
                "guard",
                vec![
                    nitro_trace::arg("event", &"degraded"),
                    nitro_trace::arg("reason", &reason),
                ],
            );
        }
        self.shared.health.set(HealthStatus::Degraded { reason });
    }

    /// The candidate order a call with these features would consider:
    /// the model's posterior ranking (prediction first), constraint-
    /// vetoed candidates dropped, the default variant moved to the
    /// terminal position — unless the model predicts the default, in
    /// which case it leads. Degraded mode plans `[default]` only.
    /// Breaker availability is *not* applied here — quarantine is a
    /// dispatch-time decision (see [`GuardedVariant::call`]).
    pub fn plan_cascade(&self, features: &[f64], input: &I) -> Vec<usize> {
        let n = self.cv.n_variants();
        if n == 0 {
            return Vec::new();
        }
        let default = self.cv.default_variant().filter(|&d| d < n);
        if self.shared.health.is_degraded() {
            return default.into_iter().collect();
        }
        let mut cascade = Vec::with_capacity(n + 1);
        if let Some(pred) = self.cv.select(features) {
            let pred = pred.min(n - 1);
            let ranked = self
                .cv
                .predict_ranked(features)
                .unwrap_or_else(|| (0..n).collect());
            for v in std::iter::once(pred).chain(ranked) {
                if cascade.contains(&v) {
                    continue;
                }
                if Some(v) == default && v != pred {
                    // Reserve the default for the terminal slot unless
                    // the model predicts it outright.
                    continue;
                }
                if Some(v) == default || self.cv.constraints_satisfied(v, input) {
                    cascade.push(v);
                }
            }
        }
        // The default terminates every cascade (the paper's veto
        // fallback target), even when constraints disfavor it — matching
        // CodeVariant::dispatch, which runs the default on veto. The one
        // exception: when the default IS the prediction it leads instead.
        if cascade.first() != default.as_ref() {
            cascade.extend(default);
        }
        cascade
    }

    /// The full resilient dispatch pipeline. Takes `&self`: every piece
    /// of mutable guard state (breakers, health, stats) is atomic, so a
    /// single guard behind an `Arc` serves all worker shards with no
    /// lock anywhere on this path.
    ///
    /// Returns [`NitroError::NoHealthyVariant`] when the cascade is
    /// exhausted (every candidate quarantined or out of attempts), and
    /// [`NitroError::NoSelectionPossible`] when there is nothing to plan
    /// (no model and no default).
    pub fn call(&self, input: &I) -> Result<GuardedInvocation>
    where
        I: Sync,
    {
        if self.cv.n_variants() == 0 {
            return Err(NitroError::NoVariants);
        }
        let shared = &*self.shared;
        // Advance every quarantine clock by one guarded call.
        for b in &shared.breakers {
            b.tick();
        }

        let tracer = self.cv.context().tracer();
        let name = self.cv.name().to_string();
        let (features, feature_cost_ns) = self.cv.evaluate_features(input);
        let cascade = self.plan_cascade(&features, input);
        let degraded = shared.health.is_degraded();

        let mut span = tracer.as_ref().map(|t| {
            t.span(
                &format!("guard:{name}"),
                "guard",
                vec![
                    nitro_trace::arg("cascade", &cascade),
                    nitro_trace::arg("degraded", &degraded),
                ],
            )
        });

        shared.stats.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &tracer {
            t.metrics().inc(&format!("guard.{name}.calls"));
        }
        if let Some(p) = &self.pulse {
            p.calls.inc();
        }
        if degraded {
            shared.stats.degraded_calls.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &tracer {
                t.metrics().inc(&format!("guard.{name}.degraded"));
            }
            if let Some(p) = &self.pulse {
                p.degraded.inc();
            }
        }
        if cascade.is_empty() {
            return Err(NitroError::NoSelectionPossible);
        }

        let mut attempts = 0u32;
        let mut retries = 0u32;
        let mut backoff_ns = 0.0f64;
        let mut last_failure: Option<NitroError> = None;

        for &candidate in &cascade {
            // Late-registered variants beyond the shared bank dispatch
            // without quarantine tracking (see `sync_breakers`).
            let breaker = shared.breakers.get(candidate);
            if breaker.is_some_and(|b| !b.is_available()) {
                continue;
            }
            let max_attempts = 1 + self.policy.retry_budget;
            for attempt in 0..max_attempts {
                if attempt > 0 {
                    retries += 1;
                    shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                    let seq = self.retry_seq.fetch_add(1, Ordering::Relaxed);
                    let pause = self.backoff_pause_ns(candidate, attempt, seq);
                    backoff_ns += pause;
                    shared.stats.add_backoff(pause);
                    if let Some(t) = &tracer {
                        t.metrics().inc(&format!("guard.{name}.retry"));
                    }
                    if let Some(p) = &self.pulse {
                        p.retry.inc();
                    }
                }
                attempts += 1;
                match self.cv.try_run_variant(candidate, input) {
                    Ok(objective) => {
                        if breaker.and_then(|b| b.on_success()) == Some(Transition::Recovered) {
                            shared.stats.recoveries.fetch_add(1, Ordering::Relaxed);
                            if let Some(p) = &self.pulse {
                                p.recovered.inc();
                            }
                            if let Some(t) = &tracer {
                                t.metrics().inc(&format!("guard.{name}.recovered"));
                                t.instant(
                                    &format!("guard:{name}"),
                                    "guard",
                                    vec![
                                        nitro_trace::arg("event", &"recovered"),
                                        nitro_trace::arg("variant", &candidate),
                                    ],
                                );
                            }
                        }
                        let fell_back = candidate != cascade[0];
                        if fell_back {
                            shared.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = &tracer {
                                t.metrics().inc(&format!("guard.{name}.fallback"));
                            }
                            if let Some(p) = &self.pulse {
                                p.fallback.inc();
                            }
                        }
                        if let Some(s) = span.as_mut() {
                            s.end_arg("chosen", nitro_trace::val(&candidate));
                            s.end_arg("attempts", nitro_trace::val(&attempts));
                            s.end_arg("objective", nitro_trace::val(&objective));
                        }
                        // Guarded calls bypass CodeVariant::dispatch, so
                        // fire its observer hook here: telemetry layers
                        // see guarded and unguarded dispatches alike.
                        if let Some(obs) = self.cv.dispatch_observer() {
                            let intended = cascade[0];
                            let chosen_v = self.cv.variant(candidate);
                            let intended_v = self.cv.variant(intended);
                            obs.on_dispatch(&nitro_core::DispatchObservation {
                                function: self.cv.name(),
                                variant: candidate,
                                variant_name: chosen_v
                                    .as_deref()
                                    .map(|v| v.name())
                                    .unwrap_or_default(),
                                intended,
                                intended_name: intended_v
                                    .as_deref()
                                    .map(|v| v.name())
                                    .unwrap_or_default(),
                                fell_back,
                                objective_ns: objective,
                                feature_cost_ns,
                                predict_wall_ns: 0,
                                kernel_evals: 0,
                                features: &features,
                                via_async: false,
                            });
                        }
                        return Ok(GuardedInvocation {
                            variant: candidate,
                            variant_name: self
                                .cv
                                .variant(candidate)
                                .map(|v| v.name().to_string())
                                .unwrap_or_default(),
                            objective,
                            features,
                            feature_cost_ns,
                            attempts,
                            retries,
                            backoff_ns,
                            cascade: cascade.clone(),
                            fell_back,
                            degraded,
                        });
                    }
                    Err(e) => {
                        shared.stats.failures.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &tracer {
                            t.metrics().inc(&format!("guard.{name}.failure"));
                        }
                        if let Some(p) = &self.pulse {
                            p.failure.inc();
                        }
                        let tripped = breaker.and_then(|b| b.on_failure());
                        last_failure = Some(match e {
                            NitroError::VariantFailed {
                                variant,
                                name,
                                detail,
                                ..
                            } => NitroError::VariantFailed {
                                variant,
                                name,
                                attempts: attempt + 1,
                                detail,
                            },
                            other => other,
                        });
                        if let Some(transition) = tripped {
                            shared.stats.quarantines.fetch_add(1, Ordering::Relaxed);
                            if let Some(p) = &self.pulse {
                                p.quarantine.inc();
                            }
                            if let Some(t) = &tracer {
                                t.metrics().inc(&format!("guard.{name}.quarantine"));
                                t.instant(
                                    &format!("guard:{name}"),
                                    "guard",
                                    vec![
                                        nitro_trace::arg("event", &"quarantine"),
                                        nitro_trace::arg("variant", &candidate),
                                        nitro_trace::arg(
                                            "reopened",
                                            &(transition == Transition::Reopened),
                                        ),
                                    ],
                                );
                            }
                            // The breaker just opened: stop burning the
                            // retry budget on a quarantined variant.
                            break;
                        }
                    }
                }
            }
        }

        if let Some(s) = span.as_mut() {
            s.end_arg("exhausted", nitro_trace::val(&true));
            s.end_arg("attempts", nitro_trace::val(&attempts));
        }
        let detail = match last_failure {
            Some(e) => format!("cascade {cascade:?} exhausted; last failure: {e}"),
            None => format!("cascade {cascade:?} entirely quarantined"),
        };
        Err(NitroError::NoHealthyVariant {
            function: name,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnFeature, FnVariant};
    use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Toy function: variant 0 wins for x < 5, variant 1 for x ≥ 5.
    fn toy(ctx: &Context) -> CodeVariant<f64> {
        let mut cv = CodeVariant::new("toy", ctx);
        cv.add_variant(FnVariant::new("small", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("large", |&x: &f64| 10.0 - x * 0.5));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv
    }

    fn toy_model() -> TrainedModel {
        let data = Dataset::from_parts(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| usize::from(i >= 5)).collect(),
        );
        TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
    }

    fn quick_policy() -> GuardPolicy {
        GuardPolicy {
            retry_budget: 1,
            quarantine_threshold: 2,
            cooldown_calls: 3,
            half_open_probes: 1,
            ..GuardPolicy::default()
        }
    }

    #[test]
    fn bad_policy_is_refused_with_nitro050() {
        let ctx = Context::new();
        let cv = toy(&ctx);
        let err = GuardedVariant::new(
            cv,
            GuardPolicy {
                quarantine_threshold: 0,
                ..GuardPolicy::default()
            },
        )
        .expect_err("zero-trip breaker must be refused");
        assert!(err.diagnostics().iter().any(|d| d.code == "NITRO050"));
    }

    #[test]
    fn healthy_dispatch_follows_the_model() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.install_model(toy_model());
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        assert_eq!(guard.health(), HealthStatus::Healthy);
        assert_eq!(guard.call(&1.0).unwrap().variant, 0);
        let inv = guard.call(&9.0).unwrap();
        assert_eq!(inv.variant, 1);
        assert!(!inv.fell_back);
        assert!(!inv.degraded);
        assert_eq!(inv.attempts, 1);
    }

    #[test]
    fn cascade_edges_route_every_variant_to_the_terminal_default() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.add_variant(FnVariant::new("third", |&x: &f64| x));
        let guard = GuardedVariant::with_default_policy(cv).unwrap();
        assert_eq!(
            guard.cascade_edges(),
            vec![
                nitro_audit::CascadeEdge { from: 1, to: 0 },
                nitro_audit::CascadeEdge { from: 2, to: 0 },
            ]
        );

        // Without a default there is no terminal: no edges, and the
        // tuning graph's termination analysis reports the gap.
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("nodefault", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("b", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.add_predicate_constraint(1, "p", nitro_core::Predicate::ge(0, 0.0))
            .unwrap();
        let guard = GuardedVariant::with_default_policy(cv).unwrap();
        assert!(guard.cascade_edges().is_empty());
        let diags = nitro_audit::analyze_graph(&guard.tuning_graph());
        assert!(diags.iter().any(|d| d.code == "NITRO084"), "{diags:?}");
    }

    #[test]
    fn tuning_graph_uses_the_guard_cascade() {
        let ctx = Context::new();
        let cv = toy(&ctx);
        let guard = GuardedVariant::with_default_policy(cv).unwrap();
        let g = guard.tuning_graph();
        assert_eq!(g.cascade, guard.cascade_edges());
        assert!(nitro_audit::analyze_graph(&g).is_empty());
    }

    #[test]
    fn missing_model_degrades_to_default_dispatch() {
        let ctx = Context::new();
        let mut guard = GuardedVariant::new(toy(&ctx), quick_policy()).unwrap();
        assert!(guard.health().is_degraded());
        guard.load_model_or_degrade();
        assert!(guard.health().is_degraded(), "registry is empty");
        // Degraded dispatch serves the default variant, even where the
        // model would have picked the other one.
        let inv = guard.call(&9.0).unwrap();
        assert_eq!(inv.variant, 0);
        assert!(inv.degraded);
        assert_eq!(guard.stats().degraded_calls, 1);
        // A model showing up in the registry restores health.
        let mut tuned = toy(&ctx);
        tuned.install_model(toy_model());
        tuned.save_model().unwrap();
        guard.load_model_or_degrade();
        assert_eq!(guard.health(), HealthStatus::Healthy);
        assert_eq!(guard.call(&9.0).unwrap().variant, 1);
    }

    #[test]
    fn panicking_variant_is_retried_quarantined_and_recovered() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let failing = Arc::new(AtomicBool::new(true));
        let flag = failing.clone();
        cv.replace_variant(
            1,
            Arc::new(FnVariant::new("large", move |&x: &f64| {
                if flag.load(Ordering::Relaxed) {
                    panic!("injected variant failure: 'large'");
                }
                10.0 - x * 0.5
            })),
        )
        .unwrap();
        cv.install_model(toy_model());
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();

        // First call at x=9 predicts the failing variant: both attempts
        // fail (threshold 2 → quarantine) and the cascade falls back.
        let inv = guard.call(&9.0).unwrap();
        assert_eq!(inv.variant, 0);
        assert!(inv.fell_back);
        assert_eq!(inv.retries, 1);
        assert!(inv.backoff_ns > 0.0);
        assert!(guard.is_quarantined(1));
        assert_eq!(guard.stats().quarantines, 1);

        // While quarantined, the variant is never attempted.
        for _ in 0..2 {
            let inv = guard.call(&9.0).unwrap();
            assert_eq!(inv.variant, 0);
        }
        // The outage ends; after the cooldown the half-open probe
        // succeeds and the variant recovers.
        failing.store(false, Ordering::Relaxed);
        let inv = guard.call(&9.0).unwrap();
        assert_eq!(inv.variant, 1, "half-open probe serves the variant");
        assert_eq!(guard.stats().recoveries, 1);
        assert_eq!(
            guard.breaker_state(1),
            Some(BreakerState::Closed {
                consecutive_failures: 0
            })
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed_and_decorrelated_per_shard() {
        let ctx = Context::new();
        // A guard whose model picks a permanently failing variant: every
        // call burns the full retry budget and charges jittered backoff.
        let mk_guard = |salt: u64, seed: u64| {
            let mut cv = toy(&ctx);
            cv.replace_variant(
                1,
                Arc::new(FnVariant::new("large", |_: &f64| -> f64 {
                    panic!("injected variant failure: 'large'");
                })),
            )
            .unwrap();
            cv.install_model(toy_model());
            let mut g = GuardedVariant::new(
                cv,
                GuardPolicy {
                    retry_budget: 3,
                    backoff_base_ns: 1_000.0,
                    backoff_jitter: 0.5,
                    jitter_seed: seed,
                    quarantine_threshold: 100,
                    ..GuardPolicy::default()
                },
            )
            .unwrap();
            g.set_backoff_salt(salt);
            g
        };
        let schedule = |salt: u64, seed: u64| -> Vec<f64> {
            let g = mk_guard(salt, seed);
            (0..4).map(|_| g.call(&9.0).unwrap().backoff_ns).collect()
        };
        // The schedule is a pure function of (seed, salt): rebuilding the
        // guard and replaying the same calls reproduces it bit-for-bit.
        assert_eq!(schedule(3, 99), schedule(3, 99));
        // Different shards (salts) under the same seed decorrelate, as
        // do different seeds under the same salt.
        assert_ne!(schedule(3, 99), schedule(4, 99));
        assert_ne!(schedule(3, 99), schedule(3, 100));
        // Every per-call total stays inside the jitter envelope around
        // the bare exponential sum (1 + 2 + 4 = 7 × base).
        for total in schedule(3, 99) {
            assert!((3_500.0..=10_500.0).contains(&total), "total {total}");
        }
        // Jitter 0 reproduces the bare exponential schedule exactly.
        let bare = {
            let ctx = Context::new();
            let mut cv = toy(&ctx);
            cv.replace_variant(
                1,
                Arc::new(FnVariant::new("large", |_: &f64| -> f64 {
                    panic!("injected variant failure: 'large'");
                })),
            )
            .unwrap();
            cv.install_model(toy_model());
            let g = GuardedVariant::new(
                cv,
                GuardPolicy {
                    retry_budget: 3,
                    backoff_base_ns: 1_000.0,
                    quarantine_threshold: 100,
                    ..GuardPolicy::default()
                },
            )
            .unwrap();
            g.call(&9.0).unwrap().backoff_ns
        };
        assert_eq!(bare, 7_000.0);
    }

    #[test]
    fn exhausted_cascade_is_a_typed_error() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("doomed", &ctx);
        cv.add_variant(FnVariant::new("only", |_: &f64| -> f64 {
            panic!("injected variant failure: 'only'")
        }));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        match guard.call(&1.0) {
            Err(NitroError::NoHealthyVariant { function, detail }) => {
                assert_eq!(function, "doomed");
                assert!(detail.contains("injected variant failure"), "{detail}");
            }
            other => panic!("expected NoHealthyVariant, got {other:?}"),
        }
        // Once quarantined, the error is immediate (entirely quarantined).
        match guard.call(&1.0) {
            Err(NitroError::NoHealthyVariant { detail, .. }) => {
                assert!(detail.contains("quarantined"), "{detail}");
            }
            other => panic!("expected NoHealthyVariant, got {other:?}"),
        }
    }

    #[test]
    fn constraint_vetoed_prediction_cascades_to_default() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.add_constraint(1, nitro_core::FnConstraint::new("never", |_: &f64| false))
            .unwrap();
        cv.install_model(toy_model());
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        let (features, _) = guard.inner().evaluate_features(&9.0);
        assert_eq!(guard.plan_cascade(&features, &9.0), vec![0]);
        assert_eq!(guard.call(&9.0).unwrap().variant, 0);
    }

    #[test]
    fn store_backed_load_walks_past_corruption_or_degrades() {
        let dir = nitro_core::context::temp_model_dir("guard-store").unwrap();
        let ctx = Context::new();
        let mut guard = GuardedVariant::new(toy(&ctx), quick_policy()).unwrap();

        // Empty store → degraded, no diagnostics.
        let mut store = nitro_store::ArtifactStore::open(&dir, "toy").unwrap();
        let (health, diags) = guard.load_latest_or_degrade(&store);
        assert!(health.is_degraded());
        assert!(diags.is_empty());

        // Publish v1 (good) and v2 (good), then corrupt v2 on disk: the
        // guard must skip v2 with a NITRO071 diagnostic and serve v1 —
        // the corrupt bytes are never installed.
        let mut tuned = toy(&ctx);
        tuned.install_model(toy_model());
        let artifact = tuned.export_artifact().unwrap();
        store.publish(&artifact, "v1").unwrap();
        let v2 = store.publish(&artifact, "v2").unwrap();
        std::fs::write(
            dir.join("toy").join(format!("v{v2:06}.model.json")),
            b"{garbage",
        )
        .unwrap();
        let (health, diags) = guard.load_latest_or_degrade(&store);
        assert_eq!(health, HealthStatus::Healthy);
        assert!(diags.iter().any(|d| d.code == "NITRO071"), "{diags:?}");
        assert_eq!(guard.call(&9.0).unwrap().variant, 1, "model-driven");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn guard_metrics_reach_the_tracer() {
        let ctx = Context::new();
        let sink = Arc::new(nitro_trace::RingSink::new(256));
        let tracer = nitro_trace::Tracer::new(sink.clone());
        ctx.install_tracer(tracer.clone());
        let mut cv = toy(&ctx);
        cv.replace_variant(
            1,
            Arc::new(FnVariant::new("large", |_: &f64| -> f64 {
                panic!("injected variant failure: 'large'")
            })),
        )
        .unwrap();
        cv.install_model(toy_model());
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        guard.call(&9.0).unwrap();

        let m = tracer.metrics();
        assert_eq!(m.counter("guard.toy.calls"), Some(1));
        assert_eq!(m.counter("guard.toy.retry"), Some(1));
        assert_eq!(m.counter("guard.toy.failure"), Some(2));
        assert_eq!(m.counter("guard.toy.quarantine"), Some(1));
        assert_eq!(m.counter("guard.toy.fallback"), Some(1));
        // Declared-but-untouched counters exist at zero.
        assert_eq!(m.counter("guard.toy.degraded"), Some(0));
        assert_eq!(m.counter("guard.toy.recovered"), Some(0));
        let events = sink.snapshot();
        assert!(events
            .iter()
            .any(|e| e.name == "guard:toy" && e.args.iter().any(|(k, _)| k == "event")));
    }

    #[test]
    fn guard_metrics_reach_the_pulse_registry() {
        let registry = nitro_pulse::PulseRegistry::with_stripes(2);
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.replace_variant(
            1,
            Arc::new(FnVariant::new("large", |_: &f64| -> f64 {
                panic!("injected variant failure: 'large'")
            })),
        )
        .unwrap();
        cv.install_model(toy_model());
        let mut guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        guard.attach_pulse(&registry);
        guard.call(&9.0).unwrap();

        assert_eq!(registry.counter_value("guard.toy.calls"), Some(1));
        assert_eq!(registry.counter_value("guard.toy.retry"), Some(1));
        assert_eq!(registry.counter_value("guard.toy.failure"), Some(2));
        assert_eq!(registry.counter_value("guard.toy.quarantine"), Some(1));
        assert_eq!(registry.counter_value("guard.toy.fallback"), Some(1));
        assert_eq!(registry.counter_value("guard.toy.degraded"), Some(0));
        // attach_pulse also installed a FunctionPulse observer on the
        // inner CodeVariant: the model-path dispatch fed the sketch.
        let latency = registry
            .fused_sketch("dispatch.toy.latency_ns")
            .expect("latency sketch registered");
        assert_eq!(latency.count(), 1);
    }

    #[test]
    fn one_guard_instance_serves_many_threads_lock_free() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GuardedVariant<f64>>();

        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.install_model(toy_model());
        let guard = Arc::new(GuardedVariant::new(cv, quick_policy()).unwrap());
        let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let guard = guard.clone();
                let served = served.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let x = ((t * 50 + i) % 10) as f64;
                        let inv = guard.call(&x).unwrap();
                        assert_eq!(inv.variant, usize::from(x >= 5.0));
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), 200);
        assert_eq!(guard.stats().calls, 200);
    }

    #[test]
    fn sibling_guards_share_quarantine_state() {
        let ctx = Context::new();
        let mut cv_a = toy(&ctx);
        cv_a.replace_variant(
            1,
            Arc::new(FnVariant::new("large", |_: &f64| -> f64 {
                panic!("injected variant failure: 'large'")
            })),
        )
        .unwrap();
        cv_a.install_model(toy_model());
        let guard_a = GuardedVariant::new(cv_a, quick_policy()).unwrap();

        // A sibling (another shard's guard over the same function) that
        // shares breaker/health/stats state.
        let mut cv_b = toy(&ctx);
        cv_b.install_model(toy_model());
        let guard_b = GuardedVariant::new_sharing(cv_b, quick_policy(), guard_a.shared()).unwrap();

        // Shard A trips variant 1's breaker…
        guard_a.call(&9.0).unwrap();
        assert!(guard_a.is_quarantined(1));
        // …and shard B sees the quarantine without ever failing itself.
        assert!(guard_b.is_quarantined(1));
        assert_eq!(guard_b.call(&9.0).unwrap().variant, 0, "skips quarantined");
        // Stats aggregate across both shards.
        assert_eq!(guard_b.stats().calls, 2);
        assert_eq!(guard_a.stats(), guard_b.stats());
    }
}
