//! # nitro-guard — resilient dispatch for Nitro code variants
//!
//! The paper's dispatcher assumes every variant that passes its
//! constraints will run to completion. On real accelerators (and under
//! the simulator's fault injection) that assumption breaks: launches
//! fail transiently, kernels hit driver bugs and panic, results come
//! back corrupted. This crate wraps a
//! [`CodeVariant`](nitro_core::CodeVariant) in a recovery pipeline so a
//! single bad variant degrades performance instead of crashing the
//! service:
//!
//! * **Failure isolation** — attempts run under `catch_unwind` and
//!   non-finite objectives are treated as failures
//!   ([`CodeVariant::try_run_variant`](nitro_core::CodeVariant::try_run_variant)),
//!   surfacing as typed
//!   [`NitroError::VariantFailed`](nitro_core::NitroError) values.
//! * **Retry with backoff** — each candidate gets a bounded retry
//!   budget with exponentially-doubling simulated backoff.
//! * **Quarantine** — a per-variant [`CircuitBreaker`]
//!   (Closed → Open → HalfOpen) takes repeat offenders out of rotation
//!   for a call-counted cooldown, then probes them back in.
//! * **Fallback cascade** — candidates are tried in the model's
//!   posterior order, ending at the default variant, so a quarantined
//!   winner falls back to the next-best prediction rather than failing
//!   the call.
//! * **Graceful degradation** — a missing, mismatched or audit-failing
//!   model artifact downgrades the guard to default-variant dispatch
//!   ([`HealthStatus::Degraded`]) instead of erroring. With a
//!   `nitro-store` [`ArtifactStore`](nitro_store::ArtifactStore),
//!   [`GuardedVariant::load_latest_or_degrade`] walks back past corrupt
//!   versions to the newest intact one — torn or bit-rotted artifacts
//!   are reported (`NITRO071`/`NITRO072`), never installed.
//!
//! Guard activity is observable through `nitro-trace` counters
//! (`guard.<fn>.quarantine`, `guard.<fn>.retry`, `guard.<fn>.degraded`,
//! …) and configuration is auditable through the `NITRO05x` diagnostics
//! in [`audit_guard_policy`] and [`audit_fault_plan`]. The [`chaos`]
//! module supplies the [`ChaosVariant`] decorator used by the chaos
//! harness (`nitro-bench`'s `chaos_report`) and the resilience example.

#![warn(missing_docs)]

pub mod audit;
pub mod breaker;
pub mod chaos;
pub mod dispatch;

pub use audit::{audit_fault_plan, audit_guard_policy};
pub use breaker::{BreakerState, CircuitBreaker, GuardPolicy, Transition};
pub use chaos::{inject_failures, ChaosPlan, ChaosVariant};
pub use dispatch::{GuardShared, GuardStats, GuardedInvocation, GuardedVariant, HealthStatus};
