//! Chaos decorators and whole-stack fault campaigns.
//!
//! [`ChaosVariant`] wraps an existing [`Variant`] and panics with an
//! `"injected variant failure"` payload while its shared flag is set,
//! delegating to the inner variant otherwise. Combined with
//! [`CodeVariant::replace_variant`](nitro_core::CodeVariant::replace_variant)
//! this sabotages a variant *in place* — same index, same name — so
//! chaos harnesses exercise the guard layer without touching the suite's
//! kernels or models. The payload carries
//! [`nitro_simt::INJECTED_PANIC_PREFIX`], so
//! [`nitro_simt::silence_injected_panics`] suppresses the hook spam.
//!
//! [`ChaosPlan`] composes every fault layer the stack knows into one
//! declarative, one-seed campaign: simulator launch faults
//! ([`nitro_simt::FaultPlan`]), filesystem faults
//! ([`nitro_core::ChaosFs`]), shard kills, poison-pill requests, clock
//! skew jumps and alert storms. Everything the plan schedules is a pure
//! function of its seed, so a campaign replays exactly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nitro_core::{mix64, ChaosFs, CodeVariant, Result, Variant};
use serde::{Deserialize, Serialize};

/// A variant that fails (panics) while its flag is raised.
pub struct ChaosVariant<I: ?Sized> {
    inner: Arc<dyn Variant<I>>,
    failing: Arc<AtomicBool>,
}

impl<I: ?Sized> ChaosVariant<I> {
    /// Wrap `inner`, failing whenever `failing` is `true`.
    pub fn new(inner: Arc<dyn Variant<I>>, failing: Arc<AtomicBool>) -> Self {
        Self { inner, failing }
    }

    /// Wrap `inner` with the flag permanently raised.
    pub fn always_failing(inner: Arc<dyn Variant<I>>) -> Self {
        Self::new(inner, Arc::new(AtomicBool::new(true)))
    }

    /// The shared outage flag (store `false` to end the outage).
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.failing.clone()
    }
}

impl<I: ?Sized> Variant<I> for ChaosVariant<I> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invoke(&self, input: &I) -> f64 {
        if self.failing.load(Ordering::Relaxed) {
            panic!("injected variant failure: '{}'", self.inner.name());
        }
        self.inner.invoke(input)
    }
}

/// Sabotage one variant of a code variant in place: the slot at `index`
/// is replaced with a [`ChaosVariant`] wrapping the original. Returns
/// the shared outage flag, initially set to `failing`.
pub fn inject_failures<I: ?Sized + 'static>(
    cv: &mut CodeVariant<I>,
    index: usize,
    failing: bool,
) -> Result<Arc<AtomicBool>> {
    let flag = Arc::new(AtomicBool::new(failing));
    let original = cv
        .variant(index)
        .ok_or(nitro_core::NitroError::InvalidIndex {
            what: "variant",
            index,
            len: cv.n_variants(),
        })?;
    cv.replace_variant(index, Arc::new(ChaosVariant::new(original, flag.clone())))?;
    Ok(flag)
}

/// A declarative whole-stack chaos campaign: per-layer fault schedules
/// composed from one seed.
///
/// The plan is plain data (serde-serializable — a campaign *is* its
/// JSON) and every derived schedule is a pure function of [`seed`]
/// (ChaosPlan::seed), so the same plan driven over the same request
/// sequence replays the same faults:
///
/// * **launch faults** — [`ChaosPlan::fault_plan`] yields the
///   [`nitro_simt::FaultPlan`] for the simulator seam;
/// * **fs faults** — [`ChaosPlan::fs_policy`] yields the seeded
///   [`ChaosFs`] for the store/WAL seam;
/// * **shard kills / poison pills** — request indices at which the
///   driver submits a shard-killing (once) or poison-pill (repeatedly
///   killing) request;
/// * **clock skew** — `(request index, jump ns)` pairs where the
///   serving clock lurches forward;
/// * **alert storms** — `(request index, pages)` pairs where a burst of
///   operator pages hits the admission tightener.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Master seed every sub-schedule derives from.
    pub seed: u64,
    /// Requests the campaign spans (event indices fall in `0..requests`).
    pub requests: u64,
    /// Probability a simulator launch fails outright.
    pub launch_failure_prob: f64,
    /// Probability a surviving launch is transiently slowed.
    pub slowdown_prob: f64,
    /// Per-op probability of a torn (crash mid-write) filesystem write.
    pub fs_torn_write: f64,
    /// Per-op probability of an `ENOSPC`-shaped write failure.
    pub fs_no_space: f64,
    /// Per-op probability of an `EIO`-shaped read failure.
    pub fs_read_error: f64,
    /// Per-op probability of a failed visibility rename.
    pub fs_rename_failed: f64,
    /// Request indices at which a shard-killing request is submitted.
    pub shard_kills: Vec<u64>,
    /// Request indices at which a poison-pill request is submitted.
    pub poison_pills: Vec<u64>,
    /// `(request index, jump ns)`: the serving clock skews forward.
    pub clock_skew: Vec<(u64, u64)>,
    /// `(request index, pages)`: a burst of operator pages arrives.
    pub alert_storms: Vec<(u64, u32)>,
}

impl ChaosPlan {
    /// A quiet plan (no faults anywhere) spanning `requests` requests.
    pub fn quiet(seed: u64, requests: u64) -> Self {
        Self {
            seed,
            requests,
            launch_failure_prob: 0.0,
            slowdown_prob: 0.0,
            fs_torn_write: 0.0,
            fs_no_space: 0.0,
            fs_read_error: 0.0,
            fs_rename_failed: 0.0,
            shard_kills: Vec::new(),
            poison_pills: Vec::new(),
            clock_skew: Vec::new(),
            alert_storms: Vec::new(),
        }
    }

    /// Derive a full multi-layer campaign from one seed: moderate fault
    /// probabilities on every layer plus seeded kill/poison/skew/storm
    /// events spread over the middle of the request sequence (the edges
    /// are left quiet so warmup and drain stay observable). Pure: the
    /// same `(seed, requests)` always builds the same plan.
    pub fn from_seed(seed: u64, requests: u64) -> Self {
        let sub = |lane: u64| mix64(seed ^ mix64(lane));
        let frac = |lane: u64| (sub(lane) >> 11) as f64 / (1u64 << 53) as f64;
        // Event indices land in the middle 60 % of the sequence.
        let span = requests.max(10);
        let lo = span / 5;
        let window = span - 2 * lo;
        let at = |lane: u64, i: u64| lo + sub(lane ^ (i << 32)) % window.max(1);
        let mut shard_kills: Vec<u64> = (0..2 + sub(1) % 2).map(|i| at(2, i)).collect();
        shard_kills.sort_unstable();
        shard_kills.dedup();
        Self {
            seed,
            requests,
            launch_failure_prob: 0.02 + 0.06 * frac(3),
            slowdown_prob: 0.05 * frac(4),
            fs_torn_write: 0.05 + 0.15 * frac(5),
            fs_no_space: 0.05 + 0.15 * frac(6),
            fs_read_error: 0.05 + 0.10 * frac(7),
            fs_rename_failed: 0.05 + 0.15 * frac(8),
            shard_kills,
            poison_pills: vec![at(9, 0)],
            clock_skew: vec![(at(10, 0), 1_000_000 + sub(11) % 50_000_000)],
            alert_storms: vec![(at(12, 0), 3 + (sub(13) % 5) as u32)],
        }
    }

    /// The simulator fault plan this campaign injects at the launch
    /// boundary (seeded from a dedicated lane of the master seed).
    pub fn fault_plan(&self) -> nitro_simt::FaultPlan {
        nitro_simt::FaultPlan {
            seed: mix64(self.seed ^ mix64(0x1A0C)),
            launch_failure_prob: self.launch_failure_prob,
            slowdown_prob: self.slowdown_prob,
            slowdown_factor: 3.0,
            ..nitro_simt::FaultPlan::default()
        }
    }

    /// The seeded filesystem fault policy this campaign injects under
    /// the store and WAL (a fresh instance each call: op indices start
    /// at zero, so one campaign = one policy instance).
    pub fn fs_policy(&self) -> ChaosFs {
        ChaosFs::with_probs(
            mix64(self.seed ^ mix64(0xF5F5)),
            self.fs_torn_write,
            self.fs_no_space,
            self.fs_read_error,
            self.fs_rename_failed,
        )
    }

    /// True when request `index` is scheduled to kill its shard once.
    pub fn kills_at(&self, index: u64) -> bool {
        self.shard_kills.contains(&index)
    }

    /// True when request `index` is a scheduled poison pill.
    pub fn poison_at(&self, index: u64) -> bool {
        self.poison_pills.contains(&index)
    }

    /// The clock-skew jump scheduled at request `index`, if any.
    pub fn skew_at(&self, index: u64) -> Option<u64> {
        self.clock_skew
            .iter()
            .find(|(i, _)| *i == index)
            .map(|&(_, ns)| ns)
    }

    /// The alert-storm page count scheduled at request `index`, if any.
    pub fn storm_at(&self, index: u64) -> Option<u32> {
        self.alert_storms
            .iter()
            .find(|(i, _)| *i == index)
            .map(|&(_, pages)| pages)
    }

    /// The fault classes this plan actually exercises (for reports).
    pub fn fault_classes(&self) -> Vec<&'static str> {
        let mut classes = Vec::new();
        if self.launch_failure_prob > 0.0 || self.slowdown_prob > 0.0 {
            classes.push("launch");
        }
        if self.fs_torn_write > 0.0
            || self.fs_no_space > 0.0
            || self.fs_read_error > 0.0
            || self.fs_rename_failed > 0.0
        {
            classes.push("fs");
        }
        if !self.shard_kills.is_empty() {
            classes.push("shard-kill");
        }
        if !self.poison_pills.is_empty() {
            classes.push("poison-pill");
        }
        if !self.clock_skew.is_empty() {
            classes.push("clock-skew");
        }
        if !self.alert_storms.is_empty() {
            classes.push("alert-storm");
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnVariant};

    #[test]
    fn chaos_variant_keeps_the_inner_name_and_toggles() {
        nitro_simt::silence_injected_panics();
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("toy", &ctx);
        cv.add_variant(FnVariant::new("steady", |&x: &f64| x * 2.0));
        let flag = inject_failures(&mut cv, 0, true).unwrap();
        assert_eq!(cv.variant(0).unwrap().name(), "steady");
        assert!(cv.try_run_variant(0, &3.0).is_err());
        flag.store(false, Ordering::Relaxed);
        assert_eq!(cv.try_run_variant(0, &3.0).unwrap(), 6.0);
    }

    #[test]
    fn injecting_out_of_range_is_a_typed_error() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("toy", &ctx);
        assert!(inject_failures(&mut cv, 0, true).is_err());
    }

    #[test]
    fn chaos_plan_is_a_pure_function_of_its_seed() {
        let a = ChaosPlan::from_seed(42, 1_000);
        let b = ChaosPlan::from_seed(42, 1_000);
        assert_eq!(a, b);
        let c = ChaosPlan::from_seed(43, 1_000);
        assert_ne!(a, c, "a different seed must build a different plan");
        // Every scheduled event lands inside the request sequence.
        for &i in a.shard_kills.iter().chain(&a.poison_pills) {
            assert!(i < 1_000, "event index {i} out of range");
        }
        for &(i, _) in a.clock_skew.iter() {
            assert!(i < 1_000);
        }
        for &(i, _) in a.alert_storms.iter() {
            assert!(i < 1_000);
        }
        // A full from_seed campaign exercises every fault class.
        let classes = a.fault_classes();
        for expected in [
            "launch",
            "fs",
            "shard-kill",
            "poison-pill",
            "clock-skew",
            "alert-storm",
        ] {
            assert!(classes.contains(&expected), "missing {expected}");
        }
        assert!(ChaosPlan::quiet(42, 10).fault_classes().is_empty());
    }

    #[test]
    fn chaos_plan_sub_policies_replay_under_the_same_seed() {
        use nitro_core::{FsOp, FsPolicy};
        let plan = ChaosPlan::from_seed(7, 500);
        assert_eq!(plan.fault_plan(), ChaosPlan::from_seed(7, 500).fault_plan());
        let (fs_a, fs_b) = (plan.fs_policy(), plan.fs_policy());
        let path = std::path::Path::new("store/manifest.json");
        for i in 0..128 {
            let op = match i % 3 {
                0 => FsOp::Read,
                1 => FsOp::Write,
                _ => FsOp::Rename,
            };
            assert_eq!(fs_a.fault(op, path), fs_b.fault(op, path), "op {i}");
        }
        // The event accessors agree with the schedule vectors.
        let kill = plan.shard_kills[0];
        assert!(plan.kills_at(kill));
        assert!(!plan.kills_at(plan.requests + 1));
        let (skew_at, skew_ns) = plan.clock_skew[0];
        assert_eq!(plan.skew_at(skew_at), Some(skew_ns));
        let (storm_at, pages) = plan.alert_storms[0];
        assert_eq!(plan.storm_at(storm_at), Some(pages));
        // A plan round-trips through its JSON form (a campaign is data).
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<ChaosPlan>(&json).unwrap(), plan);
    }
}
