//! Chaos decorators: make any registered variant fail on command.
//!
//! [`ChaosVariant`] wraps an existing [`Variant`] and panics with an
//! `"injected variant failure"` payload while its shared flag is set,
//! delegating to the inner variant otherwise. Combined with
//! [`CodeVariant::replace_variant`](nitro_core::CodeVariant::replace_variant)
//! this sabotages a variant *in place* — same index, same name — so
//! chaos harnesses exercise the guard layer without touching the suite's
//! kernels or models. The payload carries
//! [`nitro_simt::INJECTED_PANIC_PREFIX`], so
//! [`nitro_simt::silence_injected_panics`] suppresses the hook spam.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nitro_core::{CodeVariant, Result, Variant};

/// A variant that fails (panics) while its flag is raised.
pub struct ChaosVariant<I: ?Sized> {
    inner: Arc<dyn Variant<I>>,
    failing: Arc<AtomicBool>,
}

impl<I: ?Sized> ChaosVariant<I> {
    /// Wrap `inner`, failing whenever `failing` is `true`.
    pub fn new(inner: Arc<dyn Variant<I>>, failing: Arc<AtomicBool>) -> Self {
        Self { inner, failing }
    }

    /// Wrap `inner` with the flag permanently raised.
    pub fn always_failing(inner: Arc<dyn Variant<I>>) -> Self {
        Self::new(inner, Arc::new(AtomicBool::new(true)))
    }

    /// The shared outage flag (store `false` to end the outage).
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.failing.clone()
    }
}

impl<I: ?Sized> Variant<I> for ChaosVariant<I> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invoke(&self, input: &I) -> f64 {
        if self.failing.load(Ordering::Relaxed) {
            panic!("injected variant failure: '{}'", self.inner.name());
        }
        self.inner.invoke(input)
    }
}

/// Sabotage one variant of a code variant in place: the slot at `index`
/// is replaced with a [`ChaosVariant`] wrapping the original. Returns
/// the shared outage flag, initially set to `failing`.
pub fn inject_failures<I: ?Sized + 'static>(
    cv: &mut CodeVariant<I>,
    index: usize,
    failing: bool,
) -> Result<Arc<AtomicBool>> {
    let flag = Arc::new(AtomicBool::new(failing));
    let original = cv
        .variant(index)
        .ok_or(nitro_core::NitroError::InvalidIndex {
            what: "variant",
            index,
            len: cv.n_variants(),
        })?;
    cv.replace_variant(index, Arc::new(ChaosVariant::new(original, flag.clone())))?;
    Ok(flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnVariant};

    #[test]
    fn chaos_variant_keeps_the_inner_name_and_toggles() {
        nitro_simt::silence_injected_panics();
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("toy", &ctx);
        cv.add_variant(FnVariant::new("steady", |&x: &f64| x * 2.0));
        let flag = inject_failures(&mut cv, 0, true).unwrap();
        assert_eq!(cv.variant(0).unwrap().name(), "steady");
        assert!(cv.try_run_variant(0, &3.0).is_err());
        flag.store(false, Ordering::Relaxed);
        assert_eq!(cv.try_run_variant(0, &3.0).unwrap(), 6.0);
    }

    #[test]
    fn injecting_out_of_range_is_a_typed_error() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("toy", &ctx);
        assert!(inject_failures(&mut cv, 0, true).is_err());
    }
}
