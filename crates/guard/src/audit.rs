//! Resilience-configuration audit: the `NITRO05x` diagnostics.
//!
//! These analyzers extend the `nitro-audit` code space to the guard
//! layer's configuration surface. They live here rather than in
//! `nitro-audit` because they inspect [`GuardPolicy`] and
//! [`nitro_simt::FaultPlan`], which sit above the audit crate in the
//! dependency graph; the diagnostics vocabulary is still
//! [`nitro_core::Diagnostic`], so findings compose with every other
//! audit surface (and [`NitroError::Audit`](nitro_core::NitroError)
//! carries them).
//!
//! Codes:
//!
//! * `NITRO050` (error)   — zero-trip circuit breaker
//!   (`quarantine_threshold == 0`): every variant would quarantine on
//!   its first failure, including transient ones.
//! * `NITRO051` (warning) — zero retry budget: transient launch
//!   failures immediately consume a breaker trip.
//! * `NITRO052` (error)   — fault-plan probability outside `[0, 1]`
//!   (or a non-positive/non-finite slowdown factor).
//! * `NITRO053` (warning) — quarantine threshold below the retry
//!   budget: a single call's retry burst can trip the breaker on its
//!   own, so one bad input quarantines the variant.
//! * `NITRO054` (warning) — zero cooldown: an Open breaker half-opens
//!   on the very next call, making quarantine toothless.
//! * `NITRO055` (error)   — negative or non-finite backoff base.

use nitro_core::diag::registry::codes;
use nitro_core::Diagnostic;
use nitro_simt::FaultPlan;

use crate::breaker::GuardPolicy;

/// Audit a guard policy for `function`. [`GuardedVariant::new`]
/// (crate::GuardedVariant::new) refuses to construct on error-severity
/// findings.
pub fn audit_guard_policy(function: &str, policy: &GuardPolicy) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if policy.quarantine_threshold == 0 {
        diags.push(Diagnostic::error(
            codes::NITRO050,
            function,
            "zero-trip circuit breaker: quarantine_threshold is 0, so every variant \
             quarantines on its first failure (set it to at least 1)",
        ));
    }
    if policy.retry_budget == 0 {
        diags.push(Diagnostic::warning(
            codes::NITRO051,
            function,
            "zero retry budget: transient launch failures are never retried and \
             count straight toward quarantine",
        ));
    }
    if policy.quarantine_threshold > 0 && policy.quarantine_threshold < policy.retry_budget {
        diags.push(Diagnostic::warning(
            codes::NITRO053,
            function,
            format!(
                "quarantine threshold {} is below the retry budget {}: one call's \
                 retry burst can quarantine a variant on a single bad input",
                policy.quarantine_threshold, policy.retry_budget
            ),
        ));
    }
    if policy.cooldown_calls == 0 {
        diags.push(Diagnostic::warning(
            codes::NITRO054,
            function,
            "zero cooldown: an opened breaker half-opens on the next call, so \
             quarantine never actually rests a failing variant",
        ));
    }
    if !policy.backoff_base_ns.is_finite() || policy.backoff_base_ns < 0.0 {
        diags.push(Diagnostic::error(
            codes::NITRO055,
            function,
            format!(
                "backoff_base_ns must be a non-negative finite duration, got {}",
                policy.backoff_base_ns
            ),
        ));
    }
    diags
}

/// Audit a fault plan (NITRO052). `subject` names the experiment or
/// harness installing the plan.
pub fn audit_fault_plan(subject: &str, plan: &FaultPlan) -> Vec<Diagnostic> {
    plan.validate()
        .into_iter()
        .map(|problem| Diagnostic::error(codes::NITRO052, subject, problem))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_audit::has_errors;
    use nitro_core::Severity;

    #[test]
    fn default_policy_is_clean() {
        assert!(audit_guard_policy("spmv", &GuardPolicy::default()).is_empty());
    }

    #[test]
    fn zero_trip_breaker_is_an_error() {
        let policy = GuardPolicy {
            quarantine_threshold: 0,
            ..GuardPolicy::default()
        };
        let diags = audit_guard_policy("spmv", &policy);
        assert!(diags.iter().any(|d| d.code == "NITRO050"));
        assert!(has_errors(&diags));
    }

    #[test]
    fn zero_retry_budget_warns() {
        let policy = GuardPolicy {
            retry_budget: 0,
            ..GuardPolicy::default()
        };
        let diags = audit_guard_policy("bfs", &policy);
        let d = diags.iter().find(|d| d.code == "NITRO051").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn threshold_below_budget_warns() {
        let policy = GuardPolicy {
            quarantine_threshold: 1,
            retry_budget: 4,
            ..GuardPolicy::default()
        };
        let diags = audit_guard_policy("sort", &policy);
        assert!(diags.iter().any(|d| d.code == "NITRO053"));
    }

    #[test]
    fn zero_cooldown_and_bad_backoff_flagged() {
        let policy = GuardPolicy {
            cooldown_calls: 0,
            backoff_base_ns: f64::NAN,
            ..GuardPolicy::default()
        };
        let diags = audit_guard_policy("hist", &policy);
        assert!(diags.iter().any(|d| d.code == "NITRO054"));
        assert!(diags.iter().any(|d| d.code == "NITRO055"));
        assert!(has_errors(&diags));
    }

    #[test]
    fn fault_plan_probabilities_outside_unit_interval_error() {
        let plan = FaultPlan {
            launch_failure_prob: 1.2,
            corruption_prob: -0.5,
            ..FaultPlan::default()
        };
        let diags = audit_fault_plan("chaos", &plan);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "NITRO052"));
        assert!(has_errors(&diags));
        assert!(audit_fault_plan("chaos", &FaultPlan::default()).is_empty());
    }
}
