//! The per-variant circuit breaker: Closed → Open → HalfOpen.
//!
//! Each variant of a guarded `code_variant` owns one [`CircuitBreaker`].
//! Consecutive execution failures trip it **Open** (the variant is
//! quarantined and skipped by the fallback cascade); after a cooldown
//! measured in guarded calls it moves to **HalfOpen**, where the variant
//! is dispatchable again as a probe — one more failure re-opens it, enough
//! successes close it. All thresholds come from [`GuardPolicy`].
//!
//! The clock is *guarded calls*, not wall time: the simulator's time is
//! virtual, and call-counted cooldowns keep chaos tests deterministic.

use serde::{Deserialize, Serialize};

/// Tunable knobs of the resilience layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardPolicy {
    /// Retries after the first failed attempt of a candidate variant
    /// (so a candidate gets `1 + retry_budget` attempts per call).
    pub retry_budget: u32,
    /// Simulated backoff charged before the first retry, in nanoseconds;
    /// doubles on each further retry.
    pub backoff_base_ns: f64,
    /// Consecutive failures that trip a variant's breaker Open.
    pub quarantine_threshold: u32,
    /// Guarded calls an Open breaker waits before probing (HalfOpen).
    pub cooldown_calls: u64,
    /// Successful HalfOpen probes required to close the breaker.
    pub half_open_probes: u32,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        Self {
            retry_budget: 2,
            backoff_base_ns: 1_000.0,
            quarantine_threshold: 3,
            cooldown_calls: 16,
            half_open_probes: 1,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the variant is dispatchable.
    Closed {
        /// Failures seen since the last success.
        consecutive_failures: u32,
    },
    /// Quarantined: the variant is skipped by dispatch.
    Open {
        /// Guarded calls left before the breaker half-opens.
        remaining_cooldown: u64,
    },
    /// Probing: dispatchable again, one failure away from re-opening.
    HalfOpen {
        /// Successful probes so far.
        successes: u32,
    },
}

/// A state transition worth counting (and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open: the variant entered quarantine.
    Opened,
    /// HalfOpen → Open: the probe failed, back to quarantine.
    Reopened,
    /// HalfOpen → Closed: the variant recovered.
    Recovered,
}

/// One variant's breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u64,
    probes_to_close: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A Closed breaker configured from the policy.
    pub fn new(policy: &GuardPolicy) -> Self {
        Self {
            // A zero threshold would quarantine on sight; the policy
            // audit (NITRO050) refuses it, but the breaker itself stays
            // total by clamping.
            threshold: policy.quarantine_threshold.max(1),
            cooldown: policy.cooldown_calls,
            probes_to_close: policy.half_open_probes.max(1),
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether dispatch may run this variant (Closed or HalfOpen).
    pub fn is_available(&self) -> bool {
        !matches!(self.state, BreakerState::Open { .. })
    }

    /// Whether the variant is quarantined (Open).
    pub fn is_quarantined(&self) -> bool {
        !self.is_available()
    }

    /// Advance the cooldown clock by one guarded call. Returns `true`
    /// when this tick moved the breaker from Open to HalfOpen.
    pub fn tick(&mut self) -> bool {
        if let BreakerState::Open { remaining_cooldown } = self.state {
            if remaining_cooldown <= 1 {
                self.state = BreakerState::HalfOpen { successes: 0 };
                return true;
            }
            self.state = BreakerState::Open {
                remaining_cooldown: remaining_cooldown - 1,
            };
        }
        false
    }

    /// Record a successful execution of this variant.
    pub fn on_success(&mut self) -> Option<Transition> {
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
                None
            }
            BreakerState::HalfOpen { successes } => {
                if successes + 1 >= self.probes_to_close {
                    self.state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                    Some(Transition::Recovered)
                } else {
                    self.state = BreakerState::HalfOpen {
                        successes: successes + 1,
                    };
                    None
                }
            }
            // Dispatch never runs an Open variant, but stay total.
            BreakerState::Open { .. } => None,
        }
    }

    /// Record a failed execution of this variant.
    pub fn on_failure(&mut self) -> Option<Transition> {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.threshold {
                    self.state = BreakerState::Open {
                        remaining_cooldown: self.cooldown,
                    };
                    Some(Transition::Opened)
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: failures,
                    };
                    None
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    remaining_cooldown: self.cooldown,
                };
                Some(Transition::Reopened)
            }
            BreakerState::Open { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> GuardPolicy {
        GuardPolicy {
            quarantine_threshold: 3,
            cooldown_calls: 2,
            half_open_probes: 2,
            ..GuardPolicy::default()
        }
    }

    #[test]
    fn trips_open_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(&policy());
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        assert!(b.is_available());
        assert_eq!(b.on_failure(), Some(Transition::Opened));
        assert!(b.is_quarantined());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(&policy());
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert!(b.is_available(), "streak was reset by the success");
    }

    #[test]
    fn cooldown_ticks_to_half_open_then_probes_close() {
        let mut b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.on_failure();
        }
        assert!(b.is_quarantined());
        assert!(!b.tick(), "cooldown 2 → 1");
        assert!(b.tick(), "cooldown 1 → HalfOpen");
        assert!(b.is_available());
        assert_eq!(b.on_success(), None, "first of two probes");
        assert_eq!(b.on_success(), Some(Transition::Recovered));
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
    }

    #[test]
    fn half_open_failure_reopens_with_full_cooldown() {
        let mut b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.on_failure();
        }
        b.tick();
        b.tick();
        assert_eq!(b.on_failure(), Some(Transition::Reopened));
        assert_eq!(
            b.state(),
            BreakerState::Open {
                remaining_cooldown: 2
            }
        );
    }

    #[test]
    fn ticking_a_closed_breaker_is_a_no_op() {
        let mut b = CircuitBreaker::new(&policy());
        assert!(!b.tick());
        assert!(b.is_available());
    }
}
