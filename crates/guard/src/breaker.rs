//! The per-variant circuit breaker: Closed → Open → HalfOpen.
//!
//! Each variant of a guarded `code_variant` owns one [`CircuitBreaker`].
//! Consecutive execution failures trip it **Open** (the variant is
//! quarantined and skipped by the fallback cascade); after a cooldown
//! measured in guarded calls it moves to **HalfOpen**, where the variant
//! is dispatchable again as a probe — one more failure re-opens it, enough
//! successes close it. All thresholds come from [`GuardPolicy`].
//!
//! The clock is *guarded calls*, not wall time: the simulator's time is
//! virtual, and call-counted cooldowns keep chaos tests deterministic.
//!
//! The breaker is **shard-shareable**: its state lives in one packed
//! `AtomicU64` and every transition is a CAS loop, so [`tick`]
//! (CircuitBreaker::tick), [`on_success`](CircuitBreaker::on_success)
//! and [`on_failure`](CircuitBreaker::on_failure) all take `&self` and
//! are safe to call from any number of worker threads without a mutex.
//! Under concurrent updates each transition is applied atomically
//! against the state the CAS observed — two racing failures on a breaker
//! one step from its threshold produce exactly one `Opened` transition.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Tunable knobs of the resilience layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardPolicy {
    /// Retries after the first failed attempt of a candidate variant
    /// (so a candidate gets `1 + retry_budget` attempts per call).
    pub retry_budget: u32,
    /// Simulated backoff charged before the first retry, in nanoseconds;
    /// doubles on each further retry.
    pub backoff_base_ns: f64,
    /// Deterministic jitter fraction in `[0, 1]` applied to each backoff
    /// pause: the pause is scaled by a seeded factor in
    /// `[1 − jitter, 1 + jitter)` so N shards retrying the same fault
    /// decorrelate instead of thundering in lockstep. `0.0` (the
    /// default) reproduces the bare exponential schedule.
    #[serde(default)]
    pub backoff_jitter: f64,
    /// Seed of the jitter stream. Combined with the guard's per-shard
    /// salt ([`crate::GuardedVariant::set_backoff_salt`]) so the
    /// schedule is a pure, replayable function of
    /// `(seed, salt, candidate, attempt, retry sequence)`.
    #[serde(default = "default_jitter_seed")]
    pub jitter_seed: u64,
    /// Consecutive failures that trip a variant's breaker Open.
    pub quarantine_threshold: u32,
    /// Guarded calls an Open breaker waits before probing (HalfOpen).
    pub cooldown_calls: u64,
    /// Successful HalfOpen probes required to close the breaker.
    pub half_open_probes: u32,
}

fn default_jitter_seed() -> u64 {
    0x6A17_7E55_EED5_EED1
}

impl Default for GuardPolicy {
    fn default() -> Self {
        Self {
            retry_budget: 2,
            backoff_base_ns: 1_000.0,
            backoff_jitter: 0.0,
            jitter_seed: default_jitter_seed(),
            quarantine_threshold: 3,
            cooldown_calls: 16,
            half_open_probes: 1,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the variant is dispatchable.
    Closed {
        /// Failures seen since the last success.
        consecutive_failures: u32,
    },
    /// Quarantined: the variant is skipped by dispatch.
    Open {
        /// Guarded calls left before the breaker half-opens.
        remaining_cooldown: u64,
    },
    /// Probing: dispatchable again, one failure away from re-opening.
    HalfOpen {
        /// Successful probes so far.
        successes: u32,
    },
}

/// A state transition worth counting (and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open: the variant entered quarantine.
    Opened,
    /// HalfOpen → Open: the probe failed, back to quarantine.
    Reopened,
    /// HalfOpen → Closed: the variant recovered.
    Recovered,
}

// Packed state word: tag in the top two bits, payload (failure streak,
// remaining cooldown or probe successes) in the low 62.
const TAG_SHIFT: u32 = 62;
const TAG_CLOSED: u64 = 0;
const TAG_OPEN: u64 = 1;
const TAG_HALF_OPEN: u64 = 2;
const VALUE_MASK: u64 = (1 << TAG_SHIFT) - 1;

fn encode(state: BreakerState) -> u64 {
    match state {
        BreakerState::Closed {
            consecutive_failures,
        } => (TAG_CLOSED << TAG_SHIFT) | u64::from(consecutive_failures),
        BreakerState::Open { remaining_cooldown } => {
            (TAG_OPEN << TAG_SHIFT) | (remaining_cooldown & VALUE_MASK)
        }
        BreakerState::HalfOpen { successes } => (TAG_HALF_OPEN << TAG_SHIFT) | u64::from(successes),
    }
}

fn decode(word: u64) -> BreakerState {
    let value = word & VALUE_MASK;
    match word >> TAG_SHIFT {
        TAG_OPEN => BreakerState::Open {
            remaining_cooldown: value,
        },
        TAG_HALF_OPEN => BreakerState::HalfOpen {
            successes: value as u32,
        },
        _ => BreakerState::Closed {
            consecutive_failures: value as u32,
        },
    }
}

/// One variant's breaker. `Send + Sync`: state transitions are lock-free
/// CAS loops on a single packed word.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u64,
    probes_to_close: u32,
    state: AtomicU64,
}

impl Clone for CircuitBreaker {
    fn clone(&self) -> Self {
        Self {
            threshold: self.threshold,
            cooldown: self.cooldown,
            probes_to_close: self.probes_to_close,
            state: AtomicU64::new(self.state.load(Ordering::SeqCst)),
        }
    }
}

impl PartialEq for CircuitBreaker {
    fn eq(&self, other: &Self) -> bool {
        self.threshold == other.threshold
            && self.cooldown == other.cooldown
            && self.probes_to_close == other.probes_to_close
            && self.state() == other.state()
    }
}

impl CircuitBreaker {
    /// A Closed breaker configured from the policy.
    pub fn new(policy: &GuardPolicy) -> Self {
        Self {
            // A zero threshold would quarantine on sight; the policy
            // audit (NITRO050) refuses it, but the breaker itself stays
            // total by clamping. The cooldown clamp keeps the packed
            // representation total (62 bits of call-counted cooldown).
            threshold: policy.quarantine_threshold.max(1),
            cooldown: policy.cooldown_calls.min(VALUE_MASK),
            probes_to_close: policy.half_open_probes.max(1),
            state: AtomicU64::new(encode(BreakerState::Closed {
                consecutive_failures: 0,
            })),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        decode(self.state.load(Ordering::SeqCst))
    }

    /// Whether dispatch may run this variant (Closed or HalfOpen).
    pub fn is_available(&self) -> bool {
        !matches!(self.state(), BreakerState::Open { .. })
    }

    /// Whether the variant is quarantined (Open).
    pub fn is_quarantined(&self) -> bool {
        !self.is_available()
    }

    /// Apply `step` atomically to the current state: CAS-loop until the
    /// transition lands against an unchanged snapshot.
    fn transition<R>(&self, step: impl Fn(BreakerState) -> (BreakerState, R)) -> R {
        let mut current = self.state.load(Ordering::SeqCst);
        loop {
            let (next, out) = step(decode(current));
            match self.state.compare_exchange_weak(
                current,
                encode(next),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return out,
                Err(observed) => current = observed,
            }
        }
    }

    /// Advance the cooldown clock by one guarded call. Returns `true`
    /// when this tick moved the breaker from Open to HalfOpen.
    pub fn tick(&self) -> bool {
        self.transition(|state| match state {
            BreakerState::Open { remaining_cooldown } if remaining_cooldown <= 1 => {
                (BreakerState::HalfOpen { successes: 0 }, true)
            }
            BreakerState::Open { remaining_cooldown } => (
                BreakerState::Open {
                    remaining_cooldown: remaining_cooldown - 1,
                },
                false,
            ),
            other => (other, false),
        })
    }

    /// Record a successful execution of this variant.
    pub fn on_success(&self) -> Option<Transition> {
        self.transition(|state| match state {
            BreakerState::Closed { .. } => (
                BreakerState::Closed {
                    consecutive_failures: 0,
                },
                None,
            ),
            BreakerState::HalfOpen { successes } => {
                if successes + 1 >= self.probes_to_close {
                    (
                        BreakerState::Closed {
                            consecutive_failures: 0,
                        },
                        Some(Transition::Recovered),
                    )
                } else {
                    (
                        BreakerState::HalfOpen {
                            successes: successes + 1,
                        },
                        None,
                    )
                }
            }
            // Dispatch never runs an Open variant, but stay total.
            open @ BreakerState::Open { .. } => (open, None),
        })
    }

    /// Record a failed execution of this variant.
    pub fn on_failure(&self) -> Option<Transition> {
        self.transition(|state| match state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.threshold {
                    (
                        BreakerState::Open {
                            remaining_cooldown: self.cooldown,
                        },
                        Some(Transition::Opened),
                    )
                } else {
                    (
                        BreakerState::Closed {
                            consecutive_failures: failures,
                        },
                        None,
                    )
                }
            }
            BreakerState::HalfOpen { .. } => (
                BreakerState::Open {
                    remaining_cooldown: self.cooldown,
                },
                Some(Transition::Reopened),
            ),
            open @ BreakerState::Open { .. } => (open, None),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> GuardPolicy {
        GuardPolicy {
            quarantine_threshold: 3,
            cooldown_calls: 2,
            half_open_probes: 2,
            ..GuardPolicy::default()
        }
    }

    #[test]
    fn trips_open_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(&policy());
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        assert!(b.is_available());
        assert_eq!(b.on_failure(), Some(Transition::Opened));
        assert!(b.is_quarantined());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(&policy());
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert!(b.is_available(), "streak was reset by the success");
    }

    #[test]
    fn cooldown_ticks_to_half_open_then_probes_close() {
        let b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.on_failure();
        }
        assert!(b.is_quarantined());
        assert!(!b.tick(), "cooldown 2 → 1");
        assert!(b.tick(), "cooldown 1 → HalfOpen");
        assert!(b.is_available());
        assert_eq!(b.on_success(), None, "first of two probes");
        assert_eq!(b.on_success(), Some(Transition::Recovered));
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
    }

    #[test]
    fn half_open_failure_reopens_with_full_cooldown() {
        let b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.on_failure();
        }
        b.tick();
        b.tick();
        assert_eq!(b.on_failure(), Some(Transition::Reopened));
        assert_eq!(
            b.state(),
            BreakerState::Open {
                remaining_cooldown: 2
            }
        );
    }

    #[test]
    fn ticking_a_closed_breaker_is_a_no_op() {
        let b = CircuitBreaker::new(&policy());
        assert!(!b.tick());
        assert!(b.is_available());
    }

    #[test]
    fn concurrent_failures_produce_exactly_one_opened_transition() {
        let b = std::sync::Arc::new(CircuitBreaker::new(&GuardPolicy {
            quarantine_threshold: 64,
            cooldown_calls: 1_000_000,
            ..GuardPolicy::default()
        }));
        let opened = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                let opened = opened.clone();
                s.spawn(move || {
                    for _ in 0..64 {
                        if b.on_failure() == Some(Transition::Opened) {
                            opened.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 512 failures against threshold 64: the breaker opened exactly
        // once (further failures hit the Open arm, a no-op).
        assert_eq!(opened.load(Ordering::Relaxed), 1);
        assert!(b.is_quarantined());
    }
}
