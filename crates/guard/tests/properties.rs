//! Property tests for the resilience layer (ISSUE 3 satellite):
//!
//! 1. the breaker never dispatches a quarantined variant,
//! 2. the fallback cascade always reaches the default variant
//!    (terminal slot, or head when the model predicts the default),
//! 3. guarded dispatch under a seeded `FaultPlan` is deterministic
//!    across runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
use nitro_guard::{BreakerState, GuardPolicy, GuardedVariant};
use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
use nitro_simt::{DeviceConfig, FaultPlan, Gpu, Schedule};
use proptest::prelude::*;

fn quick_policy() -> GuardPolicy {
    GuardPolicy {
        retry_budget: 1,
        quarantine_threshold: 2,
        cooldown_calls: 3,
        half_open_probes: 1,
        ..GuardPolicy::default()
    }
}

/// k=1 KNN: x < 5 → variant 0, x ≥ 5 → variant 1.
fn two_class_model() -> TrainedModel {
    let data = Dataset::from_parts(
        (0..10).map(|i| vec![i as f64]).collect(),
        (0..10).map(|i| usize::from(i >= 5)).collect(),
    );
    TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
}

proptest! {
    /// Whatever the outage schedule, a variant whose breaker is Open
    /// (and stays Open through this call's cooldown tick) is never
    /// invoked.
    #[test]
    fn quarantined_variant_is_never_invoked(
        schedule in prop::collection::vec((0.0f64..10.0, (0u32..2).prop_map(|b| b == 1)), 1..40)
    ) {
        nitro_simt::silence_injected_panics();
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("guarded", &ctx);
        let counts = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let outage = Arc::new(AtomicBool::new(false));
        {
            let c = counts[0].clone();
            cv.add_variant(FnVariant::new("steady", move |&x: &f64| {
                c.fetch_add(1, Ordering::Relaxed);
                1.0 + x
            }));
        }
        {
            let c = counts[1].clone();
            let flag = outage.clone();
            cv.add_variant(FnVariant::new("flaky", move |&x: &f64| {
                c.fetch_add(1, Ordering::Relaxed);
                if flag.load(Ordering::Relaxed) {
                    panic!("injected variant failure: 'flaky'");
                }
                10.0 - x * 0.5
            }));
        }
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.install_model(two_class_model());
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();

        for (x, failing) in schedule {
            outage.store(failing, Ordering::Relaxed);
            let pre_states = guard.breaker_states();
            let pre_counts: Vec<u64> =
                counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            // Variant 0 (the default) never fails, so the call succeeds.
            let inv = guard.call(&x).unwrap();
            prop_assert!(inv.variant < 2);
            for (v, state) in pre_states.iter().enumerate() {
                // A breaker Open with more than one call of cooldown left
                // is still Open after this call's tick: the variant must
                // not have run.
                if let BreakerState::Open { remaining_cooldown } = state {
                    if *remaining_cooldown > 1 {
                        prop_assert_eq!(
                            counts[v].load(Ordering::Relaxed), pre_counts[v],
                            "variant {} ran while quarantined", v
                        );
                        prop_assert!(inv.variant != v);
                    }
                }
            }
        }
    }

    /// The planned cascade always reaches the default variant: the
    /// default appears exactly once, in the terminal slot — or at the
    /// head when the model predicts it — and no candidate repeats.
    #[test]
    fn cascade_always_reaches_the_default(
        (n, default, x) in (2usize..6).prop_flat_map(|n|
            (Just(n), 0usize..n, 0.0f64..24.0))
    ) {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("cascade", &ctx);
        for v in 0..n {
            cv.add_variant(FnVariant::new(format!("v{v}"), move |&x: &f64| x + v as f64));
        }
        cv.set_default(default);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));

        // Degraded (no model): the cascade is exactly [default].
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        let (features, _) = guard.inner().evaluate_features(&x);
        prop_assert_eq!(guard.plan_cascade(&features, &x), vec![default]);

        // Healthy: train an n-class model over x ∈ [0, 24).
        let data = Dataset::from_parts(
            (0..4 * n).map(|i| vec![i as f64]).collect(),
            (0..4 * n).map(|i| i % n).collect(),
        );
        let mut cv = guard.into_inner();
        cv.install_model(TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data));
        let guard = GuardedVariant::new(cv, quick_policy()).unwrap();
        let cascade = guard.plan_cascade(&features, &x);

        prop_assert!(!cascade.is_empty());
        prop_assert!(cascade.iter().all(|&v| v < n));
        let mut seen = std::collections::HashSet::new();
        prop_assert!(cascade.iter().all(|v| seen.insert(*v)), "duplicate candidate");
        prop_assert_eq!(
            cascade.iter().filter(|&&v| v == default).count(), 1,
            "default must appear exactly once"
        );
        prop_assert!(
            *cascade.last().unwrap() == default || cascade[0] == default,
            "default must terminate (or lead) the cascade: {:?}", &cascade
        );
    }

    /// Two identical guards replaying the same inputs under the same
    /// seeded fault plan agree on every outcome, every statistic and
    /// every breaker state.
    #[test]
    fn dispatch_under_a_seeded_fault_plan_is_deterministic(
        (plan_seed, gpu_seeds) in (0u64..u64::MAX, prop::collection::vec(0u64..u64::MAX, 1..24))
    ) {
        nitro_simt::silence_injected_panics();
        let plan = FaultPlan::with_failure_prob(plan_seed, 0.3);

        let build = || {
            let ctx = Context::new();
            let mut cv = CodeVariant::<u64>::new("faulty", &ctx);
            for (v, kernel) in ["alpha", "beta"].into_iter().enumerate() {
                let plan = plan.clone();
                cv.add_variant(FnVariant::new(kernel, move |&seed: &u64| {
                    let gpu = Gpu::with_seed(DeviceConfig::fermi_c2050(), seed ^ (v as u64))
                        .with_fault_plan(plan.clone());
                    gpu.launch(kernel, 8, Schedule::EvenShare, |_, _| {}).elapsed_ns
                }));
            }
            cv.set_default(0);
            cv.add_input_feature(FnFeature::new("bucket", |&s: &u64| (s % 10) as f64));
            cv.install_model(two_class_model());
            GuardedVariant::new(cv, quick_policy()).unwrap()
        };
        let a = build();
        let b = build();

        for seed in gpu_seeds {
            let ra = a.call(&seed);
            let rb = b.call(&seed);
            match (ra, rb) {
                (Ok(ia), Ok(ib)) => prop_assert_eq!(ia, ib),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (ra, rb) => prop_assert!(false, "runs diverged: {:?} vs {:?}", ra, rb),
            }
            prop_assert_eq!(a.breaker_states(), b.breaker_states());
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
