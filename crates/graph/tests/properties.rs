//! Property tests: every BFS variant computes reference depths on
//! arbitrary graphs, and TEPS accounting stays consistent.

use nitro_graph::{gen, run_bfs, run_hybrid, CsrGraph, Strategy as BfsStrategy};
use nitro_simt::DeviceConfig;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..60,
        prop::collection::vec((0u32..60, 0u32..60), 1..300),
    )
        .prop_map(|(n, edges)| {
            let clipped: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            CsrGraph::from_edges(n, &clipped)
        })
}

proptest! {
    /// All six variants and the Hybrid produce the reference depths.
    #[test]
    fn variants_match_reference_depths(g in arb_graph(), source_raw in 0usize..60) {
        let source = source_raw % g.n;
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let reference = g.bfs_reference(source);
        for strategy in [BfsStrategy::ExpandContract, BfsStrategy::ContractExpand, BfsStrategy::TwoPhase] {
            for fused in [true, false] {
                let run = run_bfs(&g, source, strategy, fused, &cfg, 3);
                prop_assert_eq!(&run.depth, &reference);
                prop_assert!(run.elapsed_ns > 0.0);
            }
        }
        let hybrid = run_hybrid(&g, source, &cfg, 3);
        prop_assert_eq!(&hybrid.depth, &reference);
    }

    /// Edges traversed equals the sum of out-degrees of reached vertices,
    /// and level count equals the maximum finite depth.
    #[test]
    fn traversal_accounting_consistent(g in arb_graph(), source_raw in 0usize..60) {
        let source = source_raw % g.n;
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let run = run_bfs(&g, source, BfsStrategy::ContractExpand, true, &cfg, 5);
        let expected_edges: u64 = run
            .depth
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != usize::MAX)
            .map(|(v, _)| g.degree(v) as u64)
            .sum();
        prop_assert_eq!(run.edges_traversed, expected_edges);
        let max_depth = run.depth.iter().filter(|&&d| d != usize::MAX).max().copied().unwrap_or(0);
        prop_assert_eq!(run.levels, max_depth + 1);
    }

    /// Degree statistics are internally consistent.
    #[test]
    fn degree_statistics_consistent(g in arb_graph()) {
        let avg = g.avg_out_degree();
        let total: usize = (0..g.n).map(|v| g.degree(v)).sum();
        prop_assert!((avg - total as f64 / g.n as f64).abs() < 1e-12);
        prop_assert!(g.degree_sd() >= 0.0);
        prop_assert!(g.max_degree_deviation() >= 0.0);
    }
}

#[test]
fn grid_generators_shapes() {
    let g = gen::grid_2d(7, 9);
    assert_eq!(g.n, 63);
    let g3 = gen::grid_3d(3, 4, 5);
    assert_eq!(g3.n, 60);
}
