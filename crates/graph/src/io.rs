//! Graph I/O: edge-list and DIMACS formats.
//!
//! The paper's BFS test set is "148 graphs in the DIMACS10 group in the
//! UFL Sparse Matrix collection"; DIMACS10 distributes graphs in the
//! METIS-like DIMACS format, and simple whitespace edge lists are the
//! lingua franca everywhere else. Both are supported so external graphs
//! can be tuned alongside the synthetic ones.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::graph::CsrGraph;

/// Errors from graph parsing.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Parse {
        /// 1-based line where parsing failed.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn perr(line: usize, reason: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Read a whitespace edge list (`u v` per line, 0-based, `#`/`%` comments).
/// The vertex count is `max id + 1` unless `n` is given.
pub fn read_edge_list<R: BufRead>(reader: R, n: Option<usize>) -> Result<CsrGraph, GraphIoError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (no, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| perr(no + 1, "missing source"))?
            .parse()
            .map_err(|_| perr(no + 1, "bad source id"))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| perr(no + 1, "missing target"))?
            .parse()
            .map_err(|_| perr(no + 1, "bad target id"))?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    if edges
        .iter()
        .any(|&(u, v)| u as usize >= n || v as usize >= n)
    {
        return Err(perr(0, "edge references vertex beyond declared count"));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Read a DIMACS/METIS graph file: first non-comment line is
/// `n_vertices n_edges [fmt]`, then line `i` lists the (1-based)
/// neighbours of vertex `i`. Undirected: each edge appears on both
/// endpoint lines; we store each direction as given.
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<CsrGraph, GraphIoError> {
    let mut lines = reader.lines().enumerate().filter_map(|(no, l)| match l {
        Ok(s) => {
            let t = s.trim().to_string();
            if t.is_empty() || t.starts_with('%') {
                None
            } else {
                Some(Ok((no + 1, t)))
            }
        }
        Err(e) => Some(Err(e)),
    });

    let (hline, header) = lines.next().ok_or_else(|| perr(0, "empty file"))??;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 {
        return Err(perr(hline, "header must be 'n m [fmt]'"));
    }
    let n: usize = head[0]
        .parse()
        .map_err(|_| perr(hline, "bad vertex count"))?;
    if head.len() >= 3 && head[2] != "0" && head[2] != "00" {
        return Err(perr(hline, "weighted DIMACS graphs are not supported"));
    }

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut vertex = 0usize;
    for item in lines {
        let (no, line) = item?;
        if vertex >= n {
            return Err(perr(no, "more adjacency lines than vertices"));
        }
        for tok in line.split_whitespace() {
            let w: usize = tok.parse().map_err(|_| perr(no, "bad neighbour id"))?;
            if w == 0 || w > n {
                return Err(perr(no, "neighbour out of range (DIMACS is 1-based)"));
            }
            edges.push((vertex as u32, (w - 1) as u32));
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(perr(
            0,
            format!("expected {n} adjacency lines, found {vertex}"),
        ));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Read an edge-list graph from a file.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<CsrGraph, GraphIoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(f), None)
}

/// Write a graph as a 0-based edge list.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nitro-graph edge list: {} vertices, {} edges",
        g.n,
        g.n_edges()
    )?;
    for u in 0..g.n {
        for &v in g.neighbours(u) {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn edge_list_round_trip() {
        let g = crate::gen::rmat(7, 6, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Some(g.n)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_infers_vertex_count() {
        let g = read_edge_list(Cursor::new("0 1\n1 4\n# comment\n4 0\n"), None).unwrap();
        assert_eq!(g.n, 5);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbours(1), &[4]);
    }

    #[test]
    fn dimacs_parses_metis_format() {
        // Triangle, undirected: 3 vertices, 3 edges.
        let g = read_dimacs(Cursor::new("% comment\n3 3\n2 3\n1 3\n1 2\n")).unwrap();
        assert_eq!(g.n, 3);
        assert_eq!(g.n_edges(), 6); // both directions stored
        assert_eq!(g.neighbours(0), &[1, 2]);
        let d = g.bfs_reference(0);
        assert_eq!(d, vec![0, 1, 1]);
    }

    #[test]
    fn dimacs_rejects_bad_inputs() {
        assert!(read_dimacs(Cursor::new("")).is_err());
        assert!(read_dimacs(Cursor::new("2 1\n2\n1\n3\n")).is_err()); // extra line
        assert!(read_dimacs(Cursor::new("2 1\n3\n\n")).is_err()); // neighbour out of range
        assert!(read_dimacs(Cursor::new("2 1 011\n2\n1\n")).is_err()); // weighted
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(Cursor::new("a b\n"), None).is_err());
        assert!(read_edge_list(Cursor::new("0\n"), None).is_err());
        assert!(read_edge_list(Cursor::new("0 9\n"), Some(3)).is_err());
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n"), None).unwrap();
        assert_eq!(g.n, 0);
        assert_eq!(g.n_edges(), 0);
    }
}
