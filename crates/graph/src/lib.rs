//! # nitro-graph — the Breadth-First Search benchmark
//!
//! The paper's third benchmark (Figure 4): six Back40-style BFS variants
//! — {expand-contract, contract-expand, 2-phase} × {fused, iterative} —
//! plus the dynamic Hybrid baseline Nitro is shown to beat by ~11%
//! (§V-A). Traversals are real (depths verified against a CPU
//! reference); costs come from the per-level frontier composition charged
//! to the simulated GPU. The objective is traversed edges per second
//! (TEPS), maximized.
//!
//! * [`graph`] — CSR digraphs and a reference BFS.
//! * [`gen`] — grid / road / RMAT / regular / small-world generators
//!   (the DIMACS10 regimes).
//! * [`bfs`] — the variants, the Hybrid baseline, and
//!   [`bfs::build_code_variant`].
//! * [`collection`] — 20 training + 148 test graphs (paper counts).
//! * [`io`] — edge-list and DIMACS/METIS readers (DIMACS10 is the
//!   paper's test corpus), so external graphs drop straight in.

#![warn(missing_docs)]

pub mod bfs;
pub mod collection;
pub mod gen;
pub mod graph;
pub mod io;

pub use bfs::{build_code_variant, run_bfs, run_hybrid, BfsInput, BfsRun, Strategy};
pub use graph::CsrGraph;
