//! Graph collections standing in for the paper's training set (20 graphs)
//! and DIMACS10 test set (148 graphs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bfs::BfsInput;
use crate::gen;
use crate::graph::CsrGraph;

/// Group names (DIMACS10 regimes).
pub const GROUPS: [&str; 6] = ["grid2d", "grid3d", "road", "rmat", "regular", "small_world"];

/// Sources per instance (the paper runs 100 random traversals; we use a
/// smaller deterministic sample — the TEPS average is stable well before
/// that).
pub const SOURCES_PER_GRAPH: usize = 3;

/// Generate the `idx`-th graph of a group.
pub fn group_graph(group: &str, idx: usize, seed: u64) -> CsrGraph {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9) ^ hash(group));
    match group {
        "grid2d" => {
            let nx = rng.random_range(40..120);
            let ny = rng.random_range(40..120);
            gen::grid_2d(nx, ny)
        }
        "grid3d" => {
            let s = rng.random_range(10..22);
            gen::grid_3d(s, s, s)
        }
        "road" => {
            let nx = rng.random_range(40..100);
            gen::road_like(nx, nx, rng.random_range(10..60), rng.random())
        }
        "rmat" => gen::rmat(
            rng.random_range(11..14),
            rng.random_range(8..32),
            rng.random(),
        ),
        "regular" => gen::random_regular(
            rng.random_range(3_000..12_000),
            rng.random_range(4..40),
            rng.random(),
        ),
        "small_world" => gen::small_world(
            rng.random_range(3_000..10_000),
            rng.random_range(2..6),
            rng.random_range(0.01..0.2),
            rng.random(),
        ),
        other => panic!("unknown graph group '{other}'"),
    }
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Training set: 20 graphs (paper count), spread over all groups.
pub fn bfs_training_set(seed: u64) -> Vec<BfsInput> {
    let plan: [(&str, usize); 6] = [
        ("grid2d", 4),
        ("grid3d", 3),
        ("road", 3),
        ("rmat", 4),
        ("regular", 3),
        ("small_world", 3),
    ];
    build("train", &plan, 0, seed)
}

/// Test set: 148 graphs (the paper's DIMACS10 count).
pub fn bfs_test_set(seed: u64) -> Vec<BfsInput> {
    let plan: [(&str, usize); 6] = [
        ("grid2d", 25),
        ("grid3d", 25),
        ("road", 24),
        ("rmat", 25),
        ("regular", 25),
        ("small_world", 24),
    ];
    build("test", &plan, 1000, seed)
}

/// Miniature train/test pair for tests.
pub fn bfs_small_sets(seed: u64) -> (Vec<BfsInput>, Vec<BfsInput>) {
    let train: [(&str, usize); 3] = [("grid2d", 3), ("rmat", 3), ("regular", 2)];
    let test: [(&str, usize); 3] = [("grid2d", 4), ("rmat", 4), ("regular", 3)];
    (
        build_sized("train", &train, 0, seed, true),
        build_sized("test", &test, 500, seed, true),
    )
}

fn build(tag: &str, plan: &[(&str, usize)], idx_base: usize, seed: u64) -> Vec<BfsInput> {
    build_sized(tag, plan, idx_base, seed, false)
}

fn build_sized(
    tag: &str,
    plan: &[(&str, usize)],
    idx_base: usize,
    seed: u64,
    small: bool,
) -> Vec<BfsInput> {
    let mut out = Vec::new();
    for &(group, count) in plan {
        for idx in 0..count {
            let g = if small {
                small_graph(group, idx_base + idx, seed)
            } else {
                group_graph(group, idx_base + idx, seed)
            };
            out.push(BfsInput::new(
                format!("{tag}/{group}/{idx}"),
                group,
                g,
                SOURCES_PER_GRAPH,
            ));
        }
    }
    out
}

fn small_graph(group: &str, idx: usize, seed: u64) -> CsrGraph {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9) ^ hash(group));
    match group {
        "grid2d" => gen::grid_2d(rng.random_range(20..40), rng.random_range(20..40)),
        "rmat" => gen::rmat(
            rng.random_range(8..10),
            rng.random_range(10..28),
            rng.random(),
        ),
        _ => gen::random_regular(
            rng.random_range(400..1200),
            rng.random_range(4..32),
            rng.random(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_sizes_match_paper() {
        assert_eq!(bfs_training_set(1).len(), 20);
        assert_eq!(bfs_test_set(1).len(), 148);
    }

    #[test]
    fn sets_are_deterministic() {
        let a = bfs_training_set(9);
        let b = bfs_training_set(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.sources, y.sources);
        }
    }

    #[test]
    fn every_group_generates_nonempty_graphs() {
        for group in GROUPS {
            let g = group_graph(group, 0, 2);
            assert!(g.n > 0 && g.n_edges() > 0, "group {group}");
        }
    }

    #[test]
    fn small_sets_are_small() {
        let (train, test) = bfs_small_sets(4);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 11);
        assert!(train.iter().all(|i| i.graph.n <= 1600));
    }
}
