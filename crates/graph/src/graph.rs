//! Directed graphs in CSR (adjacency array) form.

/// A directed graph stored as out-adjacency lists.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    /// Number of vertices.
    pub n: usize,
    /// `row_ptr[v]..row_ptr[v+1]` spans vertex `v`'s out-neighbours.
    pub row_ptr: Vec<usize>,
    /// Concatenated out-neighbour lists.
    pub adj: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list (duplicates kept, self-loops allowed).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut row_ptr = vec![0usize; n + 1];
        for &(u, _) in edges {
            row_ptr[u as usize + 1] += 1;
        }
        for v in 0..n {
            row_ptr[v + 1] += row_ptr[v];
        }
        let mut adj = vec![0u32; edges.len()];
        let mut cursor = row_ptr.clone();
        for &(u, v) in edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sort each list for locality realism and determinism.
        let mut g = Self { n, row_ptr, adj };
        for v in 0..n {
            let span = g.row_ptr[v]..g.row_ptr[v + 1];
            g.adj[span].sort_unstable();
        }
        g
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Out-neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.adj[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Mean out-degree.
    pub fn avg_out_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.n_edges() as f64 / self.n as f64
        }
    }

    /// Standard deviation of out-degrees.
    pub fn degree_sd(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let avg = self.avg_out_degree();
        let var = (0..self.n)
            .map(|v| {
                let d = self.degree(v) as f64 - avg;
                d * d
            })
            .sum::<f64>()
            / self.n as f64;
        var.sqrt()
    }

    /// Deviation of the largest out-degree from the mean.
    pub fn max_degree_deviation(&self) -> f64 {
        let max = (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0);
        (max as f64 - self.avg_out_degree()).max(0.0)
    }

    /// Reference CPU BFS from `source`: returns the depth of each vertex
    /// (`usize::MAX` = unreachable).
    pub fn bfs_reference(&self, source: usize) -> Vec<usize> {
        let mut depth = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        depth[source] = 0;
        queue.push_back(source as u32);
        while let Some(u) = queue.pop_front() {
            let d = depth[u as usize] + 1;
            for &v in self.neighbours(u as usize) {
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = d;
                    queue.push_back(v);
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn from_edges_builds_sorted_lists() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1), (1, 2)]);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn degree_statistics() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(g.avg_out_degree(), 1.0);
        assert!(g.degree_sd() > 0.0);
        assert_eq!(g.max_degree_deviation(), 2.0);
    }

    #[test]
    fn bfs_depths_on_a_path() {
        let g = path_graph(5);
        let d = g.bfs_reference(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = g.bfs_reference(3);
        assert_eq!(d2[4], 1);
        assert_eq!(d2[0], usize::MAX);
    }

    #[test]
    fn bfs_handles_disconnected_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = g.bfs_reference(0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }
}
