//! Deterministic graph generators spanning the DIMACS10-style regimes
//! the paper tests on: meshes (low, uniform out-degree — CE territory),
//! RMAT/power-law networks (high, skewed out-degree — 2-Phase territory)
//! and intermediates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::CsrGraph;

/// 2-D grid with 4-neighbour connectivity (both directions per edge).
pub fn grid_2d(nx: usize, ny: usize) -> CsrGraph {
    let n = nx * ny;
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((idx(x, y), idx(x + 1, y)));
                edges.push((idx(x + 1, y), idx(x, y)));
            }
            if y + 1 < ny {
                edges.push((idx(x, y), idx(x, y + 1)));
                edges.push((idx(x, y + 1), idx(x, y)));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// 3-D grid with 6-neighbour connectivity.
pub fn grid_3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((idx(x, y, z), idx(x + 1, y, z)));
                    edges.push((idx(x + 1, y, z), idx(x, y, z)));
                }
                if y + 1 < ny {
                    edges.push((idx(x, y, z), idx(x, y + 1, z)));
                    edges.push((idx(x, y + 1, z), idx(x, y, z)));
                }
                if z + 1 < nz {
                    edges.push((idx(x, y, z), idx(x, y, z + 1)));
                    edges.push((idx(x, y, z + 1), idx(x, y, z)));
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// RMAT (recursive matrix) generator: power-law degrees, community
/// structure — the Graph500/social-network regime.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // upper-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u as u32, v as u32));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Random regular-ish digraph: every vertex has exactly `k` out-edges to
/// uniform targets.
pub fn random_regular(n: usize, k: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for _ in 0..k {
            edges.push((u as u32, rng.random_range(0..n) as u32));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Watts–Strogatz-style small world: a ring lattice with `k` neighbours
/// per side and a rewiring probability.
pub fn small_world(n: usize, k: usize, rewire: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(2 * n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = if rng.random_bool(rewire.clamp(0.0, 1.0)) {
                rng.random_range(0..n)
            } else {
                (u + j) % n
            };
            edges.push((u as u32, v as u32));
            edges.push((v as u32, u as u32));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// "Road-network-like": a 2-D grid plus a few long-range shortcuts.
pub fn road_like(nx: usize, ny: usize, shortcuts: usize, seed: u64) -> CsrGraph {
    let base = grid_2d(nx, ny);
    let n = base.n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(base.n_edges() + 2 * shortcuts);
    for u in 0..n {
        for &v in base.neighbours(u) {
            edges.push((u as u32, v));
        }
    }
    for _ in 0..shortcuts {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        edges.push((u, v));
        edges.push((v, u));
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_degrees_are_bounded() {
        let g = grid_2d(10, 10);
        assert_eq!(g.n, 100);
        assert!((0..g.n).all(|v| g.degree(v) <= 4));
        // Interior vertex has degree 4.
        assert_eq!(g.degree(55), 4);
    }

    #[test]
    fn grid3d_interior_degree_is_six() {
        let g = grid_3d(5, 5, 5);
        assert_eq!(g.degree(62), 6);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8, 42);
        assert_eq!(g.n, 1024);
        assert!(
            g.degree_sd() > g.avg_out_degree(),
            "RMAT should be highly skewed"
        );
    }

    #[test]
    fn random_regular_has_exact_out_degrees() {
        let g = random_regular(200, 7, 1);
        assert!((0..g.n).all(|v| g.degree(v) == 7));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(rmat(8, 8, 5), rmat(8, 8, 5));
        assert_eq!(small_world(100, 3, 0.1, 2), small_world(100, 3, 0.1, 2));
        assert_ne!(random_regular(100, 4, 1), random_regular(100, 4, 2));
    }

    #[test]
    fn grids_are_connected() {
        let g = grid_2d(8, 8);
        let d = g.bfs_reference(0);
        assert!(d.iter().all(|&x| x != usize::MAX));
    }
}
