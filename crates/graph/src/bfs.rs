//! BFS code variants on the simulated GPU.
//!
//! Six variants mirroring the Back40 set the paper tunes over (Figure 4):
//! three frontier strategies × two launch styles.
//!
//! * **EC** (expand-contract): thread-per-vertex expansion of the vertex
//!   frontier, then filtering. Serial per-thread edge loops make it very
//!   sensitive to degree skew.
//! * **CE** (contract-expand): contracts the incoming *edge* frontier,
//!   then expands newly visited vertices in the same kernel. One kernel
//!   per level and minimal fixed cost — the winner on low-out-degree
//!   graphs.
//! * **2-Phase**: separate expansion and contraction kernels with
//!   warp/CTA-cooperative, scan-based neighbour gathering — no per-vertex
//!   transaction minimum and no divergence penalty, at the price of an
//!   extra kernel and a materialized edge frontier per level. Wins on
//!   high-out-degree graphs, exactly as Merrill et al. report.
//! * **Fused** variants replace per-level kernel launches with in-kernel
//!   global barriers (cheap); **Iter** variants pay the full launch
//!   overhead every level but get freshly balanced work each time
//!   (dynamic block scheduling).
//!
//! The traversal itself is real — depths are checked against a CPU
//! reference in the tests — and every cost term is derived from the
//! actual per-level frontier composition.

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Objective};
use nitro_simt::{DeviceConfig, Gpu, Schedule, SplitMix64};

use crate::graph::CsrGraph;

/// Frontier strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Expand-contract over a vertex frontier.
    ExpandContract,
    /// Contract-expand over an edge frontier.
    ContractExpand,
    /// Separate expansion and contraction phases.
    TwoPhase,
}

/// Result of one simulated BFS traversal.
#[derive(Debug, Clone)]
pub struct BfsRun {
    /// Depth per vertex (`usize::MAX` = unreachable).
    pub depth: Vec<usize>,
    /// Directed edges examined.
    pub edges_traversed: u64,
    /// Frontier levels processed.
    pub levels: usize,
    /// Simulated wall time in nanoseconds.
    pub elapsed_ns: f64,
}

/// In-kernel global-barrier cost for fused variants (ns per kernel
/// boundary — a 2-Phase level pays it twice).
const FUSED_BARRIER_NS: f64 = 1_200.0;
/// Minimum busy time per logical kernel (pipeline ramp-up/drain): tiny
/// frontiers cannot run faster than this.
const KERNEL_MIN_NS: f64 = 800.0;
/// Host-side readback + decision cost per level for the Hybrid variant.
const HYBRID_DECISION_NS: f64 = 700.0;
/// Hybrid switches from CE to 2-Phase above this edge-frontier size.
const HYBRID_EDGE_CUTOFF: usize = 4_096;

/// Run a BFS variant. `fused` selects the launch style.
pub fn run_bfs(
    g: &CsrGraph,
    source: usize,
    strategy: Strategy,
    fused: bool,
    cfg: &DeviceConfig,
    seed: u64,
) -> BfsRun {
    let fault_kernel = match (strategy, fused) {
        (Strategy::ExpandContract, true) => "bfs_ec_fused",
        (Strategy::ExpandContract, false) => "bfs_ec_iter",
        (Strategy::ContractExpand, true) => "bfs_ce_fused",
        (Strategy::ContractExpand, false) => "bfs_ce_iter",
        (Strategy::TwoPhase, true) => "bfs_2p_fused",
        (Strategy::TwoPhase, false) => "bfs_2p_iter",
    };
    run_dynamic(
        g,
        source,
        |_level, _edge_frontier| strategy,
        fused,
        cfg,
        seed,
        0.0,
        fault_kernel,
    )
}

/// Run the Hybrid baseline (Merrill et al.'s seventh variant): per level
/// it picks CE for small edge frontiers and 2-Phase for large ones,
/// paying a host decision cost each level.
pub fn run_hybrid(g: &CsrGraph, source: usize, cfg: &DeviceConfig, seed: u64) -> BfsRun {
    run_dynamic(
        g,
        source,
        |_level, edge_frontier| {
            if edge_frontier < HYBRID_EDGE_CUTOFF {
                Strategy::ContractExpand
            } else {
                Strategy::TwoPhase
            }
        },
        true,
        cfg,
        seed,
        HYBRID_DECISION_NS,
        "bfs_hybrid",
    )
}

#[allow(clippy::too_many_arguments)] // private driver shared by the six variants + Hybrid
fn run_dynamic(
    g: &CsrGraph,
    source: usize,
    mut pick: impl FnMut(usize, usize) -> Strategy,
    fused: bool,
    cfg: &DeviceConfig,
    seed: u64,
    per_level_host_ns: f64,
    fault_kernel: &str,
) -> BfsRun {
    // Per-level kernels are costed noiselessly with zero launch overhead;
    // overheads and one multiplicative noise factor are applied at the end
    // so fused/iter differ only in launch accounting. These launches are
    // cost probes, not launch boundaries, so they are fault-exempt.
    let mut level_cfg = cfg.clone().noiseless();
    level_cfg.launch_overhead_ns = 0.0;
    let gpu = Gpu::with_seed(level_cfg.clone(), seed).fault_exempt();

    // Fault injection follows *real* launch boundaries instead: a fused
    // variant is one device launch (its kernel boundaries are in-kernel
    // global barriers), an iterative one pays a real launch per level
    // kernel. The launcher's empty launches roll the fault dice without
    // contributing cost; `fault_kernel` names the variant so each variant
    // is its own fault domain rather than all sharing one dice stream.
    let launcher = Gpu::with_seed(level_cfg, seed ^ 0xFA);
    let real_launch = || {
        launcher.launch(fault_kernel, 1, Schedule::EvenShare, |_, _| {});
    };
    if fused {
        real_launch();
    }

    let mut depth = vec![usize::MAX; g.n];
    depth[source] = 0;
    let mut frontier: Vec<u32> = vec![source as u32];
    let mut busy_ns = 0.0;
    let mut launches = 0usize;
    let mut edges_traversed = 0u64;
    let mut levels = 0usize;

    while !frontier.is_empty() {
        let edge_frontier: usize = frontier.iter().map(|&v| g.degree(v as usize)).sum();
        let strategy = pick(levels, edge_frontier);

        // Functional expansion: the next frontier.
        let mut next: Vec<u32> = Vec::new();
        let d = levels + 1;
        for &u in &frontier {
            for &v in g.neighbours(u as usize) {
                edges_traversed += 1;
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = d;
                    next.push(v);
                }
            }
        }

        // Cost of this level under the chosen strategy.
        let (ns, kernel_count) =
            level_cost(g, &frontier, &next, edge_frontier, strategy, fused, &gpu);
        busy_ns += ns + kernel_count as f64 * KERNEL_MIN_NS + per_level_host_ns;
        launches += kernel_count;
        if !fused {
            for _ in 0..kernel_count {
                real_launch();
            }
        }

        frontier = next;
        levels += 1;
    }

    let overhead = if fused {
        // One real launch; every later kernel boundary is a global barrier.
        cfg.launch_overhead_ns + launches.saturating_sub(1) as f64 * FUSED_BARRIER_NS
    } else {
        launches as f64 * cfg.launch_overhead_ns
    };
    let noise = SplitMix64::new(seed ^ 0xBF5).noise_factor(cfg.noise_rel_sigma);

    BfsRun {
        depth,
        edges_traversed,
        levels,
        elapsed_ns: (busy_ns + overhead) * noise,
    }
}

/// Simulated busy time of one BFS level; returns `(ns, kernels_used)`.
fn level_cost(
    g: &CsrGraph,
    frontier: &[u32],
    next: &[u32],
    edge_frontier: usize,
    strategy: Strategy,
    fused: bool,
    gpu: &Gpu,
) -> (f64, usize) {
    // Iterative launches are rebalanced by the runtime (dynamic blocks);
    // fused kernels keep their static assignment.
    let schedule = if fused {
        Schedule::EvenShare
    } else {
        Schedule::Dynamic
    };
    let f = frontier.len();
    let e_next: usize = next.iter().map(|&v| g.degree(v as usize)).sum();

    match strategy {
        Strategy::ExpandContract => {
            let blocks = f.div_ceil(256).max(1);
            let stats = gpu.launch("bfs_ec", blocks, schedule, |b, ctx| {
                let v0 = b * 256;
                let v1 = (v0 + 256).min(f);
                if v0 >= v1 {
                    return;
                }
                let slice = &frontier[v0..v1];
                // Read frontier ids + gather row offsets.
                ctx.coalesced((v1 - v0) as u64, 4);
                let row_addrs: Vec<u64> = slice.iter().map(|&v| v as u64 * 8).collect();
                ctx.warp_gather(&row_addrs, 8);
                // Thread-per-vertex serial edge loops: heavy divergence.
                let degs: Vec<u64> = slice.iter().map(|&v| g.degree(v as usize) as u64).collect();
                ctx.warp_loop(&degs, 12.0);
                // Per-vertex neighbour-list reads: at least one transaction
                // per vertex, the vertex-parallel tax.
                let mut status_addrs: Vec<u64> = Vec::new();
                for &v in slice {
                    ctx.coalesced(g.degree(v as usize).max(1) as u64, 4);
                    status_addrs.extend(g.neighbours(v as usize).iter().map(|&w| w as u64));
                }
                // Status checks for every expanded neighbour.
                ctx.warp_gather(&status_addrs, 1);
                ctx.bulk_atomic(
                    status_addrs.len() as f64,
                    nitro_simt::block::AtomicSpace::Shared,
                    1.2,
                );
            });
            // Write the next vertex frontier.
            let write = gpu.launch("bfs_ec_write", 1, schedule, |_, ctx| {
                ctx.coalesced(next.len() as u64, 4);
            });
            (stats.elapsed_ns + write.elapsed_ns, 1)
        }
        Strategy::ContractExpand => {
            // One kernel per level over the edge frontier.
            let blocks = edge_frontier.div_ceil(256).max(1);
            // Materialize the edge frontier's neighbour targets in order.
            let mut targets: Vec<u32> = Vec::with_capacity(edge_frontier);
            for &u in frontier {
                targets.extend_from_slice(g.neighbours(u as usize));
            }
            let stats = gpu.launch("bfs_ce", blocks, schedule, |b, ctx| {
                let e0 = b * 256;
                let e1 = (e0 + 256).min(targets.len());
                if e0 >= e1 {
                    return;
                }
                let slice = &targets[e0..e1];
                // Read + contract the edge frontier (status gathers).
                ctx.coalesced((e1 - e0) as u64, 4);
                let status_addrs: Vec<u64> = slice.iter().map(|&w| w as u64).collect();
                ctx.warp_gather(&status_addrs, 1);
                ctx.charge_ops(4 * (e1 - e0) as u64);
                ctx.bulk_atomic(
                    (e1 - e0) as f64,
                    nitro_simt::block::AtomicSpace::Shared,
                    1.1,
                );
            });
            // Expansion of the newly visited vertices in the same kernel:
            // warp-cooperative gathering (cheap on short lists), but the
            // combined kernel serializes on degree skew and reads the
            // adjacency with worse coalescing than a dedicated expansion
            // phase — 2-Phase's advantage on high-degree graphs.
            let expand = gpu.launch(
                "bfs_ce_expand",
                next.len().div_ceil(256).max(1),
                schedule,
                |b, ctx| {
                    let v0 = b * 256;
                    let v1 = (v0 + 256).min(next.len());
                    if v0 >= v1 {
                        return;
                    }
                    let slice = &next[v0..v1];
                    let row_addrs: Vec<u64> = slice.iter().map(|&v| v as u64 * 8).collect();
                    ctx.warp_gather(&row_addrs, 8);
                    let degs: Vec<u64> =
                        slice.iter().map(|&v| g.degree(v as usize) as u64).collect();
                    ctx.warp_loop(&degs, 4.0);
                    let e_block: u64 = degs.iter().sum();
                    ctx.bulk_read(e_block as f64 * 4.0, 0.6);
                },
            );
            let write = gpu.launch("bfs_ce_write", 1, schedule, |_, ctx| {
                ctx.coalesced(e_next as u64, 4);
            });
            (stats.elapsed_ns + expand.elapsed_ns + write.elapsed_ns, 1)
        }
        Strategy::TwoPhase => {
            // Phase 1: scan-based cooperative expansion — edge-frontier
            // traffic only, no per-vertex minimum, no divergence term.
            let expand = gpu.launch(
                "bfs_2p_expand",
                edge_frontier.div_ceil(256).max(1),
                schedule,
                |b, ctx| {
                    let e0 = b * 256;
                    let e1 = (e0 + 256).min(edge_frontier);
                    if e0 >= e1 {
                        return;
                    }
                    let chunk = (e1 - e0) as u64;
                    ctx.coalesced(f.div_ceil(256).max(1) as u64, 4); // frontier slice
                    ctx.coalesced(chunk, 4); // gathered adjacency
                    ctx.charge_ops(3 * chunk);
                    ctx.coalesced(chunk, 4); // edge-frontier write
                },
            );
            // Phase 2: contraction of the edge frontier.
            let mut targets: Vec<u32> = Vec::with_capacity(edge_frontier);
            for &u in frontier {
                targets.extend_from_slice(g.neighbours(u as usize));
            }
            let contract = gpu.launch(
                "bfs_2p_contract",
                edge_frontier.div_ceil(256).max(1),
                schedule,
                |b, ctx| {
                    let e0 = b * 256;
                    let e1 = (e0 + 256).min(targets.len());
                    if e0 >= e1 {
                        return;
                    }
                    let slice = &targets[e0..e1];
                    ctx.coalesced((e1 - e0) as u64, 4);
                    let status_addrs: Vec<u64> = slice.iter().map(|&w| w as u64).collect();
                    ctx.warp_gather(&status_addrs, 1);
                    ctx.bulk_atomic(
                        (e1 - e0) as f64,
                        nitro_simt::block::AtomicSpace::Shared,
                        1.1,
                    );
                    ctx.charge_ops(2 * (e1 - e0) as u64);
                },
            );
            let write = gpu.launch("bfs_2p_write", 1, schedule, |_, ctx| {
                ctx.coalesced(next.len() as u64, 4);
            });
            (
                expand.elapsed_ns + contract.elapsed_ns + write.elapsed_ns,
                2,
            )
        }
    }
}

/// One BFS benchmark instance: a graph plus a set of source vertices.
#[derive(Debug)]
pub struct BfsInput {
    /// Instance name (seeds simulation noise).
    pub name: String,
    /// Collection group.
    pub group: String,
    /// The graph.
    pub graph: CsrGraph,
    /// Source vertices; the objective averages over them (the paper runs
    /// 100 randomly-sourced traversals per graph).
    pub sources: Vec<u32>,
    /// Noise seed.
    pub gpu_seed: u64,
}

impl BfsInput {
    /// Create an instance with `n_sources` deterministic sources.
    pub fn new(
        name: impl Into<String>,
        group: impl Into<String>,
        graph: CsrGraph,
        n_sources: usize,
    ) -> Self {
        let name = name.into();
        let gpu_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
        });
        let mut rng = SplitMix64::new(gpu_seed);
        // Prefer sources with outgoing edges so traversals do real work.
        let mut sources = Vec::with_capacity(n_sources);
        let mut guard = 0;
        while sources.len() < n_sources && guard < 100 * n_sources.max(1) {
            let v = (rng.next_u64() % graph.n as u64) as u32;
            if graph.degree(v as usize) > 0 {
                sources.push(v);
            }
            guard += 1;
        }
        if sources.is_empty() {
            sources.push(0);
        }
        Self {
            name,
            group: group.into(),
            graph,
            sources,
            gpu_seed,
        }
    }

    /// Traversed-edges-per-second for a strategy over this input's
    /// sources (the paper's BFS objective).
    pub fn teps(&self, strategy: Strategy, fused: bool, cfg: &DeviceConfig) -> f64 {
        let mut edges = 0u64;
        let mut ns = 0.0;
        for (k, &s) in self.sources.iter().enumerate() {
            let run = run_bfs(
                &self.graph,
                s as usize,
                strategy,
                fused,
                cfg,
                self.gpu_seed ^ k as u64,
            );
            edges += run.edges_traversed;
            ns += run.elapsed_ns;
        }
        if ns <= 0.0 {
            0.0
        } else {
            edges as f64 / (ns * 1e-9)
        }
    }

    /// TEPS of the Hybrid baseline on this input.
    pub fn hybrid_teps(&self, cfg: &DeviceConfig) -> f64 {
        let mut edges = 0u64;
        let mut ns = 0.0;
        for (k, &s) in self.sources.iter().enumerate() {
            let run = run_hybrid(
                &self.graph,
                s as usize,
                cfg,
                self.gpu_seed ^ 0x44 ^ k as u64,
            );
            edges += run.edges_traversed;
            ns += run.elapsed_ns;
        }
        if ns <= 0.0 {
            0.0
        } else {
            edges as f64 / (ns * 1e-9)
        }
    }
}

/// The six variants, in registration order.
pub const VARIANT_NAMES: [&str; 6] = [
    "EC-Fused",
    "EC-Iter",
    "CE-Fused",
    "CE-Iter",
    "2Phase-Fused",
    "2Phase-Iter",
];

/// Assemble the BFS `code_variant`: 6 variants, 5 features, TEPS
/// objective (maximize). Default: CE-Fused.
pub fn build_code_variant(ctx: &Context, cfg: &DeviceConfig) -> CodeVariant<BfsInput> {
    let mut cv = CodeVariant::new("bfs", ctx);
    let combos: [(Strategy, bool); 6] = [
        (Strategy::ExpandContract, true),
        (Strategy::ExpandContract, false),
        (Strategy::ContractExpand, true),
        (Strategy::ContractExpand, false),
        (Strategy::TwoPhase, true),
        (Strategy::TwoPhase, false),
    ];
    for ((strategy, fused), name) in combos.into_iter().zip(VARIANT_NAMES) {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new(name, move |inp: &BfsInput| {
            inp.teps(strategy, fused, &cfg)
        }));
    }
    cv.set_default(2); // CE-Fused
    cv.policy_mut().objective = Objective::Maximize;

    cv.add_input_feature(FnFeature::with_cost(
        "AvgOutDeg",
        |i: &BfsInput| i.graph.avg_out_degree(),
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Deg-SD",
        |i: &BfsInput| i.graph.degree_sd(),
        |i: &BfsInput| 8.0 + i.graph.n as f64 * 0.8,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "MaxDeviation",
        |i: &BfsInput| i.graph.max_degree_deviation(),
        |i: &BfsInput| 8.0 + i.graph.n as f64 * 0.8,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Nvertices",
        |i: &BfsInput| i.graph.n as f64,
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Nedges",
        |i: &BfsInput| i.graph.n_edges() as f64,
        |_| 8.0,
    ));
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050().noiseless()
    }

    #[test]
    fn all_strategies_compute_correct_depths() {
        let g = gen::rmat(9, 8, 3);
        let reference = g.bfs_reference(1);
        for strategy in [
            Strategy::ExpandContract,
            Strategy::ContractExpand,
            Strategy::TwoPhase,
        ] {
            for fused in [true, false] {
                let run = run_bfs(&g, 1, strategy, fused, &cfg(), 7);
                assert_eq!(run.depth, reference, "{strategy:?} fused={fused}");
                assert!(run.elapsed_ns > 0.0);
            }
        }
        let hybrid = run_hybrid(&g, 1, &cfg(), 7);
        assert_eq!(hybrid.depth, reference);
    }

    #[test]
    fn fused_beats_iter_on_deep_low_degree_graphs() {
        // A long, thin grid has many levels with tiny frontiers: per-level
        // launch overhead dominates, so Fused must win.
        let g = gen::grid_2d(200, 10);
        let f = run_bfs(&g, 0, Strategy::ContractExpand, true, &cfg(), 1);
        let i = run_bfs(&g, 0, Strategy::ContractExpand, false, &cfg(), 1);
        assert!(
            f.elapsed_ns < i.elapsed_ns,
            "fused {} iter {}",
            f.elapsed_ns,
            i.elapsed_ns
        );
    }

    #[test]
    fn ce_beats_two_phase_on_low_degree() {
        let g = gen::grid_2d(60, 60); // avg degree < 4
        let inp = BfsInput::new("grid", "grid", g, 3);
        let ce = inp.teps(Strategy::ContractExpand, true, &cfg());
        let tp = inp.teps(Strategy::TwoPhase, true, &cfg());
        assert!(ce > tp, "CE {ce} vs 2Phase {tp} on a grid");
    }

    #[test]
    fn two_phase_beats_ce_on_high_degree_skewed() {
        let g = gen::rmat(12, 24, 9); // avg degree 24, skewed
        let inp = BfsInput::new("rmat", "rmat", g, 3);
        let ce = inp.teps(Strategy::ContractExpand, true, &cfg());
        let tp = inp.teps(Strategy::TwoPhase, true, &cfg());
        assert!(tp > ce, "2Phase {tp} vs CE {ce} on RMAT");
    }

    #[test]
    fn hybrid_is_good_but_not_best() {
        let cfg = cfg();
        for (g, tag) in [
            (gen::grid_2d(60, 60), "grid"),
            (gen::rmat(12, 24, 5), "rmat"),
        ] {
            let inp = BfsInput::new(format!("h/{tag}"), tag, g, 3);
            let best = VARIANT_NAMES
                .iter()
                .zip([
                    (Strategy::ExpandContract, true),
                    (Strategy::ExpandContract, false),
                    (Strategy::ContractExpand, true),
                    (Strategy::ContractExpand, false),
                    (Strategy::TwoPhase, true),
                    (Strategy::TwoPhase, false),
                ])
                .map(|(_, (s, f))| inp.teps(s, f, &cfg))
                .fold(0.0f64, f64::max);
            let hybrid = inp.hybrid_teps(&cfg);
            assert!(
                hybrid > best * 0.5,
                "{tag}: hybrid {hybrid} too weak vs best {best}"
            );
            assert!(
                hybrid < best,
                "{tag}: hybrid {hybrid} should trail the best {best}"
            );
        }
    }

    #[test]
    fn code_variant_matches_paper_inventory() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &cfg());
        assert_eq!(cv.n_variants(), 6);
        assert_eq!(cv.n_features(), 5);
        assert_eq!(cv.policy().objective, Objective::Maximize);
    }

    #[test]
    fn teps_is_deterministic() {
        let inp = BfsInput::new("det", "grid", gen::grid_2d(30, 30), 2);
        let cfg = DeviceConfig::fermi_c2050();
        assert_eq!(
            inp.teps(Strategy::ContractExpand, true, &cfg),
            inp.teps(Strategy::ContractExpand, true, &cfg)
        );
    }
}
