//! # nitro-audit — static analysis & diagnostics for Nitro
//!
//! The tuning pipeline moves configuration across three trust boundaries:
//! a library author registers variants/features/constraints by hand, a
//! trained [`nitro_core::ModelArtifact`] travels through JSON files, and
//! the training set itself is assembled by a harness. Each boundary has
//! its own analyzer:
//!
//! * [`lint_registration`] — pre-tuning checks on a
//!   [`nitro_core::CodeVariant`] + [`nitro_core::TuningPolicy`] pair
//!   (`NITRO010`–`NITRO019`).
//! * [`audit_artifact`] / [`audit_artifact_against`] /
//!   [`audit_artifact_json`] — numeric and schema invariants of persisted
//!   models (`NITRO001`, `NITRO020`–`NITRO029`).
//! * [`analyze_profile`] — training-set pathologies in exhaustive
//!   profiling results (`NITRO030`–`NITRO039`).
//! * [`analyze_metrics`] / [`analyze_metrics_json`] — suspicious runtime
//!   behavior in an exported `nitro-trace` metrics snapshot
//!   (`NITRO040`–`NITRO049`).
//! * [`audit_fastpath`] / [`lint_cache_budget`] — compiled-prediction
//!   and kernel-cache health of a trained model against its training set
//!   (`NITRO060`–`NITRO062`).
//!
//! Two further ranges live with the subsystems that emit them:
//! `NITRO050`–`NITRO059` (guard policies and fault plans, `nitro-guard`)
//! and `NITRO070`–`NITRO079` (durable-tuning journals, the versioned
//! artifact store and staged promotion, `nitro-store`). They use the
//! same [`nitro_core::Diagnostic`] vocabulary and renderers.
//!
//! Findings are [`nitro_core::Diagnostic`]s: a stable `NITRO0xx` code, a
//! severity, a subject and a message, rendered with
//! [`render_text`]/[`render_json`]. Error-severity findings abort tuning
//! ([`nitro_core::NitroError::Audit`]); warnings ride along in the tune
//! report.
//!
//! ```
//! use nitro_audit::lint_registration;
//! use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
//!
//! let ctx = Context::new();
//! let mut f = CodeVariant::<f64>::new("f", &ctx);
//! f.add_variant(FnVariant::new("a", |&x: &f64| x));
//! f.set_default(3); // not a registered variant
//! f.add_input_feature(FnFeature::new("x", |&x: &f64| x));
//!
//! let diags = lint_registration(&f, None);
//! assert!(diags.iter().any(|d| d.code == "NITRO014"));
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod deep;
pub mod fastpath;
pub mod ir;
pub mod metrics;
pub mod profile;
pub mod registration;
pub mod sarif;
pub mod sat;

pub use artifact::{audit_artifact, audit_artifact_against, audit_artifact_json};
pub use deep::analyze_graph;
pub use fastpath::{audit_fastpath, lint_cache_budget};
pub use ir::{
    CascadeEdge, ConstraintExpr, ConstraintNode, FeatureNode, ModelNode, ProfileData, TuningGraph,
    VariantNode, VersionNode,
};
pub use metrics::{analyze_metrics, analyze_metrics_json, MetricsAuditConfig};
pub use profile::{analyze_profile, ProfileAuditConfig, ProfileView};
pub use registration::{lint_grid_search, lint_registration};
pub use sarif::render_sarif;
pub use sat::Sat;

// The diagnostics vocabulary lives in nitro-core (so `NitroError::Audit`
// can carry findings); re-export it as this crate's primary interface.
pub use nitro_core::diag::{has_errors, partition_errors, render_json, render_text};
pub use nitro_core::{Diagnostic, Severity};

use nitro_core::{CodeVariant, ModelArtifact, NitroError};

/// Audited artifact installation for [`CodeVariant`].
pub trait AuditedInstall {
    /// Install a model artifact only if the artifact audit finds no
    /// error-severity diagnostics against this registration.
    ///
    /// On success the returned vector holds the surviving warnings and
    /// infos (possibly empty). On failure the full finding list travels
    /// in [`NitroError::Audit`]; structural mismatches that
    /// `install_artifact` itself rejects surface as their usual errors.
    fn install_artifact_audited(
        &mut self,
        artifact: ModelArtifact,
    ) -> Result<Vec<Diagnostic>, NitroError>;
}

impl<I: ?Sized> AuditedInstall for CodeVariant<I> {
    fn install_artifact_audited(
        &mut self,
        artifact: ModelArtifact,
    ) -> Result<Vec<Diagnostic>, NitroError> {
        let diagnostics = audit_artifact_against(&artifact, self);
        if has_errors(&diagnostics) {
            return Err(NitroError::Audit { diagnostics });
        }
        self.install_artifact(artifact)?;
        Ok(diagnostics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnFeature, FnVariant, TuningPolicy, MODEL_SCHEMA_VERSION};
    use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};

    fn registration() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("axpy", &ctx);
        cv.add_variant(FnVariant::new("scalar", |&x: &f64| x));
        cv.add_variant(FnVariant::new("blocked", |&x: &f64| 10.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("n", |&x: &f64| x));
        cv
    }

    fn artifact(function: &str) -> ModelArtifact {
        let data = Dataset::from_parts(
            vec![vec![0.0], vec![1.0], vec![8.0], vec![9.0]],
            vec![0, 0, 1, 1],
        );
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: function.into(),
            variant_names: vec!["scalar".into(), "blocked".into()],
            feature_names: vec!["n".into()],
            policy: TuningPolicy::default(),
            model: TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data),
        }
    }

    #[test]
    fn audited_install_accepts_clean_artifacts() {
        let mut cv = registration();
        let warnings = cv.install_artifact_audited(artifact("axpy")).unwrap();
        assert!(warnings.is_empty());
        assert!(cv.has_model());
    }

    #[test]
    fn audited_install_rejects_mismatched_artifacts() {
        let mut cv = registration();
        let err = cv.install_artifact_audited(artifact("gemm")).unwrap_err();
        let diags = err.diagnostics();
        assert!(diags.iter().any(|d| d.code == "NITRO021"));
        assert!(!cv.has_model());
    }

    #[test]
    fn audited_install_keeps_warnings_nonfatal() {
        let mut cv = registration();
        let mut a = artifact("axpy");
        a.schema_version = 0; // legacy artifact: NITRO020 warning
        let warnings = cv.install_artifact_audited(a).unwrap();
        assert!(warnings.iter().any(|d| d.code == "NITRO020"));
        assert!(cv.has_model());
    }
}
