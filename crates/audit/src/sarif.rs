//! SARIF 2.1.0 export for diagnostics.
//!
//! The audit bench binary writes one SARIF log per suite so findings can
//! ride through CI artifact uploads and code-scanning UIs. The exporter
//! is deliberately small: one `run`, a `tool.driver` whose rules come
//! from [`nitro_core::diag::registry`], and one `result` per finding.
//! Subjects travel as logical locations (there are no physical source
//! files behind a tuning-graph finding).

use nitro_core::diag::registry;
use nitro_core::{Diagnostic, Severity};
use serde_json::Value;

/// The SARIF schema this exporter emits.
pub const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Render diagnostics as a SARIF 2.1.0 log (pretty-printed JSON).
///
/// `tool_version` becomes `tool.driver.version`; the driver name is
/// always `nitro-audit`.
pub fn render_sarif(diags: &[Diagnostic], tool_version: &str) -> String {
    let mut rule_codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    rule_codes.sort_unstable();
    rule_codes.dedup();

    let rules: Vec<Value> = rule_codes
        .iter()
        .map(|code| {
            let mut rule = vec![("id".to_string(), Value::String((*code).to_string()))];
            if let Some(info) = registry::lookup(code) {
                rule.push((
                    "shortDescription".into(),
                    obj(vec![("text", Value::String(info.summary.to_string()))]),
                ));
                rule.push((
                    "properties".into(),
                    obj(vec![("area", Value::String(info.area.to_string()))]),
                ));
            }
            Value::Object(rule)
        })
        .collect();

    let results: Vec<Value> = diags
        .iter()
        .map(|d| {
            obj(vec![
                ("ruleId", Value::String(d.code.clone())),
                ("level", Value::String(sarif_level(d.severity).to_string())),
                (
                    "message",
                    obj(vec![("text", Value::String(d.message.clone()))]),
                ),
                (
                    "locations",
                    Value::Array(vec![obj(vec![(
                        "logicalLocations",
                        Value::Array(vec![obj(vec![
                            ("fullyQualifiedName", Value::String(d.subject.clone())),
                            ("kind", Value::String("function".into())),
                        ])]),
                    )])]),
                ),
            ])
        })
        .collect();

    let driver = obj(vec![
        ("name", Value::String("nitro-audit".into())),
        ("version", Value::String(tool_version.to_string())),
        (
            "informationUri",
            Value::String("https://github.com/nitro-tuner/nitro".into()),
        ),
        ("rules", Value::Array(rules)),
    ]);

    let log = obj(vec![
        ("version", Value::String(SARIF_VERSION.into())),
        ("$schema", Value::String(SARIF_SCHEMA.into())),
        (
            "runs",
            Value::Array(vec![obj(vec![
                ("tool", obj(vec![("driver", driver)])),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);

    serde_json::to_string_pretty(&log).expect("SARIF log serializes")
}

/// SARIF `level` for a severity.
fn sarif_level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("NITRO080", "toy", "variant 1 is statically dead"),
            Diagnostic::warning("NITRO083", "toy", "feature 2 is never read"),
            Diagnostic::info("NITRO010", "toy", "only one variant"),
        ]
    }

    #[test]
    fn log_parses_and_has_required_shape() {
        let text = render_sarif(&sample(), "1.2.3");
        let v: Value = serde_json::from_str(&text).unwrap();
        let top = v.as_object().unwrap();
        let get = |k: &str| top.iter().find(|(n, _)| n == k).map(|(_, v)| v).unwrap();
        assert_eq!(get("version"), &Value::String("2.1.0".into()));
        assert!(matches!(get("$schema"), Value::String(s) if s.contains("sarif-schema-2.1.0")));

        let runs = match get("runs") {
            Value::Array(r) => r,
            other => panic!("runs not an array: {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_object().unwrap();
        let results = run
            .iter()
            .find(|(n, _)| n == "results")
            .map(|(_, v)| v)
            .unwrap();
        let results = match results {
            Value::Array(r) => r,
            other => panic!("results not an array: {other:?}"),
        };
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn levels_map_by_severity() {
        let text = render_sarif(&sample(), "0");
        assert!(text.contains("\"level\": \"error\""));
        assert!(text.contains("\"level\": \"warning\""));
        assert!(text.contains("\"level\": \"note\""));
    }

    #[test]
    fn rules_are_unique_and_described_from_the_registry() {
        let mut diags = sample();
        diags.push(Diagnostic::error("NITRO080", "other", "also dead"));
        let text = render_sarif(&diags, "0");
        // Four results but only three rules (NITRO080 deduped).
        assert_eq!(text.matches("\"ruleId\"").count(), 4);
        assert_eq!(text.matches("\"id\": \"NITRO").count(), 3);
        // Registry summary text rides along.
        assert!(text.contains("statically dead variant"));
    }

    #[test]
    fn empty_input_is_a_valid_empty_log() {
        let text = render_sarif(&[], "0");
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(matches!(v, Value::Object(_)));
        assert!(text.contains("\"results\": []"));
    }
}
