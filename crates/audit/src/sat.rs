//! Interval-arithmetic satisfiability for [`Predicate`] conjunctions.
//!
//! The whole-configuration passes need to *prove* facts like "this
//! variant's constraints can never all hold" (NITRO080) or "constraint A
//! is implied by constraint B" (NITRO081). The fragment predicates live
//! in — interval bounds on single features plus order comparisons between
//! feature pairs, closed under and/or/not — is decidable by normalizing
//! to DNF and checking each conjunct with interval tightening and
//! order-graph closure over the reals.
//!
//! Soundness direction: [`Sat::Unsatisfiable`] is a *proof* — real-valued
//! unsatisfiability implies f64 unsatisfiability because every finite f64
//! is a real. [`Sat::Satisfiable`] and [`Sat::Unknown`] merely fail to
//! prove emptiness, which only ever *suppresses* findings. The DNF
//! expansion is budgeted; predicates that blow the budget come back
//! [`Sat::Unknown`], never a wrong proof.

use nitro_core::{CmpOp, Predicate};

/// Verdict of a satisfiability query over the feature domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sat {
    /// A consistent assignment of real feature values exists.
    Satisfiable,
    /// Proven: no assignment of (finite) feature values satisfies the
    /// conjunction.
    Unsatisfiable,
    /// The normalization budget was exhausted before a proof either way.
    Unknown,
}

/// Conjunct budget for the DNF expansion. Predicates from real
/// registrations are tiny; this bound exists so adversarial or generated
/// trees degrade to [`Sat::Unknown`] instead of exponential work.
const DNF_BUDGET: usize = 4096;

/// Decide satisfiability of the conjunction of `predicates` over real
/// feature vectors (the dispatcher's sanitized domain).
pub fn check(predicates: &[&Predicate]) -> Sat {
    // DNF of a conjunction: cross-product of the members' DNFs.
    let mut conjuncts: Vec<Vec<Atom>> = vec![Vec::new()];
    for p in predicates {
        let Some(dnf) = to_dnf(p, false) else {
            return Sat::Unknown;
        };
        let mut next = Vec::new();
        for left in &conjuncts {
            for right in &dnf {
                if next.len() >= DNF_BUDGET {
                    return Sat::Unknown;
                }
                let mut merged = left.clone();
                merged.extend(right.iter().cloned());
                next.push(merged);
            }
        }
        conjuncts = next;
        if conjuncts.is_empty() {
            // One member normalized to an empty disjunction (false).
            return Sat::Unsatisfiable;
        }
    }
    if conjuncts.iter().any(|c| conjunct_consistent(c)) {
        Sat::Satisfiable
    } else {
        Sat::Unsatisfiable
    }
}

/// Does `premise` logically imply `conclusion`? Proven by refutation:
/// `premise && !conclusion` must be unsatisfiable. A `false` answer means
/// "not proven", not "disproven".
pub fn implies(premise: &Predicate, conclusion: &Predicate) -> bool {
    let negated = conclusion.clone().not();
    check(&[premise, &negated]) == Sat::Unsatisfiable
}

/// A literal in a DNF conjunct.
#[derive(Debug, Clone)]
enum Atom {
    /// `feature op constant`.
    Feat(usize, CmpOp, f64),
    /// `lhs op rhs` over two features.
    Pair(usize, CmpOp, usize),
    /// Constant truth value.
    Bool(bool),
}

/// Normalize to disjunctive normal form, pushing negation inward through
/// [`CmpOp::negate`]. Returns `None` when the conjunct budget is blown.
fn to_dnf(p: &Predicate, negated: bool) -> Option<Vec<Vec<Atom>>> {
    match p {
        Predicate::True => Some(vec![vec![Atom::Bool(!negated)]]),
        Predicate::False => Some(vec![vec![Atom::Bool(negated)]]),
        Predicate::Feature { feature, op, value } => {
            let op = if negated { op.negate() } else { *op };
            Some(vec![vec![Atom::Feat(*feature, op, *value)]])
        }
        Predicate::Pair { lhs, op, rhs } => {
            let op = if negated { op.negate() } else { *op };
            Some(vec![vec![Atom::Pair(*lhs, op, *rhs)]])
        }
        Predicate::Not(inner) => to_dnf(inner, !negated),
        Predicate::And(parts) if !negated => cross_product(parts, negated),
        Predicate::Or(parts) if negated => cross_product(parts, negated),
        // A disjunction (or negated conjunction): concatenate children.
        Predicate::And(parts) | Predicate::Or(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(to_dnf(part, negated)?);
                if out.len() > DNF_BUDGET {
                    return None;
                }
            }
            Some(out)
        }
    }
}

/// DNF of a conjunction of children: the cross-product of their DNFs.
fn cross_product(parts: &[Predicate], negated: bool) -> Option<Vec<Vec<Atom>>> {
    let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
    for part in parts {
        let dnf = to_dnf(part, negated)?;
        let mut next = Vec::with_capacity(acc.len().saturating_mul(dnf.len()));
        for left in &acc {
            for right in &dnf {
                if next.len() > DNF_BUDGET {
                    return None;
                }
                let mut merged = left.clone();
                merged.extend(right.iter().cloned());
                next.push(merged);
            }
        }
        acc = next;
    }
    Some(acc)
}

/// An interval with open/closed endpoints.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    lo_strict: bool,
    hi: f64,
    hi_strict: bool,
}

impl Interval {
    fn full() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            lo_strict: false,
            hi: f64::INFINITY,
            hi_strict: false,
        }
    }

    fn tighten_lo(&mut self, lo: f64, strict: bool) {
        if lo > self.lo {
            self.lo = lo;
            self.lo_strict = strict;
        } else if lo == self.lo {
            self.lo_strict |= strict;
        }
    }

    fn tighten_hi(&mut self, hi: f64, strict: bool) {
        if hi < self.hi {
            self.hi = hi;
            self.hi_strict = strict;
        } else if hi == self.hi {
            self.hi_strict |= strict;
        }
    }

    fn merge(&mut self, other: &Interval) {
        self.tighten_lo(other.lo, other.lo_strict);
        self.tighten_hi(other.hi, other.hi_strict);
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_strict || self.hi_strict))
    }

    /// The single value this interval pins, if any.
    fn point(&self) -> Option<f64> {
        (self.lo == self.hi && !self.lo_strict && !self.hi_strict && self.lo.is_finite())
            .then_some(self.lo)
    }
}

/// Order relation between two features reachable through `<=`/`<` edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reach {
    No,
    Le,
    Lt,
}

/// Is a single conjunct of atoms consistent over the reals?
///
/// Complete for this fragment: equalities merge features (union-find),
/// order atoms form a `<=`/`<` graph whose transitive closure exposes
/// strict cycles and forced equalities, interval bounds propagate along
/// the closure, and disequalities only bite when both sides are pinned to
/// the same point (the reals are dense everywhere else).
fn conjunct_consistent(atoms: &[Atom]) -> bool {
    let mut n = 0usize;
    for a in atoms {
        match a {
            Atom::Bool(false) => return false,
            Atom::Bool(true) => {}
            Atom::Feat(f, _, _) => n = n.max(f + 1),
            Atom::Pair(l, _, r) => n = n.max(l.max(r) + 1),
        }
    }
    if n == 0 {
        return true; // only Bool(true) atoms
    }

    // Union-find over feature indices, driven by `Pair(_, Eq, _)` atoms.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for a in atoms {
        if let Atom::Pair(l, CmpOp::Eq, r) = a {
            let (rl, rr) = (find(&mut parent, *l), find(&mut parent, *r));
            if rl != rr {
                parent[rl] = rr;
            }
        }
    }

    let mut intervals = vec![Interval::full(); n];
    let mut ne_consts: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut ne_pairs: Vec<(usize, usize)> = Vec::new();
    let mut order = vec![vec![Reach::No; n]; n]; // order[a][b]: a (<=|<) b

    for a in atoms {
        match *a {
            Atom::Bool(_) => {}
            Atom::Feat(f, op, c) => {
                let rep = find(&mut parent, f);
                if c.is_nan() {
                    // Every comparison with NaN is false except `!=`.
                    if op != CmpOp::Ne {
                        return false;
                    }
                    continue;
                }
                let iv = &mut intervals[rep];
                match op {
                    CmpOp::Lt => iv.tighten_hi(c, true),
                    CmpOp::Le => iv.tighten_hi(c, false),
                    CmpOp::Gt => iv.tighten_lo(c, true),
                    CmpOp::Ge => iv.tighten_lo(c, false),
                    CmpOp::Eq => {
                        iv.tighten_lo(c, false);
                        iv.tighten_hi(c, false);
                    }
                    CmpOp::Ne => ne_consts[rep].push(c),
                }
            }
            Atom::Pair(l, op, r) => {
                let (rl, rr) = (find(&mut parent, l), find(&mut parent, r));
                match op {
                    CmpOp::Eq => {} // consumed by union-find above
                    CmpOp::Ne => {
                        if rl == rr {
                            return false; // x != x
                        }
                        ne_pairs.push((rl, rr));
                    }
                    CmpOp::Lt => order[rl][rr] = Reach::Lt,
                    CmpOp::Le => {
                        if order[rl][rr] == Reach::No {
                            order[rl][rr] = Reach::Le;
                        }
                    }
                    CmpOp::Gt => order[rr][rl] = Reach::Lt,
                    CmpOp::Ge => {
                        if order[rr][rl] == Reach::No {
                            order[rr][rl] = Reach::Le;
                        }
                    }
                }
            }
        }
    }

    // Transitive closure of the order graph, tracking strictness: a path
    // with any `<` edge makes the whole relation strict.
    for k in 0..n {
        for i in 0..n {
            if order[i][k] == Reach::No {
                continue;
            }
            for j in 0..n {
                if order[k][j] == Reach::No {
                    continue;
                }
                let strict = order[i][k] == Reach::Lt || order[k][j] == Reach::Lt;
                let combined = if strict { Reach::Lt } else { Reach::Le };
                if order[i][j] != Reach::Lt && (combined == Reach::Lt || order[i][j] == Reach::No) {
                    order[i][j] = combined;
                }
            }
        }
    }
    // A strict cycle (x < x) is a contradiction.
    for (i, row) in order.iter().enumerate() {
        if row[i] == Reach::Lt {
            return false;
        }
    }

    // Propagate bounds along the closed order relation: a <= b means
    // lo(b) >= lo(a) and hi(a) <= hi(b).
    for i in 0..n {
        for j in 0..n {
            let rel = order[i][j];
            if rel == Reach::No {
                continue;
            }
            let strict = rel == Reach::Lt;
            let (lo, lo_strict) = (intervals[i].lo, intervals[i].lo_strict);
            intervals[j].tighten_lo(lo, lo_strict || strict);
            let (hi, hi_strict) = (intervals[j].hi, intervals[j].hi_strict);
            intervals[i].tighten_hi(hi, hi_strict || strict);
        }
    }

    for i in 0..n {
        let rep = find(&mut parent, i);
        if rep != i {
            // Mirror the representative's interval onto members (bounds
            // were only accumulated on representatives, but order edges
            // always use representatives, so this is just bookkeeping).
            let merged = intervals[rep];
            intervals[i].merge(&merged);
        }
    }

    for (i, iv) in intervals.iter().enumerate() {
        if iv.is_empty() {
            return false;
        }
        if let Some(p) = iv.point() {
            if ne_consts[i].contains(&p) {
                return false;
            }
        }
    }

    for &(a, b) in &ne_pairs {
        // Both pinned to the same point, or mutually ordered (a <= b and
        // b <= a forces equality): the disequality cannot hold.
        if let (Some(pa), Some(pb)) = (intervals[a].point(), intervals[b].point()) {
            if pa == pb {
                return false;
            }
        }
        if order[a][b] != Reach::No && order[b][a] != Reach::No {
            return false;
        }
    }

    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradictory_bounds_are_unsat() {
        let a = Predicate::lt(0, 1.0);
        let b = Predicate::gt(0, 2.0);
        assert_eq!(check(&[&a, &b]), Sat::Unsatisfiable);
        assert_eq!(check(&[&a]), Sat::Satisfiable);
    }

    #[test]
    fn touching_strict_bounds_are_unsat() {
        let a = Predicate::lt(0, 5.0);
        let b = Predicate::ge(0, 5.0);
        assert_eq!(check(&[&a, &b]), Sat::Unsatisfiable);
        // Non-strict touch is the single point 5.
        let c = Predicate::le(0, 5.0);
        assert_eq!(check(&[&c, &b]), Sat::Satisfiable);
    }

    #[test]
    fn eq_ne_point_conflicts() {
        let eq = Predicate::eq(0, 3.0);
        let ne = Predicate::ne(0, 3.0);
        assert_eq!(check(&[&eq, &ne]), Sat::Unsatisfiable);
        // A disequality inside a fat interval is fine (dense reals).
        let iv = Predicate::between(0, 0.0, 10.0);
        assert_eq!(check(&[&iv, &ne]), Sat::Satisfiable);
    }

    #[test]
    fn strict_pair_cycle_is_unsat() {
        let a = Predicate::pair(0, CmpOp::Lt, 1);
        let b = Predicate::pair(1, CmpOp::Lt, 2);
        let c = Predicate::pair(2, CmpOp::Lt, 0);
        assert_eq!(check(&[&a, &b, &c]), Sat::Unsatisfiable);
        // A non-strict cycle just forces equality: satisfiable.
        let a2 = Predicate::pair(0, CmpOp::Le, 1);
        let c2 = Predicate::pair(2, CmpOp::Le, 0);
        let b2 = Predicate::pair(1, CmpOp::Le, 2);
        assert_eq!(check(&[&a2, &b2, &c2]), Sat::Satisfiable);
    }

    #[test]
    fn forced_equality_conflicts_with_disequality() {
        let le = Predicate::pair(0, CmpOp::Le, 1);
        let ge = Predicate::pair(0, CmpOp::Ge, 1);
        let ne = Predicate::pair(0, CmpOp::Ne, 1);
        assert_eq!(check(&[&le, &ge, &ne]), Sat::Unsatisfiable);
        assert_eq!(check(&[&le, &ne]), Sat::Satisfiable);
    }

    #[test]
    fn bounds_propagate_through_order_edges() {
        // f0 >= 10 and f0 <= f1 and f1 <= 5: empty.
        let lo = Predicate::ge(0, 10.0);
        let ord = Predicate::pair(0, CmpOp::Le, 1);
        let hi = Predicate::le(1, 5.0);
        assert_eq!(check(&[&lo, &ord, &hi]), Sat::Unsatisfiable);
        // Chain through a middle feature.
        let ord2 = Predicate::pair(1, CmpOp::Le, 2);
        let hi2 = Predicate::le(2, 5.0);
        assert_eq!(check(&[&lo, &ord, &ord2, &hi2]), Sat::Unsatisfiable);
    }

    #[test]
    fn equality_merges_pair_features() {
        // f0 == f1, f0 < 3, f1 > 4: the merged feature has empty bounds.
        let eq = Predicate::pair(0, CmpOp::Eq, 1);
        let a = Predicate::lt(0, 3.0);
        let b = Predicate::gt(1, 4.0);
        assert_eq!(check(&[&eq, &a, &b]), Sat::Unsatisfiable);
    }

    #[test]
    fn negation_normalizes_through_connectives() {
        // !(f0 <= 5 || f0 >= 10) == 5 < f0 < 10.
        let p = Predicate::any(vec![Predicate::le(0, 5.0), Predicate::ge(0, 10.0)]).not();
        assert_eq!(check(&[&p]), Sat::Satisfiable);
        let conflict = Predicate::le(0, 5.0);
        assert_eq!(check(&[&p, &conflict]), Sat::Unsatisfiable);
    }

    #[test]
    fn constant_predicates() {
        assert_eq!(check(&[&Predicate::False]), Sat::Unsatisfiable);
        assert_eq!(check(&[&Predicate::True]), Sat::Satisfiable);
        assert_eq!(check(&[]), Sat::Satisfiable);
        assert_eq!(check(&[&Predicate::Or(vec![])]), Sat::Unsatisfiable);
    }

    #[test]
    fn nan_constants_never_compare() {
        let p = Predicate::le(0, f64::NAN);
        assert_eq!(check(&[&p]), Sat::Unsatisfiable);
        let ne = Predicate::ne(0, f64::NAN);
        assert_eq!(check(&[&ne]), Sat::Satisfiable);
    }

    #[test]
    fn implication_examples() {
        assert!(implies(&Predicate::le(0, 5.0), &Predicate::le(0, 10.0)));
        assert!(!implies(&Predicate::le(0, 10.0), &Predicate::le(0, 5.0)));
        assert!(implies(
            &Predicate::between(0, 2.0, 3.0),
            &Predicate::gt(0, 1.0)
        ));
        // Equivalent predicates imply each other.
        let a = Predicate::le(0, 5.0);
        let b = Predicate::gt(0, 5.0).not();
        assert!(implies(&a, &b) && implies(&b, &a));
    }

    #[test]
    fn budget_overflow_degrades_to_unknown() {
        // Each clause is a 2-way disjunction; 13 of them cross-multiply to
        // 8192 conjuncts, past the 4096 budget.
        let clause = Predicate::any(vec![Predicate::le(0, 1.0), Predicate::ge(1, 2.0)]);
        let big = Predicate::all(vec![clause; 13]);
        assert_eq!(check(&[&big]), Sat::Unknown);
    }
}
