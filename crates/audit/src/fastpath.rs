//! Model fast-path audit: is the compiled prediction engine actually
//! fast — and is it *right*?
//!
//! Codes `NITRO060`–`NITRO062`. The compiled SVM engine (see
//! `nitro_ml::svm::compiled`) dedupes support vectors across the
//! one-vs-one pair machines and evaluates each unique kernel value once;
//! the SMO trainer bounds kernel storage with an LRU column cache. Both
//! optimizations have failure modes that are invisible until dispatch is
//! slow or wrong:
//!
//! - a model that retained nearly every training row as a support vector
//!   gains almost nothing from dedup and pays a near-full kernel pass per
//!   prediction (`NITRO060`);
//! - a kernel-cache budget smaller than a single column degenerates the
//!   trainer to recomputing every kernel entry it touches (`NITRO061`);
//! - any divergence between the compiled engine and the reference
//!   one-vs-one path is a correctness bug, checked by replaying the
//!   training set through both (`NITRO062`).

use nitro_core::diag::registry::codes;
use nitro_core::{Diagnostic, TrainedModel};
use nitro_ml::{ClassifierConfig, Dataset};

/// Support-vector density (unique SVs / training rows) at or above which
/// `NITRO060` fires. libSVM folklore: an RBF model keeping ~all rows as
/// SVs is usually mis-parameterized (γ too large or C too small).
pub const SV_DENSITY_WARN: f64 = 0.9;

/// Bytes per kernel-cache column entry (one `f64`).
const COL_ENTRY_BYTES: usize = std::mem::size_of::<f64>();

/// Lint a classifier configuration's kernel-cache budget against the
/// training-set size (`NITRO061`). A budget below one full column
/// (`8·rows` bytes) cannot hold even the column being computed: the LRU
/// clamps to two resident columns anyway, but the configuration is
/// almost certainly a units mistake (e.g. megabytes passed as bytes).
pub fn lint_cache_budget(
    config: &ClassifierConfig,
    training_rows: usize,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let ClassifierConfig::Svm {
        cache_bytes: Some(bytes),
        ..
    } = config
    {
        let column = training_rows * COL_ENTRY_BYTES;
        if *bytes < column {
            out.push(Diagnostic::error(
                codes::NITRO061,
                subject,
                format!(
                    "kernel-cache budget of {bytes} B holds less than one kernel column \
                     ({column} B for {training_rows} training rows); training would thrash — \
                     raise cache_bytes to at least a few columns"
                ),
            ));
        }
    }
    out
}

/// Audit a trained model's prediction fast path against the data it was
/// trained on (`NITRO060`, `NITRO062`). Non-SVM models have no compiled
/// form and audit clean.
pub fn audit_fastpath(model: &TrainedModel, data: &Dataset, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let TrainedModel::Svm {
        scaler, model: svm, ..
    } = model
    else {
        return out;
    };
    let compiled = svm.compiled();

    // NITRO060: dense support — the compiled engine's dedup cannot help.
    let rows = data.len();
    if rows > 0 {
        let density = compiled.n_unique_svs() as f64 / rows as f64;
        if density >= SV_DENSITY_WARN {
            out.push(Diagnostic::warning(
                codes::NITRO060,
                subject,
                format!(
                    "{} of {rows} training rows ({:.0}%) are support vectors; every \
                     prediction pays a near-full kernel pass — consider a wider RBF \
                     (smaller gamma) or larger C",
                    compiled.n_unique_svs(),
                    density * 100.0
                ),
            ));
        }
    }

    // NITRO062: the compiled engine must agree with the reference
    // one-vs-one path everywhere; the training set is the cheapest
    // representative probe set we have.
    let mut mismatches = 0usize;
    let mut first: Option<usize> = None;
    for (i, x) in data.x.iter().enumerate() {
        let scaled = scaler.transform(x);
        if svm.predict(&scaled) != compiled.predict(&scaled) {
            mismatches += 1;
            first.get_or_insert(i);
        }
    }
    if mismatches > 0 {
        out.push(Diagnostic::error(
            codes::NITRO062,
            subject,
            format!(
                "compiled prediction engine disagrees with the reference path on \
                 {mismatches} of {rows} training rows (first at row {}); the compiled \
                 model must not be served",
                first.unwrap_or(0)
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::Severity;

    fn clusters(n_per: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n_per {
            let j = i as f64 * 0.1;
            d.push(vec![0.0 + j, 0.0 - j], 0);
            d.push(vec![8.0 + j, 8.0 - j], 1);
        }
        d
    }

    fn svm(config: &ClassifierConfig, data: &Dataset) -> TrainedModel {
        TrainedModel::train(config, data)
    }

    #[test]
    fn healthy_model_audits_clean() {
        let data = clusters(10);
        let m = svm(
            &ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        assert!(audit_fastpath(&m, &data, "toy").is_empty());
    }

    #[test]
    fn dense_support_is_nitro060() {
        // A huge gamma makes every row its own island: all rows become
        // support vectors.
        let data = clusters(10);
        let m = svm(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(1000.0),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        let diags = audit_fastpath(&m, &data, "toy");
        assert!(
            diags
                .iter()
                .any(|d| d.code == "NITRO060" && d.severity == Severity::Warning),
            "expected NITRO060, got {diags:?}"
        );
    }

    #[test]
    fn undersized_cache_budget_is_nitro061() {
        let tiny = ClassifierConfig::Svm {
            c: Some(1.0),
            gamma: Some(0.5),
            grid_search: false,
            cache_bytes: Some(64),
        };
        let diags = lint_cache_budget(&tiny, 100, "toy");
        assert!(
            diags
                .iter()
                .any(|d| d.code == "NITRO061" && d.severity == Severity::Error),
            "64 B cannot hold a 800 B column: {diags:?}"
        );
        // One column exactly is accepted (the LRU keeps ≥2 resident by
        // stealing from the budget, but the configuration is sane).
        assert!(lint_cache_budget(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: Some(800),
            },
            100,
            "toy"
        )
        .is_empty());
        // Defaulted budgets are never flagged.
        assert!(lint_cache_budget(&ClassifierConfig::default(), 1 << 20, "toy").is_empty());
        assert!(lint_cache_budget(&ClassifierConfig::Knn { k: 3 }, 100, "toy").is_empty());
    }

    #[test]
    fn non_svm_models_audit_clean() {
        let data = clusters(5);
        let m = TrainedModel::train(&ClassifierConfig::Knn { k: 3 }, &data);
        assert!(audit_fastpath(&m, &data, "toy").is_empty());
    }

    #[test]
    fn compiled_reference_agreement_holds_on_training_set() {
        // NITRO062 is the tripwire for a future regression: on a healthy
        // build the compiled engine is bit-identical, so this must never
        // fire across a spread of hyper-parameters.
        let data = clusters(8);
        for (c, gamma) in [(0.5, 0.1), (10.0, 1.0), (100.0, 5.0)] {
            let m = svm(
                &ClassifierConfig::Svm {
                    c: Some(c),
                    gamma: Some(gamma),
                    grid_search: false,
                    cache_bytes: None,
                },
                &data,
            );
            let diags = audit_fastpath(&m, &data, "toy");
            assert!(
                !diags.iter().any(|d| d.code == "NITRO062"),
                "c={c} gamma={gamma}: {diags:?}"
            );
        }
    }
}
