//! The tuning-graph IR: a typed, analyzable picture of one registered
//! function's *whole* configuration.
//!
//! Every other analyzer in this crate looks at one artifact in isolation
//! (a registration, an artifact, a profile table). The whole-configuration
//! passes (`NITRO080`–`NITRO086`, [`crate::deep`]) instead walk a
//! [`TuningGraph`]: variants, features with their policy-activation
//! flags, constraints lowered to [`Predicate`]s (or marked opaque),
//! the trained model's emittable class labels, the fallback cascade as
//! explicit edges, and — when a versioned artifact store is attached —
//! one [`VersionNode`] per stored manifest entry.
//!
//! The graph is plain data (and serializable), so higher crates can
//! build or extend it without `nitro-audit` depending on them:
//! `nitro-guard` contributes cascade edges from its degradation planner,
//! `nitro-store` contributes version nodes from its manifest, and the
//! bench/tuner layers glue them together.

use nitro_core::{CodeVariant, Predicate};
use nitro_ml::TrainedModel;
use serde::{Deserialize, Serialize};

/// One registered code variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantNode {
    /// Variant name, in registration order.
    pub name: String,
    /// Whether this is the constraint-fallback default.
    pub is_default: bool,
}

/// One registered input feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureNode {
    /// Feature name, in registration order.
    pub name: String,
    /// Whether the policy's `feature_subset` feeds it to the model.
    pub active: bool,
}

/// A constraint lowered into the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintNode {
    /// Variant index the constraint vetoes.
    pub variant: usize,
    /// Stable constraint name.
    pub name: String,
    /// The analyzable expression, or [`ConstraintExpr::Opaque`] for a
    /// host-language closure.
    pub expr: ConstraintExpr,
}

/// The analyzable body of a constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstraintExpr {
    /// A declarative predicate over registered feature indices.
    Predicate(Predicate),
    /// An opaque host-language closure: executable, not analyzable.
    Opaque,
}

/// The trained model's contribution to the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelNode {
    /// Model family, for messages (`"svm"`, `"knn"`, `"tree"`, `"forest"`).
    pub kind: String,
    /// Class labels the model can emit, sorted. A sound superset: see
    /// `TrainedModel::emittable_classes`.
    pub classes: Vec<usize>,
}

/// A directed fallback edge: when `from` is vetoed, dispatch may retry
/// `to`. The default graph built from a [`CodeVariant`] has one edge per
/// constrained variant into the terminal default; `nitro-guard`'s
/// degradation planner contributes richer cascades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeEdge {
    /// Vetoed variant.
    pub from: usize,
    /// Fallback target.
    pub to: usize,
}

/// One stored artifact version from a `nitro-store` manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionNode {
    /// Monotonic store version number.
    pub version: u64,
    /// Whether this is the manifest's latest (live) version.
    pub is_latest: bool,
    /// Function name recorded in the stored artifact.
    pub function: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// Variant names recorded in the stored artifact.
    pub variant_names: Vec<String>,
    /// Feature names recorded in the stored artifact.
    pub feature_names: Vec<String>,
}

/// Profile-table data attached to the graph: per-input feature vectors
/// in *active-subset column order*, plus the mapping from column to
/// registered feature index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileData {
    /// `columns[j]` is the registered feature index of column `j`.
    pub columns: Vec<usize>,
    /// Per-input feature vectors, one value per column.
    pub rows: Vec<Vec<f64>>,
}

/// Whole-configuration IR for one registered function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningGraph {
    /// Function name (the diagnostics' subject).
    pub function: String,
    /// Registered variants, index order.
    pub variants: Vec<VariantNode>,
    /// Registered features, index order.
    pub features: Vec<FeatureNode>,
    /// Lowered constraints, registration order.
    pub constraints: Vec<ConstraintNode>,
    /// The installed model, if any.
    pub model: Option<ModelNode>,
    /// Fallback cascade edges.
    pub cascade: Vec<CascadeEdge>,
    /// Stored artifact versions, if a store is attached.
    pub versions: Vec<VersionNode>,
    /// Profile-table feature data, if available.
    pub profile: Option<ProfileData>,
}

impl TuningGraph {
    /// Lower a live registration into the IR.
    ///
    /// The cascade defaults to dispatch's actual fallback behavior: each
    /// constrained non-default variant falls back to the default, whose
    /// own constraints are *not* re-checked (it is terminal). Attach
    /// richer cascades with [`TuningGraph::with_cascade`].
    pub fn from_code_variant<I: ?Sized>(cv: &CodeVariant<I>) -> Self {
        let default = cv.default_variant();
        let variants = cv
            .variant_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| VariantNode {
                name,
                is_default: default == Some(i),
            })
            .collect::<Vec<_>>();

        let n_features = cv.n_features();
        let active = cv.policy().active_features(n_features);
        let features = cv
            .feature_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| FeatureNode {
                name,
                active: active.contains(&i),
            })
            .collect();

        let constraints = cv
            .constraint_descriptors()
            .into_iter()
            .map(|d| ConstraintNode {
                variant: d.variant,
                name: d.name,
                expr: match d.predicate {
                    Some(p) => ConstraintExpr::Predicate(p),
                    None => ConstraintExpr::Opaque,
                },
            })
            .collect::<Vec<ConstraintNode>>();

        let model = cv.model().map(|m| ModelNode {
            kind: model_kind(m).to_string(),
            classes: m.emittable_classes(),
        });

        let cascade = default_cascade(variants.len(), default, &constraints);

        TuningGraph {
            function: cv.name().to_string(),
            variants,
            features,
            constraints,
            model,
            cascade,
            versions: Vec::new(),
            profile: None,
        }
    }

    /// Attach profile-table feature vectors. `columns[j]` names the
    /// registered feature index of column `j` (profile tables store the
    /// policy's active subset, in subset order).
    pub fn with_profile(mut self, columns: Vec<usize>, rows: Vec<Vec<f64>>) -> Self {
        self.profile = Some(ProfileData { columns, rows });
        self
    }

    /// Attach stored artifact versions from a manifest.
    pub fn with_versions(mut self, versions: Vec<VersionNode>) -> Self {
        self.versions = versions;
        self
    }

    /// Replace the fallback cascade with explicitly-planned edges (e.g.
    /// from `nitro-guard`'s degradation planner).
    pub fn with_cascade(mut self, cascade: Vec<CascadeEdge>) -> Self {
        self.cascade = cascade;
        self
    }

    /// Indices of variants carrying at least one constraint.
    pub fn constrained_variants(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.constraints.iter().map(|c| c.variant).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The default variant's index, if one is set and in range.
    pub fn default_variant(&self) -> Option<usize> {
        self.variants.iter().position(|v| v.is_default)
    }

    /// Registered feature indices referenced by at least one predicate.
    pub fn predicate_features(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for c in &self.constraints {
            if let ConstraintExpr::Predicate(p) = &c.expr {
                out.extend(p.features_referenced());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The dispatcher's implicit fallback structure: every constrained
/// non-default variant has one edge into the (terminal) default.
fn default_cascade(
    n_variants: usize,
    default: Option<usize>,
    constraints: &[ConstraintNode],
) -> Vec<CascadeEdge> {
    let Some(d) = default.filter(|&d| d < n_variants) else {
        return Vec::new();
    };
    let mut targets: Vec<usize> = constraints.iter().map(|c| c.variant).collect();
    targets.sort_unstable();
    targets.dedup();
    targets
        .into_iter()
        .filter(|&v| v != d && v < n_variants)
        .map(|v| CascadeEdge { from: v, to: d })
        .collect()
}

/// Short family name for messages.
fn model_kind(m: &TrainedModel) -> &'static str {
    match m {
        TrainedModel::Svm { .. } => "svm",
        TrainedModel::Knn { .. } => "knn",
        TrainedModel::Tree { .. } => "tree",
        TrainedModel::Forest { .. } => "forest",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnConstraint, FnFeature, FnVariant};

    fn cv() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("b", |&x: &f64| 10.0 - x));
        cv.add_variant(FnVariant::new("c", |&x: &f64| x * x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("y", |&x: &f64| -x));
        cv
    }

    #[test]
    fn lowers_registration_shape() {
        let mut cv = cv();
        cv.add_predicate_constraint(1, "small", Predicate::le(0, 8.0))
            .unwrap();
        cv.add_constraint(2, FnConstraint::new("opaque", |_: &f64| true))
            .unwrap();
        let g = TuningGraph::from_code_variant(&cv);
        assert_eq!(g.function, "toy");
        assert_eq!(g.variants.len(), 3);
        assert!(g.variants[0].is_default);
        assert_eq!(g.default_variant(), Some(0));
        assert_eq!(g.features.len(), 2);
        assert!(g.features.iter().all(|f| f.active));
        assert_eq!(g.constraints.len(), 2);
        assert!(matches!(
            g.constraints[0].expr,
            ConstraintExpr::Predicate(_)
        ));
        assert!(matches!(g.constraints[1].expr, ConstraintExpr::Opaque));
        assert_eq!(g.constrained_variants(), vec![1, 2]);
        assert_eq!(g.predicate_features(), vec![0]);
        // One fallback edge per constrained variant into the default.
        assert_eq!(
            g.cascade,
            vec![
                CascadeEdge { from: 1, to: 0 },
                CascadeEdge { from: 2, to: 0 }
            ]
        );
        assert!(g.model.is_none());
        assert!(g.versions.is_empty());
    }

    #[test]
    fn feature_subset_marks_inactive_features() {
        let mut cv = cv();
        cv.policy_mut().feature_subset = Some(vec![1]);
        let g = TuningGraph::from_code_variant(&cv);
        assert!(!g.features[0].active);
        assert!(g.features[1].active);
    }

    #[test]
    fn no_default_means_no_cascade() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("nodefault", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("b", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.add_predicate_constraint(1, "p", Predicate::le(0, 1.0))
            .unwrap();
        let g = TuningGraph::from_code_variant(&cv);
        assert!(g.cascade.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut cv = cv();
        cv.add_predicate_constraint(2, "sq", Predicate::between(1, 0.0, 4.0))
            .unwrap();
        let g = TuningGraph::from_code_variant(&cv).with_versions(vec![VersionNode {
            version: 3,
            is_latest: true,
            function: "toy".into(),
            schema_version: 1,
            variant_names: vec!["a".into(), "b".into(), "c".into()],
            feature_names: vec!["x".into(), "y".into()],
        }]);
        let json = serde_json::to_string(&g).unwrap();
        let back: TuningGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
