//! Runtime-metrics analysis: suspicious signals in an exported
//! `nitro-trace` metrics snapshot.
//!
//! Codes `NITRO040`–`NITRO049`. Where the other analyzers inspect
//! configuration *before* it runs, this one inspects what a traced run
//! actually did: a dispatcher that falls back to its default on most
//! calls is paying feature-extraction cost for nothing, and a registered
//! variant that never wins a single call is either dead weight or a sign
//! the model never learned its class.
//!
//! The analyzer reads the counter naming scheme the instrumented
//! dispatcher emits (`dispatch.<fn>.calls`, `dispatch.<fn>.fallback`,
//! `dispatch.<fn>.win.<variant>`, `dispatch.<fn>.veto.<variant>`). Use
//! `CodeVariant::declare_tracer_metrics` before a traced run so
//! never-won variants appear as explicit zero counters.

use nitro_core::diag::registry::codes;
use nitro_core::Diagnostic;
use nitro_trace::MetricsSnapshot;

/// Thresholds for the runtime-metrics analyzer.
#[derive(Debug, Clone, Copy)]
pub struct MetricsAuditConfig {
    /// Fallback share of calls above which `NITRO041` fires.
    pub max_fallback_rate: f64,
    /// Minimum calls before rate-based findings are trusted (tiny runs
    /// produce meaningless rates).
    pub min_calls: u64,
}

impl Default for MetricsAuditConfig {
    fn default() -> Self {
        Self {
            max_fallback_rate: 0.5,
            min_calls: 10,
        }
    }
}

/// Per-function counters reassembled from the flat metric names.
struct FunctionMetrics {
    function: String,
    calls: u64,
    fallbacks: u64,
    /// `(variant, wins)` in name order.
    wins: Vec<(String, u64)>,
    /// `(variant, vetoes)` in name order.
    vetoes: Vec<(String, u64)>,
}

fn entry<'a>(out: &'a mut Vec<FunctionMetrics>, function: &str) -> &'a mut FunctionMetrics {
    if let Some(i) = out.iter().position(|f| f.function == function) {
        &mut out[i]
    } else {
        out.push(FunctionMetrics {
            function: function.to_string(),
            calls: 0,
            fallbacks: 0,
            wins: Vec::new(),
            vetoes: Vec::new(),
        });
        out.last_mut().expect("just pushed")
    }
}

fn collect_functions(snapshot: &MetricsSnapshot) -> Vec<FunctionMetrics> {
    let mut out: Vec<FunctionMetrics> = Vec::new();
    for (name, value) in &snapshot.counters {
        let Some(rest) = name.strip_prefix("dispatch.") else {
            continue;
        };
        // `dispatch.<fn>.calls` | `.fallback` | `.win.<variant>` |
        // `.veto.<variant>`. Function names may not contain dots
        // (variant names may): split on the *first* dot after the prefix.
        let Some((function, field)) = rest.split_once('.') else {
            continue;
        };
        match field {
            "calls" => entry(&mut out, function).calls = *value,
            "fallback" => entry(&mut out, function).fallbacks = *value,
            _ => {
                if let Some(variant) = field.strip_prefix("win.") {
                    entry(&mut out, function)
                        .wins
                        .push((variant.to_string(), *value));
                } else if let Some(variant) = field.strip_prefix("veto.") {
                    entry(&mut out, function)
                        .vetoes
                        .push((variant.to_string(), *value));
                }
            }
        }
    }
    out
}

/// Analyze an exported metrics snapshot for suspicious runtime behavior.
pub fn analyze_metrics(snapshot: &MetricsSnapshot, config: &MetricsAuditConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in collect_functions(snapshot) {
        if f.calls < config.min_calls {
            continue;
        }
        let fallback_rate = f.fallbacks as f64 / f.calls as f64;
        if fallback_rate > config.max_fallback_rate {
            out.push(Diagnostic::warning(
                codes::NITRO041,
                &f.function,
                format!(
                    "constraints vetoed the model's choice on {:.0}% of {} calls \
                     (threshold {:.0}%); the model is effectively bypassed — \
                     consider training with constraints enabled or revisiting them",
                    fallback_rate * 100.0,
                    f.calls,
                    config.max_fallback_rate * 100.0
                ),
            ));
        }
        for (variant, wins) in &f.wins {
            if *wins == 0 {
                out.push(Diagnostic::warning(
                    codes::NITRO042,
                    &f.function,
                    format!(
                        "variant '{variant}' never won a call in {} dispatches; \
                         it is dead weight at runtime or a class the model never predicts",
                        f.calls
                    ),
                ));
            }
        }
        let total_vetoes: u64 = f.vetoes.iter().map(|(_, v)| v).sum();
        let total_wins: u64 = f.wins.iter().map(|(_, v)| v).sum();
        if total_vetoes > total_wins && total_wins > 0 {
            out.push(Diagnostic::info(
                codes::NITRO043,
                &f.function,
                format!(
                    "vetoes ({total_vetoes}) outnumber recorded wins ({total_wins}); \
                     constraint pressure dominates this function's dispatch"
                ),
            ));
        }
    }
    out
}

/// Analyze a metrics snapshot serialized as JSON (the file
/// `trace_report` exports). An unparseable document is itself a finding
/// (`NITRO040`, error severity) rather than a hard failure, so one
/// corrupt export doesn't abort a multi-file audit sweep.
pub fn analyze_metrics_json(
    json: &str,
    subject: &str,
    config: &MetricsAuditConfig,
) -> Vec<Diagnostic> {
    match MetricsSnapshot::from_json(json) {
        Ok(snapshot) => analyze_metrics(&snapshot, config),
        Err(e) => vec![Diagnostic::error(
            codes::NITRO040,
            subject,
            format!("metrics JSON does not parse as a MetricsSnapshot: {e}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::Severity;
    use nitro_trace::MetricsRegistry;

    fn snapshot(counters: &[(&str, u64)]) -> MetricsSnapshot {
        let m = MetricsRegistry::new();
        for (name, v) in counters {
            m.declare_counter(name);
            m.add(name, *v);
        }
        m.snapshot()
    }

    #[test]
    fn healthy_metrics_produce_no_findings() {
        let s = snapshot(&[
            ("dispatch.spmv.calls", 100),
            ("dispatch.spmv.fallback", 3),
            ("dispatch.spmv.win.csr", 60),
            ("dispatch.spmv.win.ell", 40),
        ]);
        assert!(analyze_metrics(&s, &MetricsAuditConfig::default()).is_empty());
    }

    #[test]
    fn high_fallback_rate_fires_nitro041() {
        let s = snapshot(&[
            ("dispatch.spmv.calls", 100),
            ("dispatch.spmv.fallback", 80),
            ("dispatch.spmv.win.csr", 100),
        ]);
        let diags = analyze_metrics(&s, &MetricsAuditConfig::default());
        assert!(diags.iter().any(|d| d.code == "NITRO041"), "{diags:?}");
    }

    #[test]
    fn zero_win_variant_fires_nitro042() {
        let s = snapshot(&[
            ("dispatch.sort.calls", 50),
            ("dispatch.sort.win.radix", 50),
            ("dispatch.sort.win.merge", 0),
        ]);
        let diags = analyze_metrics(&s, &MetricsAuditConfig::default());
        let d = diags.iter().find(|d| d.code == "NITRO042").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("merge"), "{}", d.message);
    }

    #[test]
    fn veto_dominance_fires_nitro043_as_info() {
        let s = snapshot(&[
            ("dispatch.bfs.calls", 100),
            ("dispatch.bfs.fallback", 15),
            ("dispatch.bfs.win.fused", 40),
            ("dispatch.bfs.veto.iter", 55),
            ("dispatch.bfs.win.iter", 5),
        ]);
        let diags = analyze_metrics(&s, &MetricsAuditConfig::default());
        let d = diags.iter().find(|d| d.code == "NITRO043").expect("fires");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn tiny_runs_are_not_judged() {
        let s = snapshot(&[
            ("dispatch.spmv.calls", 3),
            ("dispatch.spmv.fallback", 3),
            ("dispatch.spmv.win.csr", 0),
        ]);
        assert!(analyze_metrics(&s, &MetricsAuditConfig::default()).is_empty());
    }

    #[test]
    fn unrelated_counters_are_ignored() {
        let s = snapshot(&[("simt.launches", 500), ("profile.spmv.inputs", 40)]);
        assert!(analyze_metrics(&s, &MetricsAuditConfig::default()).is_empty());
    }

    #[test]
    fn corrupt_json_is_a_nitro040_error() {
        let diags = analyze_metrics_json("not json", "run", &MetricsAuditConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO040");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn valid_json_round_trips_into_findings() {
        let s = snapshot(&[
            ("dispatch.spmv.calls", 100),
            ("dispatch.spmv.fallback", 90),
            ("dispatch.spmv.win.csr", 100),
        ]);
        let diags = analyze_metrics_json(&s.to_json(), "run", &MetricsAuditConfig::default());
        assert!(diags.iter().any(|d| d.code == "NITRO041"));
    }
}
