//! Registration lint: static checks on a `CodeVariant` + `TuningPolicy`
//! pair *before* any tuning work is spent on it.
//!
//! Codes `NITRO010`–`NITRO019`. The checks mirror the mistakes a library
//! author can make through the permissive registration API: indices
//! recorded before their targets exist, colliding names that would make a
//! persisted artifact ambiguous, and policy settings that cannot produce
//! a usable model.

use nitro_core::diag::registry::codes;
use nitro_core::{CodeVariant, Diagnostic};
use nitro_ml::{ClassifierConfig, GridSearch};

/// Lint a registered function against its own tuning policy.
///
/// `training_size` is the number of training inputs about to be used, when
/// known — it powers the plausibility check on kNN's `k` (`NITRO018`).
/// Pass `None` when linting outside a tuning run.
///
/// Returned diagnostics use the function's name as their subject. An
/// empty vector means the registration is clean.
pub fn lint_registration<I: ?Sized>(
    cv: &CodeVariant<I>,
    training_size: Option<usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let subject = cv.name();
    let n_variants = cv.n_variants();
    let variant_names = cv.variant_names();
    let feature_names = cv.feature_names();

    // NITRO010: nothing to select between.
    if n_variants == 0 {
        out.push(Diagnostic::error(
            codes::NITRO010,
            subject,
            "no variants registered",
        ));
    } else if n_variants == 1 {
        out.push(Diagnostic::info(
            codes::NITRO010,
            subject,
            "only one variant registered; tuning is a no-op",
        ));
    }

    // NITRO011 / NITRO012: name collisions make artifacts ambiguous.
    for name in duplicate_names(&variant_names) {
        out.push(Diagnostic::error(
            codes::NITRO011,
            subject,
            format!("duplicate variant name '{name}'"),
        ));
    }
    for name in duplicate_names(&feature_names) {
        out.push(Diagnostic::error(
            codes::NITRO012,
            subject,
            format!("duplicate feature name '{name}'"),
        ));
    }

    // NITRO013 / NITRO014: the constraint-fallback target.
    match cv.default_variant() {
        None => out.push(Diagnostic::warning(
            codes::NITRO013,
            subject,
            "no default variant set; dispatch fails until a model is installed, \
             and constraint fallbacks use variant 0",
        )),
        Some(d) if d >= n_variants => out.push(Diagnostic::error(
            codes::NITRO014,
            subject,
            format!("default variant {d} not registered (have {n_variants})"),
        )),
        Some(_) => {}
    }

    // NITRO015 / NITRO016: the policy's feature subset.
    let n_features = cv.n_features();
    if let Some(subset) = &cv.policy().feature_subset {
        for &idx in subset {
            if idx >= n_features {
                out.push(Diagnostic::error(
                    codes::NITRO015,
                    subject,
                    format!(
                        "feature_subset index {idx} out of bounds (have {n_features} features)"
                    ),
                ));
            }
        }
    }
    if cv.policy().active_features(n_features).is_empty() {
        let msg = if n_features == 0 {
            "no input features registered; a model cannot be trained".to_string()
        } else {
            "feature_subset selects no valid features; a model cannot be trained".to_string()
        };
        out.push(Diagnostic::error(codes::NITRO016, subject, msg));
    }

    // NITRO017: constraints that can never fire.
    for target in cv.constraint_targets() {
        if target >= n_variants {
            out.push(Diagnostic::error(
                codes::NITRO017,
                subject,
                format!("constraint references unknown variant {target} (have {n_variants})"),
            ));
        }
    }

    // NITRO018 / NITRO019: classifier configuration.
    match &cv.policy().classifier {
        ClassifierConfig::Knn { k } => {
            if *k == 0 {
                out.push(Diagnostic::error(
                    codes::NITRO018,
                    subject,
                    "kNN k must be positive",
                ));
            } else if let Some(n) = training_size {
                if *k > n {
                    out.push(Diagnostic::warning(
                        codes::NITRO018,
                        subject,
                        format!(
                            "kNN k={k} exceeds the training-set size {n}; \
                             every query votes over the whole set"
                        ),
                    ));
                }
            }
        }
        ClassifierConfig::Svm {
            c: Some(_),
            gamma: Some(_),
            grid_search: true,
            ..
        } => {
            out.push(Diagnostic::info(
                codes::NITRO019,
                subject,
                "grid search enabled but both C and gamma are fixed; the search is a no-op",
            ));
        }
        _ => {}
    }

    out
}

/// Lint an explicit grid-search configuration (`NITRO019`). The
/// registration linter cannot see the grid the trainer will build, so
/// harnesses that construct a [`GridSearch`] directly run this first.
pub fn lint_grid_search(grid: &GridSearch, subject: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if grid.c_values.is_empty() {
        out.push(Diagnostic::error(
            codes::NITRO019,
            subject,
            "grid search has no candidate C values",
        ));
    }
    if grid.gamma_values.is_empty() {
        out.push(Diagnostic::error(
            codes::NITRO019,
            subject,
            "grid search has no candidate gamma values",
        ));
    }
    if grid.folds < 2 {
        out.push(Diagnostic::error(
            codes::NITRO019,
            subject,
            format!(
                "grid search needs at least 2 cross-validation folds (have {})",
                grid.folds
            ),
        ));
    }
    out
}

/// Names appearing more than once, each reported a single time.
fn duplicate_names(names: &[String]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut reported = std::collections::HashSet::new();
    let mut out = Vec::new();
    for name in names {
        if !seen.insert(name.as_str()) && reported.insert(name.as_str()) {
            out.push(name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::diag::has_errors;
    use nitro_core::{Context, FnConstraint, FnFeature, FnVariant, Severity};

    fn clean_cv() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("b", |&x: &f64| 10.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv
    }

    #[test]
    fn clean_registration_has_no_findings() {
        assert!(lint_registration(&clean_cv(), Some(100)).is_empty());
    }

    #[test]
    fn empty_variant_set_is_nitro010() {
        let ctx = Context::new();
        let cv = CodeVariant::<f64>::new("empty", &ctx);
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO010" && d.severity == Severity::Error));
    }

    #[test]
    fn single_variant_is_informational() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("solo", &ctx);
        cv.add_variant(FnVariant::new("only", |&x: &f64| x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO010" && d.severity == Severity::Info));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn duplicate_names_are_reported_once_each() {
        let mut cv = clean_cv();
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x * 2.0));
        let diags = lint_registration(&cv, None);
        assert_eq!(diags.iter().filter(|d| d.code == "NITRO011").count(), 1);
        assert_eq!(diags.iter().filter(|d| d.code == "NITRO012").count(), 1);
    }

    #[test]
    fn missing_default_warns_and_bad_default_errors() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("d", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO013" && d.severity == Severity::Warning));

        cv.set_default(9);
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO014" && d.severity == Severity::Error));
    }

    #[test]
    fn feature_subset_out_of_bounds_is_nitro015() {
        let mut cv = clean_cv();
        cv.policy_mut().feature_subset = Some(vec![0, 7]);
        let diags = lint_registration(&cv, None);
        assert!(diags.iter().any(|d| d.code == "NITRO015"));
        // Index 0 is still valid, so the active set is non-empty.
        assert!(!diags.iter().any(|d| d.code == "NITRO016"));
    }

    #[test]
    fn no_usable_features_is_nitro016() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("featless", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| x));
        cv.add_variant(FnVariant::new("b", |&x: &f64| -x));
        cv.set_default(0);
        let diags = lint_registration(&cv, None);
        assert!(diags.iter().any(|d| d.code == "NITRO016"));

        let mut cv = clean_cv();
        cv.policy_mut().feature_subset = Some(vec![9]);
        let diags = lint_registration(&cv, None);
        assert!(diags.iter().any(|d| d.code == "NITRO016"));
    }

    #[test]
    fn constraint_on_unknown_variant_is_rejected_at_registration() {
        // Registration now refuses the unknown index with a typed error,
        // so NITRO017 (kept as a defensive invariant in the linter) can
        // no longer be reached through the public API.
        let mut cv = clean_cv();
        let err = cv
            .add_constraint(5, FnConstraint::new("never", |_: &f64| true))
            .unwrap_err();
        assert!(matches!(
            err,
            nitro_core::NitroError::InvalidIndex {
                what: "constraint variant",
                index: 5,
                ..
            }
        ));
        // The failed registration leaves the configuration clean.
        assert!(lint_registration(&cv, None).is_empty());
    }

    #[test]
    fn knn_k_checks_are_nitro018() {
        let mut cv = clean_cv();
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 0 };
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO018" && d.severity == Severity::Error));

        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 50 };
        let diags = lint_registration(&cv, Some(10));
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO018" && d.severity == Severity::Warning));
        // Without a known training size the check cannot fire.
        assert!(lint_registration(&cv, None).is_empty());
    }

    #[test]
    fn pointless_grid_search_is_informational() {
        let mut cv = clean_cv();
        cv.policy_mut().classifier = ClassifierConfig::Svm {
            c: Some(1.0),
            gamma: Some(0.5),
            grid_search: true,
            cache_bytes: None,
        };
        let diags = lint_registration(&cv, None);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO019" && d.severity == Severity::Info));
    }

    #[test]
    fn empty_grids_are_errors() {
        let grid = GridSearch {
            c_values: vec![],
            gamma_values: vec![],
            folds: 1,
            ..Default::default()
        };
        let diags = lint_grid_search(&grid, "toy");
        assert_eq!(diags.iter().filter(|d| d.code == "NITRO019").count(), 3);
        assert!(has_errors(&diags));
        assert!(lint_grid_search(&GridSearch::default(), "toy").is_empty());
    }
}
