//! Model-artifact audit: validates a persisted [`ModelArtifact`] beyond
//! the structural checks `ModelArtifact::validate` performs.
//!
//! Codes `NITRO001` (unreadable JSON) and `NITRO020`–`NITRO029`. Where
//! `validate` answers "does this artifact belong to that function?", the
//! auditor answers "is the trained model inside it numerically sane?" —
//! NaN contamination, degenerate scaling ranges, labels outside the
//! variant range and mis-fitted Platt calibrations all pass a JSON round
//! trip silently and only surface later as nonsense predictions.

use nitro_core::diag::registry::codes;
use nitro_core::{CodeVariant, Diagnostic, ModelArtifact, TrainedModel, MODEL_SCHEMA_VERSION};
use nitro_ml::Scaler;

/// Solver-tolerance multiple above which a KKT residual is reported
/// (`NITRO029`). The SMO solver stops at ~1e-3; artifacts straight out of
/// training sit well below this bound.
const KKT_TOLERANCE: f64 = 1e-2;

/// Audit an artifact in isolation (no registration available).
///
/// Checks the schema version, the scaler fitted ranges, every retained
/// support vector / dual coefficient, the Platt calibrations and the
/// class-label range implied by `variant_names`.
pub fn audit_artifact(artifact: &ModelArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let subject = artifact.function.as_str();

    // NITRO020: schema compatibility.
    if artifact.schema_version == 0 {
        out.push(Diagnostic::warning(
            codes::NITRO020,
            subject,
            "legacy artifact without a schema_version field; re-save to upgrade",
        ));
    } else if artifact.schema_version > MODEL_SCHEMA_VERSION {
        out.push(Diagnostic::error(
            codes::NITRO020,
            subject,
            format!(
                "artifact schema version {} is newer than this build supports ({})",
                artifact.schema_version, MODEL_SCHEMA_VERSION
            ),
        ));
    }

    // NITRO022 (arity half): the model's input width must match the
    // active feature set the policy derives from the artifact's own
    // feature list.
    let active = artifact
        .policy
        .active_features(artifact.feature_names.len());
    let n_variants = artifact.variant_names.len();
    audit_model(&artifact.model, subject, active.len(), n_variants, &mut out);
    out
}

/// Audit an artifact against a live registration: everything
/// [`audit_artifact`] checks, plus the name-list comparisons
/// (`NITRO021`, `NITRO022`).
pub fn audit_artifact_against<I: ?Sized>(
    artifact: &ModelArtifact,
    cv: &CodeVariant<I>,
) -> Vec<Diagnostic> {
    let mut out = audit_artifact(artifact);
    let subject = artifact.function.as_str();

    if artifact.function != cv.name() {
        out.push(Diagnostic::error(
            codes::NITRO021,
            subject,
            format!(
                "artifact is for '{}', not '{}'",
                artifact.function,
                cv.name()
            ),
        ));
    }
    let registered = cv.variant_names();
    if artifact.variant_names != registered {
        out.push(Diagnostic::error(
            codes::NITRO021,
            subject,
            format!(
                "variant lists differ: trained {:?} vs registered {:?}",
                artifact.variant_names, registered
            ),
        ));
    }
    let registered = cv.feature_names();
    if artifact.feature_names != registered {
        out.push(Diagnostic::error(
            codes::NITRO022,
            subject,
            format!(
                "feature lists differ: trained {:?} vs registered {:?}",
                artifact.feature_names, registered
            ),
        ));
    }
    out
}

/// Parse-then-audit an artifact's JSON text. An unparseable payload is a
/// single `NITRO001` error; otherwise this is [`audit_artifact`].
pub fn audit_artifact_json(json: &str) -> Vec<Diagnostic> {
    match ModelArtifact::from_json(json) {
        Ok(artifact) => audit_artifact(&artifact),
        Err(e) => vec![Diagnostic::error(
            codes::NITRO001,
            "<artifact>",
            format!("artifact JSON is unreadable: {e}"),
        )],
    }
}

/// The numeric-invariant checks shared by both entry points.
fn audit_model(
    model: &TrainedModel,
    subject: &str,
    expected_dim: usize,
    n_variants: usize,
    out: &mut Vec<Diagnostic>,
) {
    match model {
        TrainedModel::Svm {
            scaler, model, c, ..
        } => {
            audit_scaler(scaler, subject, expected_dim, out);
            if model.n_classes() > n_variants {
                out.push(Diagnostic::error(
                    codes::NITRO027,
                    subject,
                    format!(
                        "model separates {} classes but only {} variants are named",
                        model.n_classes(),
                        n_variants
                    ),
                ));
            }
            for (m, machine) in model.machines().iter().enumerate() {
                for (pos_or_neg, label) in [("+1", machine.pos), ("-1", machine.neg)] {
                    if label >= n_variants {
                        out.push(Diagnostic::error(
                            codes::NITRO027,
                            subject,
                            format!(
                                "pair machine {m} maps class {label} to {pos_or_neg} \
                                 but only {n_variants} variants are named"
                            ),
                        ));
                    }
                }
                let bad_sv = machine
                    .svm
                    .support_vectors
                    .iter()
                    .filter(|sv| sv.iter().any(|v| !v.is_finite()))
                    .count();
                if bad_sv > 0 {
                    out.push(Diagnostic::error(
                        codes::NITRO023,
                        subject,
                        format!(
                            "pair machine {m} has {bad_sv} support vector(s) with NaN/Inf entries"
                        ),
                    ));
                }
                if machine.svm.coef.iter().any(|v| !v.is_finite()) || !machine.svm.rho.is_finite() {
                    out.push(Diagnostic::error(
                        codes::NITRO024,
                        subject,
                        format!("pair machine {m} has non-finite dual coefficients or bias"),
                    ));
                } else {
                    // KKT only makes sense over finite coefficients.
                    let residual = machine.svm.kkt_residual(*c);
                    if residual > KKT_TOLERANCE {
                        out.push(Diagnostic::warning(
                            codes::NITRO029,
                            subject,
                            format!(
                                "pair machine {m} violates KKT conditions by {residual:.3e} \
                                 (solver tolerance is ~1e-3); the artifact may be corrupt"
                            ),
                        ));
                    }
                }
                if !machine.platt.a.is_finite() || !machine.platt.b.is_finite() {
                    out.push(Diagnostic::error(
                        codes::NITRO028,
                        subject,
                        format!("pair machine {m} has non-finite Platt coefficients"),
                    ));
                } else if machine.platt.a > 0.0 {
                    out.push(Diagnostic::warning(
                        codes::NITRO028,
                        subject,
                        format!(
                            "pair machine {m} has a positive Platt slope ({:.3}); \
                             its probabilities decrease with the decision value",
                            machine.platt.a
                        ),
                    ));
                }
            }
        }
        TrainedModel::Knn { scaler, model } => {
            audit_scaler(scaler, subject, expected_dim, out);
            let bad: Vec<usize> = model
                .labels()
                .iter()
                .copied()
                .filter(|&l| l >= n_variants)
                .collect();
            if !bad.is_empty() {
                out.push(Diagnostic::error(
                    codes::NITRO027,
                    subject,
                    format!(
                        "{} memorized label(s) outside the variant range (first: {}, have {n_variants})",
                        bad.len(),
                        bad[0]
                    ),
                ));
            }
            if model.k() > model.n_points() {
                out.push(Diagnostic::warning(
                    codes::NITRO018,
                    subject,
                    format!(
                        "kNN k={} exceeds the {} memorized points; every query votes over the whole set",
                        model.k(),
                        model.n_points()
                    ),
                ));
            }
        }
        // Trees and forests store no feature scaling and only emit labels
        // seen in training; their training path cannot fabricate
        // out-of-range labels, so there is nothing to audit yet.
        TrainedModel::Tree { .. } | TrainedModel::Forest { .. } => {}
    }
}

fn audit_scaler(scaler: &Scaler, subject: &str, expected_dim: usize, out: &mut Vec<Diagnostic>) {
    if scaler.dim() != expected_dim {
        out.push(Diagnostic::error(
            codes::NITRO022,
            subject,
            format!(
                "scaler was fitted on {} feature(s) but the policy's active set has {}",
                scaler.dim(),
                expected_dim
            ),
        ));
    }
    for (d, (&lo, &hi)) in scaler.mins().iter().zip(scaler.maxs()).enumerate() {
        if !lo.is_finite() || !hi.is_finite() {
            out.push(Diagnostic::error(
                codes::NITRO025,
                subject,
                format!("scaling range for feature {d} is non-finite ({lo}..{hi})"),
            ));
        } else if lo == hi {
            out.push(Diagnostic::warning(
                codes::NITRO026,
                subject,
                format!(
                    "feature {d} was constant in training ({lo}); \
                     it carries no signal and scales every input to 0"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::diag::has_errors;
    use nitro_core::{Severity, TuningPolicy};
    use nitro_ml::{ClassifierConfig, Dataset};

    fn svm_artifact() -> ModelArtifact {
        let data = Dataset::from_parts(
            vec![
                vec![0.0, 5.0],
                vec![1.0, 4.0],
                vec![6.0, 1.0],
                vec![7.0, 0.0],
            ],
            vec![0, 0, 1, 1],
        );
        let model = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: "spmv".into(),
            variant_names: vec!["csr".into(), "dia".into()],
            feature_names: vec!["nnz".into(), "rows".into()],
            policy: TuningPolicy::default(),
            model,
        }
    }

    fn knn_artifact() -> ModelArtifact {
        let data = Dataset::from_parts(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 1]);
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: "sort".into(),
            variant_names: vec!["merge".into(), "radix".into()],
            feature_names: vec!["n".into()],
            policy: TuningPolicy::default(),
            model: TrainedModel::train(&ClassifierConfig::Knn { k: 2 }, &data),
        }
    }

    #[test]
    fn fresh_artifacts_audit_clean() {
        assert!(audit_artifact(&svm_artifact()).is_empty());
        assert!(audit_artifact(&knn_artifact()).is_empty());
    }

    #[test]
    fn legacy_schema_warns_and_newer_errors() {
        let mut a = svm_artifact();
        a.schema_version = 0;
        let diags = audit_artifact(&a);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO020" && d.severity == Severity::Warning));

        a.schema_version = MODEL_SCHEMA_VERSION + 3;
        let diags = audit_artifact(&a);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO020" && d.severity == Severity::Error));
    }

    /// Corrupt one field of an artifact's compact JSON and reload it.
    /// `1e999` overflows f64 parsing to infinity, which is how non-finite
    /// values sneak past a JSON round trip.
    fn corrupt(a: &ModelArtifact, needle: &str, replacement: &str) -> ModelArtifact {
        let json = serde_json::to_string(a).unwrap();
        let poisoned = json.replacen(needle, replacement, 1);
        assert_ne!(json, poisoned, "corruption needle '{needle}' not found");
        ModelArtifact::from_json(&poisoned).unwrap()
    }

    #[test]
    fn infinite_support_vector_is_nitro023() {
        let back = corrupt(
            &svm_artifact(),
            "\"support_vectors\":[[",
            "\"support_vectors\":[[1e999,",
        );
        let diags = audit_artifact(&back);
        assert!(
            diags.iter().any(|d| d.code == "NITRO023"),
            "expected NITRO023 for a non-finite support vector, got {diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn infinite_rho_is_nitro024() {
        let back = corrupt(&svm_artifact(), "\"rho\":", "\"rho\":1e999,\"_ignored\":");
        let diags = audit_artifact(&back);
        assert!(
            diags.iter().any(|d| d.code == "NITRO024"),
            "expected NITRO024 for infinite rho, got {diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn out_of_range_knn_label_is_nitro027() {
        let data = Dataset::from_parts(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 2]);
        let mut a = knn_artifact();
        a.model = TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data);
        // Three classes memorized but only two variant names.
        let diags = audit_artifact(&a);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO027" && d.severity == Severity::Error));
    }

    #[test]
    fn scaler_arity_mismatch_is_nitro022() {
        let mut a = svm_artifact();
        // Claim a third feature the scaler never saw.
        a.feature_names.push("cols".into());
        let diags = audit_artifact(&a);
        assert!(diags.iter().any(|d| d.code == "NITRO022"));
    }

    #[test]
    fn constant_training_feature_is_nitro026() {
        let data = Dataset::from_parts(
            vec![
                vec![1.0, 5.0],
                vec![1.0, 6.0],
                vec![1.0, 7.0],
                vec![1.0, 8.0],
            ],
            vec![0, 0, 1, 1],
        );
        let mut a = svm_artifact();
        a.model = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        let diags = audit_artifact(&a);
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO026" && d.severity == Severity::Warning));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn unreadable_json_is_nitro001() {
        let json = svm_artifact().to_json().unwrap();
        let truncated = &json[..json.len() / 2];
        let diags = audit_artifact_json(truncated);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO001");
        assert_eq!(diags[0].severity, Severity::Error);

        assert!(audit_artifact_json(&json).is_empty());
    }

    #[test]
    fn against_registration_reports_name_mismatches() {
        use nitro_core::{Context, FnFeature, FnVariant};
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("spmv", &ctx);
        cv.add_variant(FnVariant::new("csr", |&x: &f64| x));
        cv.add_variant(FnVariant::new("ell", |&x: &f64| x)); // artifact says "dia"
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("nnz", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("cols", |&x: &f64| x)); // artifact says "rows"

        let diags = audit_artifact_against(&svm_artifact(), &cv);
        assert!(diags.iter().any(|d| d.code == "NITRO021"));
        assert!(diags.iter().any(|d| d.code == "NITRO022"));
    }
}
