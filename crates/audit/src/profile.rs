//! Profile-table / training-set analysis.
//!
//! Codes `NITRO030`–`NITRO039`. These findings are never fatal — a
//! skewed training collection still tunes — but each one flags a way the
//! resulting model can silently underperform: variants that never win
//! (wasted profiling and a class the model can never learn), feature
//! columns with no signal, near-tie labels that teach the classifier
//! noise, and class imbalance that reduces tuning to "always pick the
//! majority variant".
//!
//! The analyzer reads a [`ProfileView`] — a borrowed slice view of the
//! profiling data — so it works on `nitro-tuner`'s `ProfileTable` (which
//! depends on this crate's consumers, not vice versa) as well as on any
//! ad-hoc dataset a harness assembles.

use nitro_core::diag::registry::codes;
use nitro_core::{Diagnostic, Objective};

/// Borrowed view of exhaustive-profiling results.
///
/// `costs[input][variant]` is the objective value (with
/// [`Objective::worst`] marking vetoed/failed runs) and
/// `features[input]` the feature vector, exactly as `ProfileTable`
/// stores them.
#[derive(Debug, Clone, Copy)]
pub struct ProfileView<'a> {
    /// Function name used as the diagnostics' subject.
    pub function: &'a str,
    /// Objective direction the costs were recorded under.
    pub objective: Objective,
    /// Variant names, in index order.
    pub variant_names: &'a [String],
    /// Feature names, in vector order.
    pub feature_names: &'a [String],
    /// Per-input, per-variant objective values.
    pub costs: &'a [Vec<f64>],
    /// Per-input feature vectors.
    pub features: &'a [Vec<f64>],
}

/// Thresholds for the profile analyzer.
#[derive(Debug, Clone, Copy)]
pub struct ProfileAuditConfig {
    /// Relative win margin below which a label is considered decided by
    /// noise (`NITRO034`): the best and second-best variant differ by
    /// less than this fraction of the best cost.
    pub noise_floor: f64,
    /// Largest share of the labels one class may take before the set is
    /// flagged as severely imbalanced (`NITRO033`).
    pub imbalance_ratio: f64,
}

impl Default for ProfileAuditConfig {
    fn default() -> Self {
        Self {
            noise_floor: 0.02,
            imbalance_ratio: 0.9,
        }
    }
}

/// Analyze a profile table for training-set pathologies.
pub fn analyze_profile(view: &ProfileView<'_>, config: &ProfileAuditConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let subject = view.function;
    let n_inputs = view.costs.len();
    let n_variants = view.variant_names.len();
    if n_inputs == 0 || n_variants == 0 {
        return out;
    }
    let worst = view.objective.worst();

    // Best variant per input (None when every variant failed).
    let labels: Vec<Option<usize>> = view
        .costs
        .iter()
        .map(|row| {
            let mut best: Option<(usize, f64)> = None;
            for (v, &c) in row.iter().enumerate() {
                if c == worst || c.is_nan() {
                    continue;
                }
                if best.is_none_or(|(_, bc)| view.objective.better(c, bc)) {
                    best = Some((v, c));
                }
            }
            best.map(|(v, _)| v)
        })
        .collect();

    // NITRO030: dead variants — profiled on every input, best on none.
    let mut wins = vec![0usize; n_variants];
    for label in labels.iter().flatten() {
        wins[*label] += 1;
    }
    for (v, &w) in wins.iter().enumerate() {
        if w == 0 {
            out.push(Diagnostic::warning(
                codes::NITRO030,
                subject,
                format!(
                    "variant '{}' is never best on any of the {n_inputs} profiled inputs; \
                     the model cannot learn to select it",
                    view.variant_names[v]
                ),
            ));
        }
    }

    // NITRO031 / NITRO032: feature columns with no or duplicated signal.
    let n_features = view.feature_names.len();
    let column = |j: usize| view.features.iter().map(move |row| row[j]);
    for j in 0..n_features {
        let first = view.features[0][j];
        if column(j).all(|v| v == first) {
            out.push(Diagnostic::warning(
                codes::NITRO031,
                subject,
                format!(
                    "feature '{}' is constant ({first}) across all profiled inputs",
                    view.feature_names[j]
                ),
            ));
        }
    }
    for a in 0..n_features {
        for b in (a + 1)..n_features {
            if column(a).zip(column(b)).all(|(x, y)| x == y) {
                out.push(Diagnostic::warning(
                    codes::NITRO032,
                    subject,
                    format!(
                        "features '{}' and '{}' are identical on every profiled input; \
                         one of them is redundant",
                        view.feature_names[a], view.feature_names[b]
                    ),
                ));
            }
        }
    }

    // NITRO033: severe class imbalance.
    let labeled = labels.iter().flatten().count();
    if labeled >= 10 && n_variants > 1 {
        if let Some((v, &w)) = wins.iter().enumerate().max_by_key(|(_, &w)| w) {
            let share = w as f64 / labeled as f64;
            if share > config.imbalance_ratio {
                out.push(Diagnostic::warning(
                    codes::NITRO033,
                    subject,
                    format!(
                        "variant '{}' is best on {w} of {labeled} labeled inputs ({:.0}%); \
                         the training set barely exercises the alternatives",
                        view.variant_names[v],
                        share * 100.0
                    ),
                ));
            }
        }
    }

    // NITRO034: labels decided within the noise floor.
    let mut noisy = 0usize;
    for (row, label) in view.costs.iter().zip(&labels) {
        let Some(best) = *label else { continue };
        let best_cost = row[best];
        let second = row
            .iter()
            .enumerate()
            .filter(|&(v, &c)| v != best && c != worst && !c.is_nan())
            .map(|(_, &c)| c)
            .fold(None::<f64>, |acc, c| {
                Some(match acc {
                    Some(s) if view.objective.better(s, c) => s,
                    _ => c,
                })
            });
        if let Some(second) = second {
            // Margin relative to the best cost's magnitude.
            let denom = best_cost.abs().max(f64::MIN_POSITIVE);
            if (second - best_cost).abs() / denom < config.noise_floor {
                noisy += 1;
            }
        }
    }
    if noisy > 0 {
        out.push(Diagnostic::warning(
            codes::NITRO034,
            subject,
            format!(
                "{noisy} of {labeled} labels are decided by a win margin below \
                 {:.1}% of the best cost; those labels may be measurement noise",
                config.noise_floor * 100.0
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// `(variant_names, feature_names, costs, features)` backing a view.
    type ViewData = (Vec<String>, Vec<String>, Vec<Vec<f64>>, Vec<Vec<f64>>);

    /// Two variants, clear winners alternating, two informative features.
    fn clean_view_data() -> ViewData {
        let variants = names(&["a", "b"]);
        let features = names(&["x", "y"]);
        let mut costs = Vec::new();
        let mut feats = Vec::new();
        for i in 0..20 {
            let x = i as f64;
            if i % 2 == 0 {
                costs.push(vec![1.0, 2.0]);
            } else {
                costs.push(vec![2.0, 1.0]);
            }
            feats.push(vec![x, 100.0 - x]);
        }
        (variants, features, costs, feats)
    }

    fn view<'a>(
        variants: &'a [String],
        features: &'a [String],
        costs: &'a [Vec<f64>],
        feats: &'a [Vec<f64>],
    ) -> ProfileView<'a> {
        ProfileView {
            function: "toy",
            objective: Objective::Minimize,
            variant_names: variants,
            feature_names: features,
            costs,
            features: feats,
        }
    }

    #[test]
    fn clean_profile_has_no_findings() {
        let (v, f, c, x) = clean_view_data();
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_variant_is_nitro030() {
        let (v, f, mut c, x) = clean_view_data();
        for row in c.iter_mut() {
            row[1] = row[0] + 10.0; // variant b never wins
        }
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO030" && d.message.contains("'b'")));
        // A variant that never wins also means total imbalance.
        assert!(diags.iter().any(|d| d.code == "NITRO033"));
    }

    #[test]
    fn constant_feature_is_nitro031() {
        let (v, f, c, mut x) = clean_view_data();
        for row in x.iter_mut() {
            row[1] = 7.0;
        }
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO031" && d.message.contains("'y'")));
    }

    #[test]
    fn duplicate_feature_columns_are_nitro032() {
        let (v, f, c, mut x) = clean_view_data();
        for row in x.iter_mut() {
            row[1] = row[0];
        }
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags.iter().any(|d| d.code == "NITRO032"));
        // Duplicated but not constant: no NITRO031.
        assert!(!diags.iter().any(|d| d.code == "NITRO031"));
    }

    #[test]
    fn imbalance_is_nitro033() {
        let (v, f, mut c, x) = clean_view_data();
        // Variant b wins exactly once: 19/20 = 95% > 90%.
        for (i, row) in c.iter_mut().enumerate() {
            *row = if i == 0 {
                vec![2.0, 1.0]
            } else {
                vec![1.0, 2.0]
            };
        }
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO033" && d.message.contains("'a'")));
        assert!(!diags.iter().any(|d| d.code == "NITRO030"));
    }

    #[test]
    fn noisy_margins_are_nitro034() {
        let (v, f, mut c, x) = clean_view_data();
        for row in c.iter_mut() {
            *row = vec![1.000, 1.001]; // 0.1% margin, below the 2% floor
        }
        let diags = analyze_profile(&view(&v, &f, &c, &x), &ProfileAuditConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.code == "NITRO034" && d.message.contains("20 of 20")));

        // A larger floor flags clean data too; a tiny floor flags nothing.
        let (v, f, c, x) = clean_view_data();
        let strict = ProfileAuditConfig {
            noise_floor: 2.0,
            ..Default::default()
        };
        let diags = analyze_profile(&view(&v, &f, &c, &x), &strict);
        assert!(diags.iter().any(|d| d.code == "NITRO034"));
    }

    #[test]
    fn failed_variants_do_not_count_as_margins() {
        let variants = names(&["a", "b"]);
        let features = names(&["x"]);
        // Variant b always fails: no second cost, so no NITRO034; but b is
        // dead (NITRO030).
        let costs: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1.0 + i as f64, f64::INFINITY])
            .collect();
        let feats: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let diags = analyze_profile(
            &view(&variants, &features, &costs, &feats),
            &ProfileAuditConfig::default(),
        );
        assert!(diags.iter().any(|d| d.code == "NITRO030"));
        assert!(!diags.iter().any(|d| d.code == "NITRO034"));
    }

    #[test]
    fn empty_table_is_silent() {
        let variants = names(&["a"]);
        let features = names(&["x"]);
        let diags = analyze_profile(
            &view(&variants, &features, &[], &[]),
            &ProfileAuditConfig::default(),
        );
        assert!(diags.is_empty());
    }
}
