//! Whole-configuration analysis passes over the [`TuningGraph`] IR
//! (`NITRO080`–`NITRO086`).
//!
//! Each pass is a pure function of the graph. The satisfiability-backed
//! passes (`NITRO080`, `NITRO081`, `NITRO086`) only make claims the
//! [`crate::sat`] engine can *prove* — a budget-blown or opaque
//! constraint silently suppresses the finding rather than risking a
//! false "statically dead" verdict.

use nitro_core::diag::registry::codes;
use nitro_core::{Diagnostic, MODEL_SCHEMA_VERSION};

use crate::ir::{ConstraintExpr, TuningGraph};
use crate::sat::{self, Sat};

/// Run every whole-configuration pass over the graph.
pub fn analyze_graph(g: &TuningGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let dead = dead_variants(g, &mut out);
    shadowed_constraints(g, &mut out);
    feature_dataflow(g, &mut out);
    cascade_termination(g, &mut out);
    version_compatibility(g, &mut out);
    model_label_exhaustiveness(g, &dead, &mut out);
    out
}

/// NITRO080: a variant whose predicate constraints are jointly
/// unsatisfiable can never run — dispatch will always veto it. Opaque
/// constraints on the same variant cannot rescue it (conjoining more
/// conditions never grows an empty set), so the proof stands regardless.
/// Returns the set of proven-dead variant indices for the later passes.
fn dead_variants(g: &TuningGraph, out: &mut Vec<Diagnostic>) -> Vec<usize> {
    let mut dead = Vec::new();
    for v in g.constrained_variants() {
        let predicates: Vec<_> = g
            .constraints
            .iter()
            .filter(|c| c.variant == v)
            .filter_map(|c| match &c.expr {
                ConstraintExpr::Predicate(p) => Some(p),
                ConstraintExpr::Opaque => None,
            })
            .collect();
        if predicates.is_empty() {
            continue;
        }
        if sat::check(&predicates) == Sat::Unsatisfiable {
            let name = variant_name(g, v);
            out.push(Diagnostic::error(
                codes::NITRO080,
                &g.function,
                format!(
                    "variant {v} ('{name}') is statically dead: its predicate \
                     constraints are unsatisfiable over the feature domain"
                ),
            ));
            dead.push(v);
        }
    }
    dead
}

/// NITRO081: constraint A on a variant is shadowed when another
/// constraint B on the same variant implies it — every input B admits, A
/// admits too, so A never changes the veto outcome. Mutually-equivalent
/// pairs report only the later registration.
fn shadowed_constraints(g: &TuningGraph, out: &mut Vec<Diagnostic>) {
    for (ai, a) in g.constraints.iter().enumerate() {
        let ConstraintExpr::Predicate(pa) = &a.expr else {
            continue;
        };
        for (bi, b) in g.constraints.iter().enumerate() {
            if ai == bi || a.variant != b.variant {
                continue;
            }
            let ConstraintExpr::Predicate(pb) = &b.expr else {
                continue;
            };
            if !sat::implies(pb, pa) {
                continue;
            }
            // When A and B are equivalent both directions hold; report
            // only the later-registered one to avoid a symmetric pair.
            if sat::implies(pa, pb) && ai < bi {
                continue;
            }
            out.push(Diagnostic::warning(
                codes::NITRO081,
                &g.function,
                format!(
                    "constraint '{}' on variant {} is shadowed: '{}' already \
                     implies it, so it never changes the veto outcome",
                    a.name, a.variant, b.name
                ),
            ));
            break; // one report per shadowed constraint
        }
    }
}

/// NITRO082 / NITRO083: feature dataflow. A feature is *consulted* when
/// the policy feeds it to the model (active) or a predicate references
/// it. NITRO082 flags consulted features that are constant across the
/// whole profile table (they carry no signal); NITRO083 flags registered
/// features nothing consults (they cost registration and evaluation for
/// nothing).
fn feature_dataflow(g: &TuningGraph, out: &mut Vec<Diagnostic>) {
    let referenced = g.predicate_features();

    if let Some(profile) = &g.profile {
        if profile.rows.len() >= 2 {
            for (col, &feature) in profile.columns.iter().enumerate() {
                let first = profile.rows[0].get(col).copied();
                let Some(first) = first else { continue };
                let constant = profile
                    .rows
                    .iter()
                    .all(|r| r.get(col).copied() == Some(first));
                if !constant {
                    continue;
                }
                let active = g.features.get(feature).is_some_and(|f| f.active);
                let in_predicate = referenced.contains(&feature);
                if !active && !in_predicate {
                    continue; // nothing consults it; NITRO083's business
                }
                let consumers = match (active, in_predicate) {
                    (true, true) => "the model and a predicate",
                    (true, false) => "the model",
                    _ => "a predicate",
                };
                out.push(Diagnostic::warning(
                    codes::NITRO082,
                    &g.function,
                    format!(
                        "feature {feature} ('{}') is constant ({first}) across \
                         all {} profiled inputs yet consulted by {consumers}",
                        feature_name(g, feature),
                        profile.rows.len(),
                    ),
                ));
            }
        }
    }

    for (i, f) in g.features.iter().enumerate() {
        if !f.active && !referenced.contains(&i) {
            out.push(Diagnostic::warning(
                codes::NITRO083,
                &g.function,
                format!(
                    "feature {i} ('{}') is never read: outside the policy's \
                     active subset and referenced by no predicate",
                    f.name
                ),
            ));
        }
    }
}

/// NITRO084: the fallback cascade must terminate. With any constraint
/// present, a veto can happen at dispatch time, so there must be a
/// terminal default and every constrained variant must reach it through
/// the cascade without cycles.
fn cascade_termination(g: &TuningGraph, out: &mut Vec<Diagnostic>) {
    let n = g.variants.len();
    let constrained = g.constrained_variants();
    if constrained.is_empty() && g.cascade.is_empty() {
        return;
    }

    for e in &g.cascade {
        if e.from >= n || e.to >= n {
            out.push(Diagnostic::error(
                codes::NITRO084,
                &g.function,
                format!(
                    "fallback cascade edge {} -> {} references an unregistered \
                     variant (have {n})",
                    e.from, e.to
                ),
            ));
            return;
        }
    }

    let Some(default) = g.default_variant() else {
        if !constrained.is_empty() {
            out.push(Diagnostic::error(
                codes::NITRO084,
                &g.function,
                "fallback cascade broken: constraints can veto at dispatch \
                 time but no terminal default variant is set",
            ));
        }
        return;
    };

    // Cycle detection over the cascade edges (iterative three-color DFS).
    let mut adj = vec![Vec::new(); n];
    for e in &g.cascade {
        adj[e.from].push(e.to);
    }
    if let Some(at) = find_cycle(&adj) {
        out.push(Diagnostic::error(
            codes::NITRO084,
            &g.function,
            format!(
                "fallback cascade broken: cycle through variant {at} \
                 ('{}') — a veto storm would never terminate",
                variant_name(g, at)
            ),
        ));
        return;
    }

    // Every constrained variant must reach the terminal default.
    for v in constrained {
        if v == default {
            continue; // dispatch never re-checks the default's constraints
        }
        if !reaches(&adj, v, default) {
            out.push(Diagnostic::error(
                codes::NITRO084,
                &g.function,
                format!(
                    "fallback cascade broken: variant {v} ('{}') has \
                     constraints but no cascade path to the terminal default \
                     variant {default}",
                    variant_name(g, v)
                ),
            ));
        }
    }
}

/// NITRO085: every stored artifact version must be loadable against the
/// live registration: same function, same variant names, same feature
/// schema. Mismatches on the latest (live) version are errors — that is
/// the artifact `load_latest` would install; historical versions only
/// warn, they surface as rollback hazards.
fn version_compatibility(g: &TuningGraph, out: &mut Vec<Diagnostic>) {
    let live_variants: Vec<&str> = g.variants.iter().map(|v| v.name.as_str()).collect();
    let live_features: Vec<&str> = g.features.iter().map(|f| f.name.as_str()).collect();
    for ver in &g.versions {
        let mut problems = Vec::new();
        if ver.function != g.function {
            problems.push(format!(
                "function '{}' does not match live '{}'",
                ver.function, g.function
            ));
        }
        if ver.schema_version > MODEL_SCHEMA_VERSION {
            problems.push(format!(
                "schema version {} is newer than the supported {}",
                ver.schema_version, MODEL_SCHEMA_VERSION
            ));
        }
        if ver.variant_names != live_variants {
            problems.push(format!(
                "variant names {:?} do not match live {:?}",
                ver.variant_names, live_variants
            ));
        }
        if ver.feature_names.len() != live_features.len() {
            problems.push(format!(
                "feature arity {} does not match live {}",
                ver.feature_names.len(),
                live_features.len()
            ));
        } else if ver.feature_names != live_features {
            problems.push(format!(
                "feature names {:?} do not match live {:?}",
                ver.feature_names, live_features
            ));
        }
        if problems.is_empty() {
            continue;
        }
        let msg = format!(
            "stored version {} is incompatible with the live registration: {}",
            ver.version,
            problems.join("; ")
        );
        out.push(if ver.is_latest {
            Diagnostic::error(codes::NITRO085, &g.function, msg)
        } else {
            Diagnostic::warning(codes::NITRO085, &g.function, msg)
        });
    }
}

/// NITRO086: every class label the model can emit must map to a live,
/// non-dead variant — otherwise a prediction lands on a variant that is
/// unregistered or that its own constraints immediately veto.
fn model_label_exhaustiveness(g: &TuningGraph, dead: &[usize], out: &mut Vec<Diagnostic>) {
    let Some(model) = &g.model else {
        return;
    };
    let n = g.variants.len();
    for &class in &model.classes {
        if class >= n {
            out.push(Diagnostic::error(
                codes::NITRO086,
                &g.function,
                format!(
                    "model-label gap: the {} model can emit class {class} but \
                     only {n} variants are registered",
                    model.kind
                ),
            ));
        } else if dead.contains(&class) {
            out.push(Diagnostic::error(
                codes::NITRO086,
                &g.function,
                format!(
                    "model-label gap: the {} model can emit class {class} \
                     ('{}'), a statically dead variant — every such \
                     prediction falls through to the default",
                    model.kind,
                    variant_name(g, class)
                ),
            ));
        }
    }
}

/// First node found on a cycle, if the edge set has one.
fn find_cycle(adj: &[Vec<usize>]) -> Option<usize> {
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; adj.len()];
    for start in 0..adj.len() {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit edge-iterator stack.
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&(node, next)) = stack.last() {
            if next < adj[node].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let child = adj[node][next];
                match color[child] {
                    0 => {
                        color[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return Some(child),
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Is `to` reachable from `from` over the edge set?
fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(node) = stack.pop() {
        for &next in &adj[node] {
            if next == to {
                return true;
            }
            if !seen[next] {
                seen[next] = true;
                stack.push(next);
            }
        }
    }
    false
}

fn variant_name(g: &TuningGraph, v: usize) -> &str {
    g.variants.get(v).map_or("?", |n| n.name.as_str())
}

fn feature_name(g: &TuningGraph, f: usize) -> &str {
    g.features.get(f).map_or("?", |n| n.name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{
        CascadeEdge, ConstraintNode, FeatureNode, ModelNode, TuningGraph, VariantNode, VersionNode,
    };
    use nitro_core::{Predicate, Severity};

    /// A clean two-variant graph the mutation tests then break.
    fn base_graph() -> TuningGraph {
        TuningGraph {
            function: "toy".into(),
            variants: vec![
                VariantNode {
                    name: "a".into(),
                    is_default: true,
                },
                VariantNode {
                    name: "b".into(),
                    is_default: false,
                },
            ],
            features: vec![
                FeatureNode {
                    name: "x".into(),
                    active: true,
                },
                FeatureNode {
                    name: "y".into(),
                    active: true,
                },
            ],
            constraints: vec![ConstraintNode {
                variant: 1,
                name: "small".into(),
                expr: ConstraintExpr::Predicate(Predicate::le(0, 8.0)),
            }],
            model: Some(ModelNode {
                kind: "knn".into(),
                classes: vec![0, 1],
            }),
            cascade: vec![CascadeEdge { from: 1, to: 0 }],
            versions: vec![VersionNode {
                version: 1,
                is_latest: true,
                function: "toy".into(),
                schema_version: MODEL_SCHEMA_VERSION,
                variant_names: vec!["a".into(), "b".into()],
                feature_names: vec!["x".into(), "y".into()],
            }],
            profile: Some(crate::ir::ProfileData {
                columns: vec![0, 1],
                rows: vec![vec![1.0, 5.0], vec![2.0, 6.0], vec![3.0, 7.0]],
            }),
        }
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_graph_has_no_findings() {
        assert!(analyze_graph(&base_graph()).is_empty());
    }

    #[test]
    fn unsatisfiable_constraints_fire_nitro080() {
        let mut g = base_graph();
        g.constraints.push(ConstraintNode {
            variant: 1,
            name: "big".into(),
            expr: ConstraintExpr::Predicate(Predicate::gt(0, 9.0)),
        });
        let diags = analyze_graph(&g);
        assert!(codes_of(&diags).contains(&"NITRO080"), "{diags:?}");
        // The dead variant is a model class, so NITRO086 fires too.
        assert!(codes_of(&diags).contains(&"NITRO086"));
    }

    #[test]
    fn opaque_constraints_block_the_dead_proof() {
        let mut g = base_graph();
        g.constraints[0].expr = ConstraintExpr::Opaque;
        g.constraints.push(ConstraintNode {
            variant: 1,
            name: "other".into(),
            expr: ConstraintExpr::Opaque,
        });
        assert!(analyze_graph(&g).is_empty());
    }

    #[test]
    fn subsumed_constraint_fires_nitro081() {
        let mut g = base_graph();
        // 'tight' implies the existing 'small' (x <= 8): shadowed.
        g.constraints.push(ConstraintNode {
            variant: 1,
            name: "tight".into(),
            expr: ConstraintExpr::Predicate(Predicate::le(0, 3.0)),
        });
        let diags = analyze_graph(&g);
        let shadowed: Vec<_> = diags.iter().filter(|d| d.code == "NITRO081").collect();
        assert_eq!(shadowed.len(), 1, "{diags:?}");
        assert!(shadowed[0].message.contains("'small'"));
        assert_eq!(shadowed[0].severity, Severity::Warning);
    }

    #[test]
    fn equivalent_constraints_report_only_the_later_one() {
        let mut g = base_graph();
        g.constraints.push(ConstraintNode {
            variant: 1,
            name: "same".into(),
            expr: ConstraintExpr::Predicate(Predicate::gt(0, 8.0).not()),
        });
        let diags = analyze_graph(&g);
        let shadowed: Vec<_> = diags.iter().filter(|d| d.code == "NITRO081").collect();
        assert_eq!(shadowed.len(), 1, "{diags:?}");
        assert!(shadowed[0].message.contains("'same'"));
    }

    #[test]
    fn constant_profiled_feature_fires_nitro082() {
        let mut g = base_graph();
        let profile = g.profile.as_mut().unwrap();
        for row in &mut profile.rows {
            row[1] = 4.0;
        }
        let diags = analyze_graph(&g);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "NITRO082").collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("'y'"));
    }

    #[test]
    fn unread_feature_fires_nitro083_but_predicate_reference_clears_it() {
        let mut g = base_graph();
        g.features[1].active = false;
        let diags = analyze_graph(&g);
        assert!(codes_of(&diags).contains(&"NITRO083"), "{diags:?}");

        // A predicate referencing the feature counts as reading it.
        g.constraints.push(ConstraintNode {
            variant: 1,
            name: "uses_y".into(),
            expr: ConstraintExpr::Predicate(Predicate::ge(1, 0.0)),
        });
        let diags = analyze_graph(&g);
        assert!(!codes_of(&diags).contains(&"NITRO083"), "{diags:?}");
    }

    #[test]
    fn missing_default_with_constraints_fires_nitro084() {
        let mut g = base_graph();
        g.variants[0].is_default = false;
        g.cascade.clear();
        let diags = analyze_graph(&g);
        assert!(codes_of(&diags).contains(&"NITRO084"), "{diags:?}");
    }

    #[test]
    fn cascade_cycle_fires_nitro084() {
        let mut g = base_graph();
        g.variants.push(VariantNode {
            name: "c".into(),
            is_default: false,
        });
        g.cascade = vec![
            CascadeEdge { from: 1, to: 2 },
            CascadeEdge { from: 2, to: 1 },
        ];
        let diags = analyze_graph(&g);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "NITRO084").collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("cycle"));
    }

    #[test]
    fn unreachable_default_fires_nitro084() {
        let mut g = base_graph();
        g.variants.push(VariantNode {
            name: "c".into(),
            is_default: false,
        });
        // Variant 1's fallback dead-ends at 2 instead of the default.
        g.cascade = vec![CascadeEdge { from: 1, to: 2 }];
        let diags = analyze_graph(&g);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "NITRO084").collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("no cascade path"));
    }

    #[test]
    fn incompatible_latest_version_is_error_historical_is_warning() {
        let mut g = base_graph();
        g.versions[0].feature_names = vec!["x".into()]; // arity mismatch
        g.versions.push(VersionNode {
            version: 2,
            is_latest: false,
            function: "other".into(),
            schema_version: MODEL_SCHEMA_VERSION,
            variant_names: vec!["a".into(), "b".into()],
            feature_names: vec!["x".into(), "y".into()],
        });
        // The fixture marked version 1 latest; keep that and make v2 the
        // historical mismatch.
        let diags = analyze_graph(&g);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "NITRO085").collect();
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert!(hits
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("feature arity")));
        assert!(hits
            .iter()
            .any(|d| d.severity == Severity::Warning && d.message.contains("function 'other'")));
    }

    #[test]
    fn newer_schema_version_is_incompatible() {
        let mut g = base_graph();
        g.versions[0].schema_version = MODEL_SCHEMA_VERSION + 1;
        let diags = analyze_graph(&g);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "NITRO085" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_range_model_class_fires_nitro086() {
        let mut g = base_graph();
        g.model.as_mut().unwrap().classes = vec![0, 1, 5];
        let diags = analyze_graph(&g);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == "NITRO086").collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("class 5"));
    }
}
