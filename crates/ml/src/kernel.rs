//! SVM kernel functions.
//!
//! The paper uses the Radial-Basis Function kernel by default (§III-A);
//! linear and polynomial kernels are provided for ablations.

use serde::{Deserialize, Serialize};

/// A Mercer kernel `K(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, z) = exp(-gamma * ||x - z||^2)` — the paper's default.
    Rbf {
        /// Width parameter; found by cross-validated grid search.
        gamma: f64,
    },
    /// `K(x, z) = <x, z>`.
    Linear,
    /// `K(x, z) = (gamma * <x, z> + coef0)^degree`.
    Poly {
        /// Scale on the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    /// Evaluate the kernel on two equal-length vectors.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match *self {
            Kernel::Rbf { gamma } => {
                let mut d2 = 0.0;
                for (x, z) in a.iter().zip(b) {
                    let d = x - z;
                    d2 += d * d;
                }
                (-gamma * d2).exp()
            }
            Kernel::Linear => dot(a, b),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
        }
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, z)| x * z).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_is_one_at_zero_distance() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::Rbf { gamma: 1.0 };
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[3.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_is_symmetric() {
        let k = Kernel::Rbf { gamma: 0.7 };
        let (a, b) = ([0.3, -1.2, 4.0], [2.0, 0.0, -0.5]);
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn linear_matches_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn poly_expands_correctly() {
        let k = Kernel::Poly {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (1*2 + 1)^2 = 9
        assert_eq!(k.eval(&[1.0], &[2.0]), 9.0);
    }
}
