//! Cross-validated grid search for SVM hyper-parameters.
//!
//! Paper §III-A: "a cross-validation based parameter search is performed
//! to find the kernel parameters". This reproduces libSVM's `grid.py`
//! procedure: stratified k-fold accuracy over a log₂ grid of `(C, γ)`,
//! evaluated in parallel with rayon.

use rayon::prelude::*;

use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::svm::multiclass::SvmModel;
use crate::svm::smo::SmoParams;

/// Grid-search configuration.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Candidate C values.
    pub c_values: Vec<f64>,
    /// Candidate RBF γ values.
    pub gamma_values: Vec<f64>,
    /// Number of stratified cross-validation folds.
    pub folds: usize,
    /// Seed for the fold shuffle.
    pub seed: u64,
}

impl Default for GridSearch {
    /// The libSVM-style default grid, trimmed to Nitro's training sizes:
    /// `C ∈ 2^{−3..9}`, `γ ∈ 2^{−9..3}`, step `2²`, 5-fold CV.
    fn default() -> Self {
        Self {
            c_values: (-3..=9).step_by(2).map(|e| 2f64.powi(e)).collect(),
            gamma_values: (-9..=3).step_by(2).map(|e| 2f64.powi(e)).collect(),
            folds: 5,
            seed: 0xA11CE,
        }
    }
}

/// Result of a grid search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridResult {
    /// Best box-constraint C.
    pub c: f64,
    /// Best RBF γ.
    pub gamma: f64,
    /// Cross-validation accuracy achieved at the optimum.
    pub cv_accuracy: f64,
}

impl GridSearch {
    /// Find the `(C, γ)` pair maximizing stratified k-fold CV accuracy on
    /// `data` (which must already be scaled). Ties prefer smaller C then
    /// smaller γ, for smoother models.
    pub fn search(&self, data: &Dataset) -> GridResult {
        assert!(!data.is_empty(), "cannot grid-search an empty dataset");
        let folds = self.folds.min(data.len()).max(2);
        let fold_indices = data.stratified_folds(folds, self.seed);

        let combos: Vec<(f64, f64)> = self
            .c_values
            .iter()
            .flat_map(|&c| self.gamma_values.iter().map(move |&g| (c, g)))
            .collect();

        let scored: Vec<(f64, f64, f64)> = combos
            .par_iter()
            .map(|&(c, gamma)| {
                let acc = cv_accuracy(data, &fold_indices, c, gamma);
                (c, gamma, acc)
            })
            .collect();

        let mut best = GridResult {
            c: 1.0,
            gamma: 1.0,
            cv_accuracy: -1.0,
        };
        for &(c, gamma, acc) in &scored {
            let better = acc > best.cv_accuracy + 1e-12
                || (acc >= best.cv_accuracy - 1e-12
                    && (c < best.c || (c == best.c && gamma < best.gamma)));
            if acc > best.cv_accuracy + 1e-12 || (acc >= best.cv_accuracy - 1e-12 && better) {
                best = GridResult {
                    c,
                    gamma,
                    cv_accuracy: acc,
                };
            }
        }
        best
    }
}

/// Mean held-out accuracy across the provided folds for one `(C, γ)`.
fn cv_accuracy(data: &Dataset, folds: &[Vec<usize>], c: f64, gamma: f64) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for held in 0..folds.len() {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != held)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        if train_idx.is_empty() || folds[held].is_empty() {
            continue;
        }
        let train = data.subset(&train_idx);
        let model = SvmModel::train(
            &train,
            Kernel::Rbf { gamma },
            &SmoParams {
                c,
                ..Default::default()
            },
        );
        for &i in &folds[held] {
            if model.predict(&data.x[i]) == data.y[i] {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two concentric rings: linearly inseparable, needs a tuned RBF.
    fn rings() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let theta = i as f64 * std::f64::consts::TAU / 40.0;
            d.push(vec![0.3 * theta.cos(), 0.3 * theta.sin()], 0);
            d.push(vec![1.0 * theta.cos(), 1.0 * theta.sin()], 1);
        }
        d
    }

    #[test]
    fn finds_parameters_that_separate_rings() {
        let data = rings();
        let grid = GridSearch {
            folds: 4,
            ..Default::default()
        };
        let r = grid.search(&data);
        assert!(r.cv_accuracy > 0.9, "cv accuracy {}", r.cv_accuracy);
        // Train at the optimum and check training fit.
        let m = SvmModel::train(
            &data,
            Kernel::Rbf { gamma: r.gamma },
            &SmoParams {
                c: r.c,
                ..Default::default()
            },
        );
        let preds: Vec<usize> = data.x.iter().map(|x| m.predict(x)).collect();
        assert!(data.accuracy(&preds) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = rings();
        let grid = GridSearch {
            folds: 3,
            ..Default::default()
        };
        let a = grid.search(&data);
        let b = grid.search(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_dataset_does_not_panic() {
        let d = Dataset::from_parts(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        let grid = GridSearch {
            c_values: vec![1.0],
            gamma_values: vec![0.5, 1.0],
            folds: 5, // more folds than points: clamped internally
            seed: 1,
        };
        let r = grid.search(&d);
        assert!(r.cv_accuracy >= 0.0);
    }
}
