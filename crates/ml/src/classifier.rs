//! The unified classifier interface consumed by the rest of Nitro.
//!
//! [`ClassifierConfig`] is the declarative knob exposed through the tuning
//! interface (Table II's `classifier` option — the paper's example script
//! sets `spmv.classifier = svm_classifier()`); [`TrainedModel`] is the
//! fitted artifact installed into a `code_variant` and persisted to disk.
//! Feature scaling to `[-1, 1]` happens inside the model, so callers
//! always pass raw feature vectors.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::forest::{ForestModel, ForestParams};
use crate::grid::{GridResult, GridSearch};
use crate::kernel::Kernel;
use crate::knn::KnnModel;
use crate::scale::Scaler;
use crate::svm::multiclass::SvmModel;
use crate::svm::smo::SmoParams;
use crate::tree::{TreeModel, TreeParams};

/// Which learning algorithm the autotuner should fit, with its options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassifierConfig {
    /// RBF-kernel SVM — the paper's default.
    Svm {
        /// Fixed C; `None` lets grid search decide.
        c: Option<f64>,
        /// Fixed γ; `None` lets grid search decide (or uses `1/dim` when
        /// grid search is disabled).
        gamma: Option<f64>,
        /// Run cross-validated grid search for unspecified parameters.
        grid_search: bool,
    },
    /// k-nearest neighbours.
    Knn {
        /// Neighbour count.
        k: usize,
    },
    /// CART decision tree.
    Tree(TreeParams),
    /// Bagged random forest.
    Forest(ForestParams),
}

impl Default for ClassifierConfig {
    /// The paper's default: SVM with RBF kernel and CV grid search.
    fn default() -> Self {
        ClassifierConfig::Svm {
            c: None,
            gamma: None,
            grid_search: true,
        }
    }
}

impl ClassifierConfig {
    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierConfig::Svm { .. } => "svm",
            ClassifierConfig::Knn { .. } => "knn",
            ClassifierConfig::Tree(_) => "tree",
            ClassifierConfig::Forest(_) => "forest",
        }
    }
}

/// A fitted, serializable variant-selection model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainedModel {
    /// Scaled SVM with the hyper-parameters it was trained at.
    Svm {
        /// The scaler fitted on training features.
        scaler: Scaler,
        /// The one-vs-one ensemble.
        model: SvmModel,
        /// Box constraint used.
        c: f64,
        /// RBF width used.
        gamma: f64,
        /// CV accuracy from grid search (`None` without grid search).
        cv_accuracy: Option<f64>,
    },
    /// Scaled kNN.
    Knn {
        /// The scaler fitted on training features.
        scaler: Scaler,
        /// The memorized model.
        model: KnnModel,
    },
    /// Decision tree (scale-invariant, no scaler needed).
    Tree {
        /// The grown tree.
        model: TreeModel,
    },
    /// Random forest (scale-invariant).
    Forest {
        /// The trained ensemble.
        model: ForestModel,
    },
}

impl TrainedModel {
    /// Fit the configured classifier on raw (unscaled) training data.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn train(config: &ClassifierConfig, data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        match config {
            ClassifierConfig::Svm {
                c,
                gamma,
                grid_search,
            } => {
                let scaler = Scaler::fit(&data.x);
                let scaled = Dataset {
                    x: scaler.transform_all(&data.x),
                    y: data.y.clone(),
                    n_classes: data.n_classes,
                };
                let default_gamma = 1.0 / data.dim().max(1) as f64;
                let (c_used, gamma_used, cv_acc) = match (c, gamma, grid_search) {
                    (Some(c), Some(g), _) => (*c, *g, None),
                    (_, _, false) => (c.unwrap_or(1.0), gamma.unwrap_or(default_gamma), None),
                    _ => {
                        let mut grid = GridSearch::default();
                        if let Some(c) = c {
                            grid.c_values = vec![*c];
                        }
                        if let Some(g) = gamma {
                            grid.gamma_values = vec![*g];
                        }
                        let GridResult {
                            c,
                            gamma,
                            cv_accuracy,
                        } = grid.search(&scaled);
                        (c, gamma, Some(cv_accuracy))
                    }
                };
                let model = SvmModel::train(
                    &scaled,
                    Kernel::Rbf { gamma: gamma_used },
                    &SmoParams {
                        c: c_used,
                        ..Default::default()
                    },
                );
                TrainedModel::Svm {
                    scaler,
                    model,
                    c: c_used,
                    gamma: gamma_used,
                    cv_accuracy: cv_acc,
                }
            }
            ClassifierConfig::Knn { k } => {
                let scaler = Scaler::fit(&data.x);
                let scaled = Dataset {
                    x: scaler.transform_all(&data.x),
                    y: data.y.clone(),
                    n_classes: data.n_classes,
                };
                TrainedModel::Knn {
                    scaler,
                    model: KnnModel::train(&scaled, *k),
                }
            }
            ClassifierConfig::Tree(params) => TrainedModel::Tree {
                model: TreeModel::train(data, params),
            },
            ClassifierConfig::Forest(params) => TrainedModel::Forest {
                model: ForestModel::train(data, params),
            },
        }
    }

    /// Predict the best variant (class) for a raw feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        match self {
            TrainedModel::Svm { scaler, model, .. } => model.predict(&scaler.transform(features)),
            TrainedModel::Knn { scaler, model } => model.predict(&scaler.transform(features)),
            TrainedModel::Tree { model } => model.predict(features),
            TrainedModel::Forest { model } => model.predict(features),
        }
    }

    /// Class posterior for a raw feature vector.
    pub fn probabilities(&self, features: &[f64]) -> Vec<f64> {
        match self {
            TrainedModel::Svm { scaler, model, .. } => {
                model.probabilities(&scaler.transform(features))
            }
            TrainedModel::Knn { scaler, model } => model.probabilities(&scaler.transform(features)),
            TrainedModel::Tree { model } => model.probabilities(features),
            TrainedModel::Forest { model } => model.probabilities(features),
        }
    }

    /// Classes ordered from most to least probable for a raw feature
    /// vector (ties break toward the lower class index). The first entry
    /// is the posterior argmax; resilient dispatch walks the rest as its
    /// fallback order when preferred variants are unavailable.
    pub fn rank(&self, features: &[f64]) -> Vec<usize> {
        let p = self.probabilities(features);
        let mut order: Vec<usize> = (0..p.len()).collect();
        order.sort_by(|&a, &b| {
            p[b].partial_cmp(&p[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// Best-vs-Second-Best margin (small = uncertain), the active-learning
    /// query criterion.
    pub fn bvsb_margin(&self, features: &[f64]) -> f64 {
        let mut p = self.probabilities(features);
        p.sort_by(|a, b| b.partial_cmp(a).unwrap());
        match (p.first(), p.get(1)) {
            (Some(best), Some(second)) => best - second,
            (Some(_), None) => 1.0,
            _ => 0.0,
        }
    }

    /// Accuracy over a raw labeled dataset.
    pub fn accuracy_on(&self, data: &Dataset) -> f64 {
        let preds: Vec<usize> = data.x.iter().map(|x| self.predict(x)).collect();
        data.accuracy(&preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clusters with wildly different feature magnitudes, so scaling is
    /// load-bearing.
    fn skewed_clusters() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..12 {
            let j = i as f64 * 0.01;
            d.push(vec![1_000_000.0 + j * 1e4, 0.001 + j * 1e-4], 0);
            d.push(vec![2_000_000.0 + j * 1e4, 0.002 + j * 1e-4], 1);
        }
        d
    }

    #[test]
    fn svm_without_grid_search_learns_clusters() {
        let d = skewed_clusters();
        let m = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(1.0),
                grid_search: false,
            },
            &d,
        );
        assert!(m.accuracy_on(&d) > 0.95);
    }

    #[test]
    fn svm_grid_search_records_cv_accuracy() {
        let d = skewed_clusters();
        let m = TrainedModel::train(&ClassifierConfig::default(), &d);
        match m {
            TrainedModel::Svm {
                cv_accuracy: Some(acc),
                ..
            } => assert!(acc > 0.8, "cv {acc}"),
            other => panic!("expected grid-searched SVM, got {other:?}"),
        }
    }

    #[test]
    fn knn_and_tree_learn_clusters() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            assert!(m.accuracy_on(&d) > 0.95, "{} failed", config.name());
        }
    }

    #[test]
    fn probabilities_are_distributions_for_all_models() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
            },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            let p = m.probabilities(&d.x[0]);
            assert!(
                (p.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "{}",
                config.name()
            );
        }
    }

    #[test]
    fn bvsb_margin_in_unit_interval() {
        let d = skewed_clusters();
        let m = TrainedModel::train(&ClassifierConfig::Knn { k: 5 }, &d);
        for x in &d.x {
            let margin = m.bvsb_margin(x);
            assert!((0.0..=1.0).contains(&margin));
        }
    }

    #[test]
    fn rank_is_a_permutation_ordered_by_posterior() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
            },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            for x in &d.x {
                let order = m.rank(x);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1], "{} not a permutation", config.name());
                let p = m.probabilities(x);
                assert!(
                    p[order[0]] >= p[order[1]],
                    "{} rank not descending",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let d = skewed_clusters();
        let m = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
            },
            &d,
        );
        let j = serde_json::to_string(&m).unwrap();
        let back: TrainedModel = serde_json::from_str(&j).unwrap();
        for x in &d.x {
            assert_eq!(m.predict(x), back.predict(x));
        }
    }

    #[test]
    fn config_default_is_svm_with_grid_search() {
        assert_eq!(
            ClassifierConfig::default(),
            ClassifierConfig::Svm {
                c: None,
                gamma: None,
                grid_search: true
            }
        );
    }
}
