//! The unified classifier interface consumed by the rest of Nitro.
//!
//! [`ClassifierConfig`] is the declarative knob exposed through the tuning
//! interface (Table II's `classifier` option — the paper's example script
//! sets `spmv.classifier = svm_classifier()`); [`TrainedModel`] is the
//! fitted artifact installed into a `code_variant` and persisted to disk.
//! Feature scaling to `[-1, 1]` happens inside the model, so callers
//! always pass raw feature vectors.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::forest::{ForestModel, ForestParams};
use crate::grid::{GridResult, GridSearch};
use crate::kernel::Kernel;
use crate::knn::KnnModel;
use crate::scale::Scaler;
use crate::svm::compiled::SvmScratch;
use crate::svm::multiclass::{SvmModel, SvmTrainStats};
use crate::svm::smo::SmoParams;
use crate::tree::{TreeModel, TreeParams};

/// Which learning algorithm the autotuner should fit, with its options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassifierConfig {
    /// RBF-kernel SVM — the paper's default.
    Svm {
        /// Fixed C; `None` lets grid search decide.
        c: Option<f64>,
        /// Fixed γ; `None` lets grid search decide (or uses `1/dim` when
        /// grid search is disabled).
        gamma: Option<f64>,
        /// Run cross-validated grid search for unspecified parameters.
        grid_search: bool,
        /// Byte budget for the SMO kernel-column cache on the final fit;
        /// `None` uses [`SmoParams`]'s default (32 MiB). Absent from
        /// older serialized policies, hence the serde default.
        #[serde(default)]
        cache_bytes: Option<usize>,
    },
    /// k-nearest neighbours.
    Knn {
        /// Neighbour count.
        k: usize,
    },
    /// CART decision tree.
    Tree(TreeParams),
    /// Bagged random forest.
    Forest(ForestParams),
}

impl Default for ClassifierConfig {
    /// The paper's default: SVM with RBF kernel and CV grid search.
    fn default() -> Self {
        ClassifierConfig::Svm {
            c: None,
            gamma: None,
            grid_search: true,
            cache_bytes: None,
        }
    }
}

impl ClassifierConfig {
    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierConfig::Svm { .. } => "svm",
            ClassifierConfig::Knn { .. } => "knn",
            ClassifierConfig::Tree(_) => "tree",
            ClassifierConfig::Forest(_) => "forest",
        }
    }
}

/// A fitted, serializable variant-selection model.
// The `Svm` variant carries the lazily-compiled fast path inline; models
// are few and long-lived, so the size skew is irrelevant and boxing would
// only add a pointer chase to the dispatch hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainedModel {
    /// Scaled SVM with the hyper-parameters it was trained at.
    Svm {
        /// The scaler fitted on training features.
        scaler: Scaler,
        /// The one-vs-one ensemble.
        model: SvmModel,
        /// Box constraint used.
        c: f64,
        /// RBF width used.
        gamma: f64,
        /// CV accuracy from grid search (`None` without grid search).
        cv_accuracy: Option<f64>,
    },
    /// Scaled kNN.
    Knn {
        /// The scaler fitted on training features.
        scaler: Scaler,
        /// The memorized model.
        model: KnnModel,
    },
    /// Decision tree (scale-invariant, no scaler needed).
    Tree {
        /// The grown tree.
        model: TreeModel,
    },
    /// Random forest (scale-invariant).
    Forest {
        /// The trained ensemble.
        model: ForestModel,
    },
}

/// Reusable buffers for [`TrainedModel::predict_into`]: the scaled
/// feature vector plus the compiled-SVM scratch. One instance per
/// dispatch site makes steady-state prediction allocation-free.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    scaled: Vec<f64>,
    svm: SvmScratch,
}

impl PredictScratch {
    /// Kernel evaluations accumulated since the last call, resetting the
    /// counter — the dispatch path drains this into the
    /// `ml.predict.kernel_evals` metric.
    pub fn take_kernel_evals(&mut self) -> u64 {
        let v = self.svm.kernel_evals;
        self.svm.kernel_evals = 0;
        v
    }
}

impl TrainedModel {
    /// Fit the configured classifier on raw (unscaled) training data.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn train(config: &ClassifierConfig, data: &Dataset) -> Self {
        Self::train_with_stats(config, data).0
    }

    /// Fit the configured classifier, additionally reporting SVM solver
    /// statistics (kernel evaluations, cache behaviour, support-vector
    /// compression) for the final fit. `None` for non-SVM models; grid
    /// search's cross-validation solves are not counted.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn train_with_stats(
        config: &ClassifierConfig,
        data: &Dataset,
    ) -> (Self, Option<SvmTrainStats>) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        match config {
            ClassifierConfig::Svm {
                c,
                gamma,
                grid_search,
                cache_bytes,
            } => {
                let scaler = Scaler::fit(&data.x);
                let scaled = Dataset {
                    x: scaler.transform_all(&data.x),
                    y: data.y.clone(),
                    n_classes: data.n_classes,
                };
                let default_gamma = 1.0 / data.dim().max(1) as f64;
                let (c_used, gamma_used, cv_acc) = match (c, gamma, grid_search) {
                    (Some(c), Some(g), _) => (*c, *g, None),
                    (_, _, false) => (c.unwrap_or(1.0), gamma.unwrap_or(default_gamma), None),
                    _ => {
                        let mut grid = GridSearch::default();
                        if let Some(c) = c {
                            grid.c_values = vec![*c];
                        }
                        if let Some(g) = gamma {
                            grid.gamma_values = vec![*g];
                        }
                        let GridResult {
                            c,
                            gamma,
                            cv_accuracy,
                        } = grid.search(&scaled);
                        (c, gamma, Some(cv_accuracy))
                    }
                };
                let mut smo = SmoParams {
                    c: c_used,
                    ..Default::default()
                };
                if let Some(bytes) = cache_bytes {
                    smo.cache_bytes = *bytes;
                }
                let (model, stats) =
                    SvmModel::train_with_stats(&scaled, Kernel::Rbf { gamma: gamma_used }, &smo);
                (
                    TrainedModel::Svm {
                        scaler,
                        model,
                        c: c_used,
                        gamma: gamma_used,
                        cv_accuracy: cv_acc,
                    },
                    Some(stats),
                )
            }
            ClassifierConfig::Knn { k } => {
                let scaler = Scaler::fit(&data.x);
                let scaled = Dataset {
                    x: scaler.transform_all(&data.x),
                    y: data.y.clone(),
                    n_classes: data.n_classes,
                };
                (
                    TrainedModel::Knn {
                        scaler,
                        model: KnnModel::train(&scaled, *k),
                    },
                    None,
                )
            }
            ClassifierConfig::Tree(params) => (
                TrainedModel::Tree {
                    model: TreeModel::train(data, params),
                },
                None,
            ),
            ClassifierConfig::Forest(params) => (
                TrainedModel::Forest {
                    model: ForestModel::train(data, params),
                },
                None,
            ),
        }
    }

    /// Predict the best variant (class) for a raw feature vector.
    ///
    /// SVM models serve the compiled engine (bit-identical to the
    /// reference path, each unique kernel value computed once).
    pub fn predict(&self, features: &[f64]) -> usize {
        match self {
            TrainedModel::Svm { scaler, model, .. } => {
                model.compiled().predict(&scaler.transform(features))
            }
            TrainedModel::Knn { scaler, model } => model.predict(&scaler.transform(features)),
            TrainedModel::Tree { model } => model.predict(features),
            TrainedModel::Forest { model } => model.predict(features),
        }
    }

    /// Predict using caller-provided scratch buffers: the zero-allocation
    /// dispatch hot path. Identical results to [`TrainedModel::predict`];
    /// non-SVM models fall back to their (allocating) predict.
    pub fn predict_into(&self, features: &[f64], scratch: &mut PredictScratch) -> usize {
        match self {
            TrainedModel::Svm { scaler, model, .. } => {
                scaler.transform_into(features, &mut scratch.scaled);
                model
                    .compiled()
                    .predict_with(&scratch.scaled, &mut scratch.svm)
            }
            _ => self.predict(features),
        }
    }

    /// Class posterior for a raw feature vector.
    pub fn probabilities(&self, features: &[f64]) -> Vec<f64> {
        match self {
            TrainedModel::Svm { scaler, model, .. } => {
                model.compiled().probabilities(&scaler.transform(features))
            }
            TrainedModel::Knn { scaler, model } => model.probabilities(&scaler.transform(features)),
            TrainedModel::Tree { model } => model.probabilities(features),
            TrainedModel::Forest { model } => model.probabilities(features),
        }
    }

    /// Classes ordered from most to least probable for a raw feature
    /// vector (ties break toward the lower class index). The first entry
    /// is the posterior argmax; resilient dispatch walks the rest as its
    /// fallback order when preferred variants are unavailable.
    pub fn rank(&self, features: &[f64]) -> Vec<usize> {
        let p = self.probabilities(features);
        let mut order: Vec<usize> = (0..p.len()).collect();
        order.sort_by(|&a, &b| {
            p[b].partial_cmp(&p[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// Best-vs-Second-Best margin (small = uncertain), the active-learning
    /// query criterion.
    pub fn bvsb_margin(&self, features: &[f64]) -> f64 {
        let mut p = self.probabilities(features);
        p.sort_by(|a, b| b.partial_cmp(a).unwrap());
        match (p.first(), p.get(1)) {
            (Some(best), Some(second)) => best - second,
            (Some(_), None) => 1.0,
            _ => 0.0,
        }
    }

    /// Accuracy over a raw labeled dataset.
    pub fn accuracy_on(&self, data: &Dataset) -> f64 {
        let preds: Vec<usize> = data.x.iter().map(|x| self.predict(x)).collect();
        data.accuracy(&preds)
    }

    /// The class labels this model can emit, sorted and deduped — the
    /// feed for the whole-configuration model-label exhaustiveness
    /// analysis (NITRO086).
    ///
    /// * SVM: the classes present in training (pairwise voting and the
    ///   majority fallback only ever produce those).
    /// * kNN: the distinct memorized labels (neighbour votes can only
    ///   elect a stored label).
    /// * Tree: the argmax class of each leaf (exact).
    /// * Forest: the union of member trees' leaf winners (a superset of
    ///   what the averaged vote can produce).
    pub fn emittable_classes(&self) -> Vec<usize> {
        match self {
            TrainedModel::Svm { model, .. } => {
                let mut out: Vec<usize> = model
                    .present()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &p)| p.then_some(i))
                    .collect();
                if out.is_empty() {
                    out.push(model.fallback());
                }
                out
            }
            TrainedModel::Knn { model, .. } => {
                let mut out = model.labels().to_vec();
                out.sort_unstable();
                out.dedup();
                out
            }
            TrainedModel::Tree { model } => model.leaf_classes(),
            TrainedModel::Forest { model } => model.leaf_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clusters with wildly different feature magnitudes, so scaling is
    /// load-bearing.
    fn skewed_clusters() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..12 {
            let j = i as f64 * 0.01;
            d.push(vec![1_000_000.0 + j * 1e4, 0.001 + j * 1e-4], 0);
            d.push(vec![2_000_000.0 + j * 1e4, 0.002 + j * 1e-4], 1);
        }
        d
    }

    #[test]
    fn svm_without_grid_search_learns_clusters() {
        let d = skewed_clusters();
        let m = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(1.0),
                grid_search: false,
                cache_bytes: None,
            },
            &d,
        );
        assert!(m.accuracy_on(&d) > 0.95);
    }

    #[test]
    fn svm_grid_search_records_cv_accuracy() {
        let d = skewed_clusters();
        let m = TrainedModel::train(&ClassifierConfig::default(), &d);
        match m {
            TrainedModel::Svm {
                cv_accuracy: Some(acc),
                ..
            } => assert!(acc > 0.8, "cv {acc}"),
            other => panic!("expected grid-searched SVM, got {other:?}"),
        }
    }

    #[test]
    fn knn_and_tree_learn_clusters() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            assert!(m.accuracy_on(&d) > 0.95, "{} failed", config.name());
        }
    }

    #[test]
    fn probabilities_are_distributions_for_all_models() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            let p = m.probabilities(&d.x[0]);
            assert!(
                (p.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "{}",
                config.name()
            );
        }
    }

    #[test]
    fn bvsb_margin_in_unit_interval() {
        let d = skewed_clusters();
        let m = TrainedModel::train(&ClassifierConfig::Knn { k: 5 }, &d);
        for x in &d.x {
            let margin = m.bvsb_margin(x);
            assert!((0.0..=1.0).contains(&margin));
        }
    }

    #[test]
    fn rank_is_a_permutation_ordered_by_posterior() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            for x in &d.x {
                let order = m.rank(x);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1], "{} not a permutation", config.name());
                let p = m.probabilities(x);
                assert!(
                    p[order[0]] >= p[order[1]],
                    "{} rank not descending",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let d = skewed_clusters();
        let m = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &d,
        );
        let j = serde_json::to_string(&m).unwrap();
        let back: TrainedModel = serde_json::from_str(&j).unwrap();
        for x in &d.x {
            assert_eq!(m.predict(x), back.predict(x));
        }
    }

    #[test]
    fn config_default_is_svm_with_grid_search() {
        assert_eq!(
            ClassifierConfig::default(),
            ClassifierConfig::Svm {
                c: None,
                gamma: None,
                grid_search: true,
                cache_bytes: None,
            }
        );
    }

    #[test]
    fn predict_into_matches_predict_without_allocating() {
        let d = skewed_clusters();
        let m = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
            &d,
        );
        let mut scratch = PredictScratch::default();
        for x in &d.x {
            assert_eq!(m.predict_into(x, &mut scratch), m.predict(x));
        }
        assert!(scratch.take_kernel_evals() > 0);
        assert_eq!(scratch.take_kernel_evals(), 0, "counter drains");
    }

    #[test]
    fn train_with_stats_reports_svm_work_only() {
        let d = skewed_clusters();
        let (_, stats) = TrainedModel::train_with_stats(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: Some(1 << 20),
            },
            &d,
        );
        let stats = stats.expect("svm training reports stats");
        assert!(stats.kernel_evals > 0);
        assert_eq!(stats.train_rows, d.len());
        let (_, none) = TrainedModel::train_with_stats(&ClassifierConfig::Knn { k: 3 }, &d);
        assert!(none.is_none());
    }

    #[test]
    fn emittable_classes_cover_training_labels() {
        let d = skewed_clusters();
        for config in [
            ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(1.0),
                grid_search: false,
                cache_bytes: None,
            },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(TreeParams::default()),
            ClassifierConfig::Forest(crate::forest::ForestParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            assert_eq!(
                m.emittable_classes(),
                vec![0, 1],
                "{} emittable classes",
                config.name()
            );
        }
    }

    #[test]
    fn emittable_classes_skip_unwinnable_labels() {
        // Class 1 exists in the label space but never in the data: no
        // model can emit it.
        let mut d = Dataset::new(3);
        for i in 0..8 {
            d.push(vec![i as f64], if i < 4 { 0 } else { 2 });
        }
        for config in [
            ClassifierConfig::Knn { k: 1 },
            ClassifierConfig::Tree(TreeParams::default()),
        ] {
            let m = TrainedModel::train(&config, &d);
            assert!(
                !m.emittable_classes().contains(&1),
                "{} claims class 1",
                config.name()
            );
        }
    }

    #[test]
    fn old_policy_json_without_cache_bytes_still_parses() {
        let j = r#"{"Svm":{"c":1.5,"gamma":0.25,"grid_search":false}}"#;
        let cfg: ClassifierConfig = serde_json::from_str(j).unwrap();
        assert_eq!(
            cfg,
            ClassifierConfig::Svm {
                c: Some(1.5),
                gamma: Some(0.25),
                grid_search: false,
                cache_bytes: None,
            }
        );
    }
}
