//! Classification metrics beyond plain accuracy.
//!
//! Variant populations are imbalanced (a benchmark may have one dominant
//! winner and several niche ones), so per-class precision/recall and
//! macro-F1 say more about a selection model than accuracy does. Used by
//! the experiment harnesses' diagnostic output.

use crate::dataset::Dataset;

/// Per-class and aggregate classification metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Per-class precision (NaN-free: 0 when the class was never predicted).
    pub precision: Vec<f64>,
    /// Per-class recall (0 when the class never occurs).
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Macro-averaged F1 over classes that occur in the data.
    pub macro_f1: f64,
    /// Number of true examples per class.
    pub support: Vec<usize>,
}

/// Compute a classification report from true labels and predictions.
///
/// # Panics
/// Panics if lengths differ or a prediction is out of class range.
pub fn classification_report(data: &Dataset, predictions: &[usize]) -> ClassificationReport {
    assert_eq!(data.len(), predictions.len(), "one prediction per example");
    let k = data.n_classes;
    let mut tp = vec![0usize; k];
    let mut fp = vec![0usize; k];
    let mut fnn = vec![0usize; k];
    let mut support = vec![0usize; k];
    let mut correct = 0usize;
    for (&pred, &truth) in predictions.iter().zip(&data.y) {
        assert!(pred < k, "prediction {pred} out of range");
        support[truth] += 1;
        if pred == truth {
            tp[truth] += 1;
            correct += 1;
        } else {
            fp[pred] += 1;
            fnn[truth] += 1;
        }
    }
    let precision: Vec<f64> = (0..k)
        .map(|c| {
            let denom = tp[c] + fp[c];
            if denom == 0 {
                0.0
            } else {
                tp[c] as f64 / denom as f64
            }
        })
        .collect();
    let recall: Vec<f64> = (0..k)
        .map(|c| {
            let denom = tp[c] + fnn[c];
            if denom == 0 {
                0.0
            } else {
                tp[c] as f64 / denom as f64
            }
        })
        .collect();
    let f1: Vec<f64> = (0..k)
        .map(|c| {
            let (p, r) = (precision[c], recall[c]);
            if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            }
        })
        .collect();
    let present: Vec<usize> = (0..k).filter(|&c| support[c] > 0).collect();
    let macro_f1 = if present.is_empty() {
        0.0
    } else {
        present.iter().map(|&c| f1[c]).sum::<f64>() / present.len() as f64
    };
    ClassificationReport {
        accuracy: if data.is_empty() {
            0.0
        } else {
            correct as f64 / data.len() as f64
        },
        precision,
        recall,
        f1,
        macro_f1,
        support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(labels: &[usize], k: usize) -> Dataset {
        let x = labels.iter().map(|&l| vec![l as f64]).collect();
        Dataset {
            x,
            y: labels.to_vec(),
            n_classes: k,
        }
    }

    #[test]
    fn perfect_predictions_score_one() {
        let d = dataset(&[0, 1, 2, 1, 0], 3);
        let r = classification_report(&d, &d.y);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert!(r.precision.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn asymmetric_errors_show_in_precision_recall() {
        // Truth:        0 0 0 1 1
        // Predictions:  0 0 1 1 1
        let d = dataset(&[0, 0, 0, 1, 1], 2);
        let r = classification_report(&d, &[0, 0, 1, 1, 1]);
        assert_eq!(r.accuracy, 0.8);
        assert_eq!(r.precision[0], 1.0); // class 0 never falsely predicted
        assert!((r.recall[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.precision[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.recall[1], 1.0);
        assert_eq!(r.support, vec![3, 2]);
    }

    #[test]
    fn absent_class_contributes_zero_but_not_to_macro() {
        // Class 2 never appears in the data.
        let d = dataset(&[0, 0, 1, 1], 3);
        let r = classification_report(&d, &[0, 0, 1, 1]);
        assert_eq!(r.f1[2], 0.0);
        assert_eq!(r.macro_f1, 1.0, "macro-F1 averages only classes present");
    }

    #[test]
    fn never_predicted_class_has_zero_precision_without_nan() {
        let d = dataset(&[0, 1], 2);
        let r = classification_report(&d, &[0, 0]);
        assert_eq!(r.precision[1], 0.0);
        assert!(r.macro_f1.is_finite());
    }

    #[test]
    #[should_panic(expected = "one prediction per example")]
    fn rejects_length_mismatch() {
        let d = dataset(&[0, 1], 2);
        classification_report(&d, &[0]);
    }
}
