//! Best-vs-Second-Best active learning (paper §III-B, "Incremental
//! Tuning to Reduce Training Inputs").
//!
//! Feature vectors are cheap to compute; labels are expensive (each label
//! requires *running every variant* on that input). The learner therefore
//! starts from a small labeled seed — at least one example per variant —
//! plus a large unlabeled pool, and at each iteration queries the pool
//! point whose class posterior has the smallest Best-vs-Second-Best
//! margin (Joshi, Porikli & Papanikolopoulos, CVPR 2009 — the heuristic
//! the paper cites as reference 20).

use crate::classifier::{ClassifierConfig, TrainedModel};
use crate::dataset::Dataset;

/// Bookkeeping for one active-learning run.
///
/// Pool entries keep their *original indices* so the caller (the
/// incremental tuner) knows which training input to profile when a query
/// is made.
#[derive(Debug, Clone)]
pub struct ActiveLearner {
    labeled: Dataset,
    pool_x: Vec<Vec<f64>>,
    pool_ids: Vec<usize>,
}

impl ActiveLearner {
    /// Start from a labeled seed and an unlabeled pool. `pool` pairs each
    /// feature vector with its original input index.
    ///
    /// # Panics
    /// Panics if the seed is empty (the paper requires at least one seed
    /// example per variant label).
    pub fn new(seed: Dataset, pool: Vec<(usize, Vec<f64>)>) -> Self {
        assert!(!seed.is_empty(), "active learning needs a labeled seed");
        let (pool_ids, pool_x) = pool.into_iter().unzip();
        Self {
            labeled: seed,
            pool_x,
            pool_ids,
        }
    }

    /// Current labeled training set.
    pub fn labeled(&self) -> &Dataset {
        &self.labeled
    }

    /// Remaining unlabeled pool size.
    pub fn pool_len(&self) -> usize {
        self.pool_x.len()
    }

    /// Fit a model on the current labeled set.
    pub fn fit(&self, config: &ClassifierConfig) -> TrainedModel {
        TrainedModel::train(config, &self.labeled)
    }

    /// Choose the pool entry with the smallest BvSB margin under `model`.
    /// Returns `(pool position, original input index)`, or `None` when the
    /// pool is exhausted.
    pub fn next_query(&self, model: &TrainedModel) -> Option<(usize, usize)> {
        let mut best: Option<(usize, f64)> = None;
        for (pos, x) in self.pool_x.iter().enumerate() {
            let margin = model.bvsb_margin(x);
            if best.is_none_or(|(_, m)| margin < m) {
                best = Some((pos, margin));
            }
        }
        best.map(|(pos, _)| (pos, self.pool_ids[pos]))
    }

    /// Move a pool entry (by pool position) into the labeled set with the
    /// oracle-provided label.
    ///
    /// # Panics
    /// Panics if `pos` is out of range or the label exceeds the seed's
    /// class count.
    pub fn label(&mut self, pos: usize, label: usize) {
        let x = self.pool_x.swap_remove(pos);
        self.pool_ids.swap_remove(pos);
        self.labeled.push(x, label);
    }

    /// Drop a pool entry without labeling it — used when the oracle finds
    /// the input unlabelable (e.g. no variant succeeded on it).
    ///
    /// # Panics
    /// Panics if `pos` is out of range.
    pub fn discard(&mut self, pos: usize) {
        self.pool_x.swap_remove(pos);
        self.pool_ids.swap_remove(pos);
    }

    /// Run the full loop: at each iteration fit a model, query the most
    /// uncertain pool point, and label it via `oracle(original_index)`.
    /// Stops after `iterations` queries or when the pool empties, then
    /// returns the final model.
    pub fn run<F>(
        &mut self,
        config: &ClassifierConfig,
        iterations: usize,
        mut oracle: F,
    ) -> TrainedModel
    where
        F: FnMut(usize) -> usize,
    {
        let mut model = self.fit(config);
        for _ in 0..iterations {
            let Some((pos, original)) = self.next_query(&model) else {
                break;
            };
            let label = oracle(original);
            self.label(pos, label);
            model = self.fit(config);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: class = sign of x0 (a 1D threshold at 0).
    fn truth(x: &[f64]) -> usize {
        usize::from(x[0] > 0.0)
    }

    /// Pool entry `i` has `x0 = -1.5 + 0.05 i`; the oracle labels by id.
    fn oracle(id: usize) -> usize {
        truth(&[-1.5 + id as f64 * 0.05])
    }

    fn seed_and_pool() -> (Dataset, Vec<(usize, Vec<f64>)>) {
        let mut seed = Dataset::new(2);
        seed.push(vec![-2.0, 0.0], 0);
        seed.push(vec![2.0, 0.0], 1);
        // Pool spans the boundary densely.
        let pool: Vec<(usize, Vec<f64>)> = (0..60)
            .map(|i| (i, vec![-1.5 + i as f64 * 0.05, (i % 5) as f64 * 0.1]))
            .collect();
        (seed, pool)
    }

    fn cheap_svm() -> ClassifierConfig {
        ClassifierConfig::Svm {
            c: Some(10.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: None,
        }
    }

    #[test]
    fn queries_shrink_pool_and_grow_labeled() {
        let (seed, pool) = seed_and_pool();
        let mut al = ActiveLearner::new(seed, pool);
        let before_pool = al.pool_len();
        al.run(&cheap_svm(), 5, oracle);
        assert_eq!(al.pool_len(), before_pool - 5);
        assert_eq!(al.labeled().len(), 2 + 5);
    }

    #[test]
    fn queries_concentrate_near_decision_boundary() {
        let (seed, pool) = seed_and_pool();
        let mut al = ActiveLearner::new(seed, pool);
        let config = cheap_svm();
        let mut queried_x0 = Vec::new();
        let model = al.fit(&config);
        let mut model = model;
        for _ in 0..8 {
            let (pos, _) = al.next_query(&model).unwrap();
            let x0 = al.pool_x[pos][0];
            queried_x0.push(x0);
            let label = truth(&al.pool_x[pos].clone());
            al.label(pos, label);
            model = al.fit(&config);
        }
        // Most queried points should hug the boundary at x0 = 0.
        let near = queried_x0.iter().filter(|v| v.abs() < 0.75).count();
        assert!(near >= 5, "queried x0 values: {queried_x0:?}");
    }

    #[test]
    fn active_model_matches_full_training_with_fewer_labels() {
        let (seed, pool) = seed_and_pool();
        // Full training on everything:
        let mut full = seed.clone();
        for (_, x) in &pool {
            full.push(x.clone(), truth(x));
        }
        let config = cheap_svm();
        let full_model = TrainedModel::train(&config, &full);

        let mut al = ActiveLearner::new(seed, pool);
        let active_model = al.run(&config, 12, oracle);

        // Evaluate both on a fresh grid.
        let test: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![-2.0 + i as f64 * 0.04, 0.2])
            .collect();
        let full_acc = test
            .iter()
            .filter(|x| full_model.predict(x) == truth(x))
            .count();
        let active_acc = test
            .iter()
            .filter(|x| active_model.predict(x) == truth(x))
            .count();
        assert!(
            active_acc as f64 >= full_acc as f64 * 0.9,
            "active {active_acc}/100 vs full {full_acc}/100 with only 12 labels"
        );
        assert!(al.labeled().len() < full.len() / 3);
    }

    #[test]
    fn run_stops_when_pool_exhausted() {
        let (seed, pool) = seed_and_pool();
        let n_pool = pool.len();
        let mut al = ActiveLearner::new(seed, pool);
        al.run(&cheap_svm(), n_pool + 50, oracle);
        assert_eq!(al.pool_len(), 0);
    }

    #[test]
    #[should_panic(expected = "labeled seed")]
    fn rejects_empty_seed() {
        ActiveLearner::new(Dataset::new(2), vec![]);
    }
}
