//! Platt sigmoid calibration: decision values → probabilities.
//!
//! Fits `P(y = +1 | f) = 1 / (1 + exp(A·f + B))` to (decision value,
//! label) pairs using the robust Newton method of Lin, Lin & Weng
//! (*A note on Platt's probabilistic outputs for support vector
//! machines*, 2007) — the exact routine libSVM ships. Probabilities feed
//! pairwise coupling and, ultimately, the Best-vs-Second-Best
//! active-learning margin.

use serde::{Deserialize, Serialize};

/// Fitted sigmoid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platt {
    /// Slope (negative for well-oriented machines).
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl Platt {
    /// Fit on decision values and boolean labels (`true` = positive class).
    ///
    /// Targets use Laplace smoothing as in Platt's original paper, which
    /// keeps the fit stable when one class is rare.
    pub fn fit(decision_values: &[f64], labels: &[bool]) -> Self {
        assert_eq!(decision_values.len(), labels.len());
        let n = decision_values.len();
        let prior1 = labels.iter().filter(|&&l| l).count() as f64;
        let prior0 = n as f64 - prior1;

        let hi_target = (prior1 + 1.0) / (prior1 + 2.0);
        let lo_target = 1.0 / (prior0 + 2.0);
        let t: Vec<f64> = labels
            .iter()
            .map(|&l| if l { hi_target } else { lo_target })
            .collect();

        // Newton with backtracking line search (Lin–Lin–Weng Algorithm 1).
        let max_iter = 100;
        let min_step = 1e-10;
        let sigma = 1e-12;
        let eps = 1e-5;

        let mut a = 0.0;
        let mut b = ((prior0 + 1.0) / (prior1 + 1.0)).ln();

        let fval = |a: f64, b: f64| -> f64 {
            let mut v = 0.0;
            for (&f, &ti) in decision_values.iter().zip(&t) {
                let fapb = f * a + b;
                if fapb >= 0.0 {
                    v += ti * fapb + (1.0 + (-fapb).exp()).ln();
                } else {
                    v += (ti - 1.0) * fapb + (1.0 + fapb.exp()).ln();
                }
            }
            v
        };

        let mut f_cur = fval(a, b);
        for _ in 0..max_iter {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
            let (mut g1, mut g2) = (0.0, 0.0);
            for (&f, &ti) in decision_values.iter().zip(&t) {
                let fapb = f * a + b;
                let (p, q) = if fapb >= 0.0 {
                    let e = (-fapb).exp();
                    (e / (1.0 + e), 1.0 / (1.0 + e))
                } else {
                    let e = fapb.exp();
                    (1.0 / (1.0 + e), e / (1.0 + e))
                };
                let d2 = p * q;
                h11 += f * f * d2;
                h22 += d2;
                h21 += f * d2;
                let d1 = ti - p;
                g1 += f * d1;
                g2 += d1;
            }
            if g1.abs() < eps && g2.abs() < eps {
                break;
            }
            // Newton direction (2x2 solve).
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;

            let mut step = 1.0;
            while step >= min_step {
                let (na, nb) = (a + step * da, b + step * db);
                let f_new = fval(na, nb);
                if f_new < f_cur + 1e-4 * step * gd {
                    a = na;
                    b = nb;
                    f_cur = f_new;
                    break;
                }
                step /= 2.0;
            }
            if step < min_step {
                break;
            }
        }
        Self { a, b }
    }

    /// Calibrated probability of the positive class for decision value `f`.
    pub fn prob(&self, f: f64) -> f64 {
        let fapb = f * self.a + self.b;
        // Numerically stable logistic.
        if fapb >= 0.0 {
            (-fapb).exp() / (1.0 + (-fapb).exp())
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_separation_yields_confident_probabilities() {
        let f: Vec<f64> = vec![-3.0, -2.5, -2.0, 2.0, 2.5, 3.0];
        let y = vec![false, false, false, true, true, true];
        let p = Platt::fit(&f, &y);
        assert!(p.prob(3.0) > 0.8, "p(+|3.0) = {}", p.prob(3.0));
        assert!(p.prob(-3.0) < 0.2, "p(+|-3.0) = {}", p.prob(-3.0));
    }

    #[test]
    fn probability_is_monotone_in_decision_value() {
        let f: Vec<f64> = (-10..=10).map(|i| i as f64 / 2.0).collect();
        let y: Vec<bool> = f.iter().map(|&v| v > 0.0).collect();
        let p = Platt::fit(&f, &y);
        let mut prev = 0.0;
        for i in -20..=20 {
            let v = p.prob(i as f64 / 4.0);
            assert!(v >= prev - 1e-12, "not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    fn zero_decision_near_class_prior_balance() {
        let f = vec![-1.0, -0.5, 0.5, 1.0];
        let y = vec![false, false, true, true];
        let p = Platt::fit(&f, &y);
        let mid = p.prob(0.0);
        assert!((0.3..0.7).contains(&mid), "p(+|0) = {mid}");
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let f = vec![-100.0, 0.0, 100.0];
        let y = vec![false, true, true];
        let p = Platt::fit(&f, &y);
        for v in [-1e6, -1.0, 0.0, 1.0, 1e6] {
            let pr = p.prob(v);
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn one_sided_labels_do_not_blow_up() {
        // All positive: smoothed targets prevent divergence.
        let f = vec![1.0, 2.0, 3.0];
        let y = vec![true, true, true];
        let p = Platt::fit(&f, &y);
        assert!(p.prob(2.0) > 0.5);
        assert!(p.a.is_finite() && p.b.is_finite());
    }
}
