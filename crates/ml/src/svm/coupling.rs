//! Pairwise coupling: one-vs-one probabilities → a single class posterior.
//!
//! Implements the second method of Wu, Lin & Weng (*Probability estimates
//! for multi-class classification by pairwise coupling*, JMLR 2004) — the
//! algorithm libSVM uses in `multiclass_probability`. Given pairwise
//! estimates `r[i][j] ≈ P(class i | class i or j, x)`, it finds the
//! posterior `p` minimizing `Σ_{i<j} (r[j][i]·p_i − r[i][j]·p_j)²` subject
//! to `Σ p = 1`, `p ≥ 0`.

/// Combine pairwise probabilities into a class posterior.
///
/// `r` is a `k × k` matrix with `r[i][j] + r[j][i] = 1` for `i ≠ j`
/// (diagonal ignored). Returns a length-`k` probability vector.
///
/// # Panics
/// Panics if `r` is not square of size `k ≥ 1`.
pub fn couple(r: &[Vec<f64>]) -> Vec<f64> {
    let k = r.len();
    assert!(
        k >= 1 && r.iter().all(|row| row.len() == k),
        "r must be k×k"
    );
    if k == 1 {
        return vec![1.0];
    }

    // Build Q: Q[t][t] = Σ_{j≠t} r[j][t]²,  Q[t][j] = −r[j][t]·r[t][j].
    let mut q = vec![vec![0.0f64; k]; k];
    for t in 0..k {
        for j in 0..k {
            if j == t {
                continue;
            }
            q[t][t] += r[j][t] * r[j][t];
            q[t][j] = -r[j][t] * r[t][j];
        }
    }

    let mut p = vec![1.0 / k as f64; k];
    let mut qp = vec![0.0f64; k];
    let eps = 0.005 / k as f64;
    let max_iter = 100.max(k);

    for _ in 0..max_iter {
        // qp = Q p, pqp = pᵀQp
        let mut pqp = 0.0;
        for t in 0..k {
            qp[t] = (0..k).map(|j| q[t][j] * p[j]).sum();
            pqp += p[t] * qp[t];
        }
        let max_err = (0..k).map(|t| (qp[t] - pqp).abs()).fold(0.0, f64::max);
        if max_err < eps {
            break;
        }
        for t in 0..k {
            let diff = (-qp[t] + pqp) / q[t][t];
            p[t] += diff;
            pqp = (pqp + diff * (diff * q[t][t] + 2.0 * qp[t])) / ((1.0 + diff) * (1.0 + diff));
            for j in 0..k {
                qp[j] = (qp[j] + diff * q[t][j]) / (1.0 + diff);
                p[j] /= 1.0 + diff;
            }
        }
    }

    // Numerical cleanup: clamp and renormalize.
    for v in p.iter_mut() {
        *v = v.max(0.0);
    }
    let sum: f64 = p.iter().sum();
    if sum > 0.0 {
        for v in p.iter_mut() {
            *v /= sum;
        }
    } else {
        p.fill(1.0 / k as f64);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairwise_from_scores(scores: &[f64]) -> Vec<Vec<f64>> {
        // Bradley–Terry style r[i][j] = s_i / (s_i + s_j).
        let k = scores.len();
        let mut r = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    r[i][j] = scores[i] / (scores[i] + scores[j]);
                }
            }
        }
        r
    }

    #[test]
    fn posterior_sums_to_one() {
        let r = pairwise_from_scores(&[1.0, 2.0, 3.0, 4.0]);
        let p = couple(&r);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dominant_class_wins() {
        let r = pairwise_from_scores(&[0.1, 0.1, 10.0]);
        let p = couple(&r);
        let best = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2);
        assert!(p[2] > 0.8, "p = {p:?}");
    }

    #[test]
    fn symmetric_input_gives_uniform_posterior() {
        let k = 4;
        let mut r = vec![vec![0.5; k]; k];
        for (i, row) in r.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let p = couple(&r);
        for &v in &p {
            assert!((v - 0.25).abs() < 1e-6, "p = {p:?}");
        }
    }

    #[test]
    fn recovers_bradley_terry_ordering() {
        let scores = [5.0, 1.0, 3.0, 2.0];
        let p = couple(&pairwise_from_scores(&scores));
        // Posterior must preserve the score ordering.
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).unwrap());
        assert_eq!(order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn single_class_is_certain() {
        assert_eq!(couple(&[vec![0.0]]), vec![1.0]);
    }

    #[test]
    fn two_class_matches_direct_probability() {
        let r = vec![vec![0.0, 0.8], vec![0.2, 0.0]];
        let p = couple(&r);
        assert!((p[0] - 0.8).abs() < 0.05, "p = {p:?}");
    }
}
