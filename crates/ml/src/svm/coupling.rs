//! Pairwise coupling: one-vs-one probabilities → a single class posterior.
//!
//! Implements the second method of Wu, Lin & Weng (*Probability estimates
//! for multi-class classification by pairwise coupling*, JMLR 2004) — the
//! algorithm libSVM uses in `multiclass_probability`. Given pairwise
//! estimates `r[i][j] ≈ P(class i | class i or j, x)`, it finds the
//! posterior `p` minimizing `Σ_{i<j} (r[j][i]·p_i − r[i][j]·p_j)²` subject
//! to `Σ p = 1`, `p ≥ 0`.
//!
//! [`couple_into`] is the allocation-free core over a flat row-major
//! matrix; both the reference [`couple`] wrapper and the compiled
//! prediction engine delegate to it, so the two paths perform identical
//! arithmetic and their posteriors agree bit-for-bit.

/// Reusable buffers for [`couple_into`]; steady-state calls allocate
/// nothing once the buffers have grown to the working size.
#[derive(Debug, Clone, Default)]
pub struct CoupleWork {
    q: Vec<f64>,
    qp: Vec<f64>,
}

/// Combine pairwise probabilities into a class posterior, writing the
/// result into `p`.
///
/// `r` is a flat row-major `k × k` matrix with `r[i·k+j] + r[j·k+i] = 1`
/// for `i ≠ j` (diagonal ignored). `p` is cleared and filled with a
/// length-`k` probability vector.
///
/// # Panics
/// Panics if `r` is not `k × k` with `k ≥ 1`.
pub fn couple_into(r: &[f64], k: usize, p: &mut Vec<f64>, work: &mut CoupleWork) {
    assert!(k >= 1 && r.len() == k * k, "r must be k×k");
    p.clear();
    if k == 1 {
        p.push(1.0);
        return;
    }

    // Build Q: Q[t][t] = Σ_{j≠t} r[j][t]²,  Q[t][j] = −r[j][t]·r[t][j].
    let q = &mut work.q;
    q.clear();
    q.resize(k * k, 0.0);
    for t in 0..k {
        for j in 0..k {
            if j == t {
                continue;
            }
            q[t * k + t] += r[j * k + t] * r[j * k + t];
            q[t * k + j] = -(r[j * k + t] * r[t * k + j]);
        }
    }

    p.resize(k, 1.0 / k as f64);
    let qp = &mut work.qp;
    qp.clear();
    qp.resize(k, 0.0);
    let eps = 0.005 / k as f64;
    let max_iter = 100.max(k);

    for _ in 0..max_iter {
        // qp = Q p, pqp = pᵀQp
        let mut pqp = 0.0;
        for t in 0..k {
            qp[t] = (0..k).map(|j| q[t * k + j] * p[j]).sum();
            pqp += p[t] * qp[t];
        }
        let max_err = (0..k).map(|t| (qp[t] - pqp).abs()).fold(0.0, f64::max);
        if max_err < eps {
            break;
        }
        for t in 0..k {
            let diff = (-qp[t] + pqp) / q[t * k + t];
            p[t] += diff;
            pqp =
                (pqp + diff * (diff * q[t * k + t] + 2.0 * qp[t])) / ((1.0 + diff) * (1.0 + diff));
            for j in 0..k {
                qp[j] = (qp[j] + diff * q[t * k + j]) / (1.0 + diff);
                p[j] /= 1.0 + diff;
            }
        }
    }

    // Numerical cleanup: clamp and renormalize.
    for v in p.iter_mut() {
        *v = v.max(0.0);
    }
    let sum: f64 = p.iter().sum();
    if sum > 0.0 {
        for v in p.iter_mut() {
            *v /= sum;
        }
    } else {
        p.fill(1.0 / k as f64);
    }
}

/// Combine pairwise probabilities into a class posterior.
///
/// `r` is a `k × k` matrix with `r[i][j] + r[j][i] = 1` for `i ≠ j`
/// (diagonal ignored). Returns a length-`k` probability vector.
///
/// # Panics
/// Panics if `r` is not square of size `k ≥ 1`.
pub fn couple(r: &[Vec<f64>]) -> Vec<f64> {
    let k = r.len();
    assert!(
        k >= 1 && r.iter().all(|row| row.len() == k),
        "r must be k×k"
    );
    let flat: Vec<f64> = r.iter().flat_map(|row| row.iter().copied()).collect();
    let mut p = Vec::with_capacity(k);
    couple_into(&flat, k, &mut p, &mut CoupleWork::default());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairwise_from_scores(scores: &[f64]) -> Vec<Vec<f64>> {
        // Bradley–Terry style r[i][j] = s_i / (s_i + s_j).
        let k = scores.len();
        let mut r = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    r[i][j] = scores[i] / (scores[i] + scores[j]);
                }
            }
        }
        r
    }

    #[test]
    fn posterior_sums_to_one() {
        let r = pairwise_from_scores(&[1.0, 2.0, 3.0, 4.0]);
        let p = couple(&r);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dominant_class_wins() {
        let r = pairwise_from_scores(&[0.1, 0.1, 10.0]);
        let p = couple(&r);
        let best = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2);
        assert!(p[2] > 0.8, "p = {p:?}");
    }

    #[test]
    fn symmetric_input_gives_uniform_posterior() {
        let k = 4;
        let mut r = vec![vec![0.5; k]; k];
        for (i, row) in r.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        let p = couple(&r);
        for &v in &p {
            assert!((v - 0.25).abs() < 1e-6, "p = {p:?}");
        }
    }

    #[test]
    fn recovers_bradley_terry_ordering() {
        let scores = [5.0, 1.0, 3.0, 2.0];
        let p = couple(&pairwise_from_scores(&scores));
        // Posterior must preserve the score ordering.
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).unwrap());
        assert_eq!(order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn single_class_is_certain() {
        assert_eq!(couple(&[vec![0.0]]), vec![1.0]);
    }

    #[test]
    fn two_class_matches_direct_probability() {
        let r = vec![vec![0.0, 0.8], vec![0.2, 0.0]];
        let p = couple(&r);
        assert!((p[0] - 0.8).abs() < 0.05, "p = {p:?}");
    }

    #[test]
    fn flat_core_reuses_buffers_and_matches_wrapper() {
        let nested = pairwise_from_scores(&[2.0, 1.0, 4.0]);
        let flat: Vec<f64> = nested.iter().flatten().copied().collect();
        let mut work = CoupleWork::default();
        let mut p = Vec::new();
        couple_into(&flat, 3, &mut p, &mut work);
        let reference = couple(&nested);
        assert_eq!(p.len(), 3);
        for (a, b) in p.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "wrapper must share the core");
        }
        // A second call through the same buffers must give the same bits.
        let mut p2 = Vec::new();
        couple_into(&flat, 3, &mut p2, &mut work);
        assert_eq!(p, p2);
    }
}
