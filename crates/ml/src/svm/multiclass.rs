//! One-vs-one multiclass SVM (libSVM's scheme, used by the paper).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::svm::binary::BinarySvm;
use crate::svm::compiled::{CompiledCell, CompiledSvm};
use crate::svm::coupling::couple;
use crate::svm::platt::Platt;
use crate::svm::smo::SmoParams;

/// One binary machine for an ordered class pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairMachine {
    /// Class mapped to the machine's `+1` label.
    pub pos: usize,
    /// Class mapped to the machine's `−1` label.
    pub neg: usize,
    /// The trained binary machine for this pair.
    pub svm: BinarySvm,
    /// Platt calibration mapping decision values to probabilities.
    pub platt: Platt,
}

/// Aggregate statistics from one-vs-one training, summed over all pair
/// solves (peak storage is the maximum across pairs, since pair problems
/// are solved with independent caches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SvmTrainStats {
    /// Kernel evaluations across all pair solves.
    pub kernel_evals: u64,
    /// Kernel-column cache hits across all pair solves.
    pub cache_hits: u64,
    /// Kernel-column cache misses across all pair solves.
    pub cache_misses: u64,
    /// Largest kernel storage held by any single pair solve.
    pub peak_cache_bytes: usize,
    /// Training rows in the full dataset.
    pub train_rows: usize,
    /// Pair machines trained.
    pub n_machines: usize,
    /// Unique support vectors after compilation (deduplicated).
    pub unique_svs: usize,
    /// Total support-vector references across machines.
    pub total_sv_refs: usize,
}

impl SvmTrainStats {
    /// Cache hit rate in `[0, 1]`; `1.0` when no lookups were made.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A trained one-vs-one multiclass SVM with probability outputs.
///
/// `k(k−1)/2` binary machines are trained, one per class pair present in
/// the training data. Prediction uses majority voting (ties broken by the
/// coupled posterior); [`SvmModel::probabilities`] runs Platt-calibrated
/// pairwise outputs through Wu–Lin–Weng coupling — these posteriors drive
/// Nitro's Best-vs-Second-Best active learning.
///
/// The serialized fields are the source of truth; a compiled prediction
/// engine ([`CompiledSvm`]) is built lazily (and excluded from serde) for
/// the dispatch hot path. Methods here are the *reference* implementation
/// the compiled engine is tested against bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    n_classes: usize,
    machines: Vec<PairMachine>,
    /// Classes that actually appeared in training data.
    present: Vec<bool>,
    /// Majority training class: the fallback when no machine exists.
    fallback: usize,
    /// Lazily-compiled prediction engine (pure cache, not serialized).
    #[serde(skip)]
    compiled: CompiledCell,
}

impl SvmModel {
    /// Train on a (pre-scaled) dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, kernel: Kernel, params: &SmoParams) -> Self {
        Self::train_inner(data, kernel, params).0
    }

    /// Train and report solver statistics; also compiles the prediction
    /// engine eagerly so the model is dispatch-ready on return.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train_with_stats(
        data: &Dataset,
        kernel: Kernel,
        params: &SmoParams,
    ) -> (Self, SvmTrainStats) {
        let (model, mut stats) = Self::train_inner(data, kernel, params);
        let compiled = model.compiled();
        stats.unique_svs = compiled.n_unique_svs();
        stats.total_sv_refs = compiled.total_sv_refs();
        (model, stats)
    }

    fn train_inner(data: &Dataset, kernel: Kernel, params: &SmoParams) -> (Self, SvmTrainStats) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let k = data.n_classes;
        let counts = data.class_counts();
        let present: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        let fallback = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);

        let mut pairs = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                if counts[a] > 0 && counts[b] > 0 {
                    pairs.push((a, b));
                }
            }
        }

        // Pair problems are independent: train them in parallel. The
        // result vector preserves the deterministic (a, b) iteration
        // order, so assembled artifacts are bit-identical run-to-run.
        let trained: Vec<(PairMachine, u64, u64, u64, usize)> = pairs
            .par_iter()
            .map(|&(a, b)| {
                let mut x = Vec::with_capacity(counts[a] + counts[b]);
                let mut y = Vec::with_capacity(counts[a] + counts[b]);
                for (row, &label) in data.x.iter().zip(&data.y) {
                    if label == a {
                        x.push(row.clone());
                        y.push(1.0);
                    } else if label == b {
                        x.push(row.clone());
                        y.push(-1.0);
                    }
                }
                let (svm, result) = BinarySvm::train_result(&x, &y, kernel, params);
                // Calibrate on in-sample decision values recovered from
                // the solver's final gradient — no kernel recomputation.
                // (libSVM uses 5-fold CV decisions; in-sample is a
                // documented simplification that matters little at
                // Nitro's training sizes and keeps retraining cheap.)
                let labels: Vec<bool> = y.iter().map(|&v| v > 0.0).collect();
                let platt = Platt::fit(&result.decision_values, &labels);
                (
                    PairMachine {
                        pos: a,
                        neg: b,
                        svm,
                        platt,
                    },
                    result.kernel_evals,
                    result.cache_hits,
                    result.cache_misses,
                    result.peak_cache_bytes,
                )
            })
            .collect();

        let mut stats = SvmTrainStats {
            train_rows: data.x.len(),
            n_machines: trained.len(),
            ..Default::default()
        };
        let mut machines = Vec::with_capacity(trained.len());
        for (machine, evals, hits, misses, peak) in trained {
            stats.kernel_evals += evals;
            stats.cache_hits += hits;
            stats.cache_misses += misses;
            stats.peak_cache_bytes = stats.peak_cache_bytes.max(peak);
            machines.push(machine);
        }

        (
            Self {
                n_classes: k,
                machines,
                present,
                fallback,
                compiled: CompiledCell::default(),
            },
            stats,
        )
    }

    /// Number of classes this model separates.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of trained pair machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// The trained pair machines (for auditing numeric invariants).
    pub fn machines(&self) -> &[PairMachine] {
        &self.machines
    }

    /// Which classes appeared in training data.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// Majority training class, predicted when no machine exists.
    pub fn fallback(&self) -> usize {
        self.fallback
    }

    /// The compiled prediction engine, built on first use (e.g. after
    /// deserialization) and cached for the model's lifetime.
    pub fn compiled(&self) -> &CompiledSvm {
        self.compiled.get_or_compile(self)
    }

    /// Every machine's decision value for a point, in machine order.
    fn decision_values(&self, point: &[f64]) -> Vec<f64> {
        self.machines
            .iter()
            .map(|m| m.svm.decision(point))
            .collect()
    }

    /// Predict the class of a (pre-scaled) point by pairwise voting.
    /// Decision values are computed once and shared between voting and
    /// the posterior tie-break.
    pub fn predict(&self, point: &[f64]) -> usize {
        if self.machines.is_empty() {
            return self.fallback;
        }
        let decisions = self.decision_values(point);
        let mut votes = vec![0usize; self.n_classes];
        for (m, &d) in self.machines.iter().zip(&decisions) {
            if d >= 0.0 {
                votes[m.pos] += 1;
            } else {
                votes[m.neg] += 1;
            }
        }
        let max_votes = *votes.iter().max().unwrap();
        let tied: Vec<usize> = (0..self.n_classes)
            .filter(|&c| votes[c] == max_votes)
            .collect();
        if tied.len() == 1 {
            return tied[0];
        }
        // Break ties with the coupled posterior (reusing the decisions).
        let probs = self.probabilities_from_decisions(&decisions);
        tied.into_iter()
            .max_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap())
            .unwrap_or(self.fallback)
    }

    /// Class posterior for a (pre-scaled) point, length `n_classes`.
    /// Classes absent from training receive probability 0.
    pub fn probabilities(&self, point: &[f64]) -> Vec<f64> {
        let decisions = self.decision_values(point);
        self.probabilities_from_decisions(&decisions)
    }

    /// Posterior from per-machine decision values already in hand.
    fn probabilities_from_decisions(&self, decisions: &[f64]) -> Vec<f64> {
        let active: Vec<usize> = (0..self.n_classes).filter(|&c| self.present[c]).collect();
        if active.is_empty() {
            return vec![0.0; self.n_classes];
        }
        if active.len() == 1 {
            let mut p = vec![0.0; self.n_classes];
            p[active[0]] = 1.0;
            return p;
        }
        let idx_of: Vec<usize> = {
            let mut map = vec![usize::MAX; self.n_classes];
            for (i, &c) in active.iter().enumerate() {
                map[c] = i;
            }
            map
        };
        let ka = active.len();
        let mut r = vec![vec![0.5; ka]; ka];
        for row in r.iter_mut().enumerate() {
            row.1[row.0] = 0.0;
        }
        for (m, &d) in self.machines.iter().zip(decisions) {
            // Clamp away from 0/1 as libSVM does, to keep coupling stable.
            let p = m.platt.prob(d).clamp(1e-7, 1.0 - 1e-7);
            let (i, j) = (idx_of[m.pos], idx_of[m.neg]);
            r[i][j] = p;
            r[j][i] = 1.0 - p;
        }
        let coupled = couple(&r);
        let mut full = vec![0.0; self.n_classes];
        for (i, &c) in active.iter().enumerate() {
            full[c] = coupled[i];
        }
        full
    }

    /// The Best-vs-Second-Best margin: `p(best) − p(second)`. Small
    /// margins mark points the model is least sure about — the paper's
    /// active-learning query criterion (§III-B).
    pub fn bvsb_margin(&self, point: &[f64]) -> f64 {
        let mut p = self.probabilities(point);
        p.sort_by(|a, b| b.partial_cmp(a).unwrap());
        match (p.first(), p.get(1)) {
            (Some(best), Some(second)) => best - second,
            (Some(_), None) => 1.0,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blob_dataset() -> Dataset {
        // Three well-separated clusters in 2D.
        let mut d = Dataset::new(3);
        for i in 0..8 {
            let t = i as f64 / 10.0;
            d.push(vec![-1.0 + t * 0.1, -1.0 - t * 0.1], 0);
            d.push(vec![1.0 + t * 0.1, -1.0 + t * 0.1], 1);
            d.push(vec![0.0 + t * 0.1, 1.0 + t * 0.1], 2);
        }
        d
    }

    fn model() -> SvmModel {
        SvmModel::train(
            &three_blob_dataset(),
            Kernel::Rbf { gamma: 1.0 },
            &SmoParams::default(),
        )
    }

    #[test]
    fn trains_all_pairs() {
        assert_eq!(model().n_machines(), 3);
    }

    #[test]
    fn classifies_cluster_centers() {
        let m = model();
        assert_eq!(m.predict(&[-1.0, -1.0]), 0);
        assert_eq!(m.predict(&[1.0, -1.0]), 1);
        assert_eq!(m.predict(&[0.0, 1.0]), 2);
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let m = model();
        let p = m.probabilities(&[0.2, 0.3]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn confident_point_has_large_bvsb_margin() {
        let m = model();
        let at_center = m.bvsb_margin(&[-1.0, -1.0]);
        // Equidistant from all three clusters: maximal confusion.
        let at_centroid = m.bvsb_margin(&[0.0, -0.2]);
        assert!(
            at_center > at_centroid,
            "center margin {at_center} vs centroid margin {at_centroid}"
        );
    }

    #[test]
    fn missing_class_gets_zero_probability() {
        // n_classes = 3 but class 2 never appears.
        let mut d = Dataset::new(3);
        for i in 0..6 {
            d.push(vec![i as f64], if i < 3 { 0 } else { 1 });
        }
        let m = SvmModel::train(&d, Kernel::Linear, &SmoParams::default());
        let p = m.probabilities(&[0.0]);
        assert_eq!(p[2], 0.0);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_class_dataset_predicts_it() {
        let mut d = Dataset::new(4);
        d.push(vec![1.0], 2);
        d.push(vec![2.0], 2);
        let m = SvmModel::train(&d, Kernel::Linear, &SmoParams::default());
        assert_eq!(m.predict(&[5.0]), 2);
        assert_eq!(m.probabilities(&[5.0])[2], 1.0);
        assert_eq!(m.bvsb_margin(&[5.0]), 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let m = model();
        let j = serde_json::to_string(&m).unwrap();
        let back: SvmModel = serde_json::from_str(&j).unwrap();
        for p in [[0.0, 1.0], [1.0, -1.0], [-1.0, -1.0]] {
            assert_eq!(m.predict(&p), back.predict(&p));
        }
    }

    #[test]
    fn train_with_stats_reports_solver_work() {
        let (m, stats) = SvmModel::train_with_stats(
            &three_blob_dataset(),
            Kernel::Rbf { gamma: 1.0 },
            &SmoParams::default(),
        );
        assert_eq!(stats.n_machines, 3);
        assert_eq!(stats.train_rows, 24);
        assert!(stats.kernel_evals > 0);
        assert!(stats.unique_svs > 0);
        assert!(stats.unique_svs <= stats.total_sv_refs);
        assert!((0.0..=1.0).contains(&stats.cache_hit_rate()));
        // The eager compile must agree with the lazily-built engine.
        assert_eq!(m.compiled().n_unique_svs(), stats.unique_svs);
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let d = three_blob_dataset();
        let kernel = Kernel::Rbf { gamma: 1.0 };
        let a = SvmModel::train(&d, kernel, &SmoParams::default());
        let b = SvmModel::train(&d, kernel, &SmoParams::default());
        assert_eq!(a, b, "repeat training must be bit-identical");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn deserialized_model_recompiles_lazily() {
        let m = model();
        let j = serde_json::to_string(&m).unwrap();
        let back: SvmModel = serde_json::from_str(&j).unwrap();
        let compiled = back.compiled();
        assert_eq!(compiled.n_unique_svs(), m.compiled().n_unique_svs());
        for p in [[0.0, 1.0], [1.0, -1.0], [-1.0, -1.0]] {
            assert_eq!(compiled.predict(&p), m.predict(&p));
        }
    }
}
