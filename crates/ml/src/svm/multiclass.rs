//! One-vs-one multiclass SVM (libSVM's scheme, used by the paper).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::svm::binary::BinarySvm;
use crate::svm::coupling::couple;
use crate::svm::platt::Platt;
use crate::svm::smo::SmoParams;

/// One binary machine for an ordered class pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairMachine {
    /// Class mapped to the machine's `+1` label.
    pub pos: usize,
    /// Class mapped to the machine's `−1` label.
    pub neg: usize,
    /// The trained binary machine for this pair.
    pub svm: BinarySvm,
    /// Platt calibration mapping decision values to probabilities.
    pub platt: Platt,
}

/// A trained one-vs-one multiclass SVM with probability outputs.
///
/// `k(k−1)/2` binary machines are trained, one per class pair present in
/// the training data. Prediction uses majority voting (ties broken by the
/// coupled posterior); [`SvmModel::probabilities`] runs Platt-calibrated
/// pairwise outputs through Wu–Lin–Weng coupling — these posteriors drive
/// Nitro's Best-vs-Second-Best active learning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    n_classes: usize,
    machines: Vec<PairMachine>,
    /// Classes that actually appeared in training data.
    present: Vec<bool>,
    /// Majority training class: the fallback when no machine exists.
    fallback: usize,
}

impl SvmModel {
    /// Train on a (pre-scaled) dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, kernel: Kernel, params: &SmoParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let k = data.n_classes;
        let counts = data.class_counts();
        let present: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        let fallback = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);

        let mut machines = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                if counts[a] == 0 || counts[b] == 0 {
                    continue;
                }
                let mut x = Vec::with_capacity(counts[a] + counts[b]);
                let mut y = Vec::with_capacity(counts[a] + counts[b]);
                for (row, &label) in data.x.iter().zip(&data.y) {
                    if label == a {
                        x.push(row.clone());
                        y.push(1.0);
                    } else if label == b {
                        x.push(row.clone());
                        y.push(-1.0);
                    }
                }
                let svm = BinarySvm::train(&x, &y, kernel, params);
                // Calibrate on in-sample decision values. (libSVM uses
                // 5-fold CV decisions; in-sample is a documented
                // simplification that matters little at Nitro's training
                // sizes and keeps incremental retraining cheap.)
                let decisions: Vec<f64> = x.iter().map(|r| svm.decision(r)).collect();
                let labels: Vec<bool> = y.iter().map(|&v| v > 0.0).collect();
                let platt = Platt::fit(&decisions, &labels);
                machines.push(PairMachine {
                    pos: a,
                    neg: b,
                    svm,
                    platt,
                });
            }
        }
        Self {
            n_classes: k,
            machines,
            present,
            fallback,
        }
    }

    /// Number of classes this model separates.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of trained pair machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// The trained pair machines (for auditing numeric invariants).
    pub fn machines(&self) -> &[PairMachine] {
        &self.machines
    }

    /// Predict the class of a (pre-scaled) point by pairwise voting.
    pub fn predict(&self, point: &[f64]) -> usize {
        if self.machines.is_empty() {
            return self.fallback;
        }
        let mut votes = vec![0usize; self.n_classes];
        for m in &self.machines {
            if m.svm.decision(point) >= 0.0 {
                votes[m.pos] += 1;
            } else {
                votes[m.neg] += 1;
            }
        }
        let max_votes = *votes.iter().max().unwrap();
        let tied: Vec<usize> = (0..self.n_classes)
            .filter(|&c| votes[c] == max_votes)
            .collect();
        if tied.len() == 1 {
            return tied[0];
        }
        // Break ties with the coupled posterior.
        let probs = self.probabilities(point);
        tied.into_iter()
            .max_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap())
            .unwrap_or(self.fallback)
    }

    /// Class posterior for a (pre-scaled) point, length `n_classes`.
    /// Classes absent from training receive probability 0.
    pub fn probabilities(&self, point: &[f64]) -> Vec<f64> {
        let active: Vec<usize> = (0..self.n_classes).filter(|&c| self.present[c]).collect();
        if active.is_empty() {
            return vec![0.0; self.n_classes];
        }
        if active.len() == 1 {
            let mut p = vec![0.0; self.n_classes];
            p[active[0]] = 1.0;
            return p;
        }
        let idx_of: Vec<usize> = {
            let mut map = vec![usize::MAX; self.n_classes];
            for (i, &c) in active.iter().enumerate() {
                map[c] = i;
            }
            map
        };
        let ka = active.len();
        let mut r = vec![vec![0.5; ka]; ka];
        for row in r.iter_mut().enumerate() {
            row.1[row.0] = 0.0;
        }
        for m in &self.machines {
            // Clamp away from 0/1 as libSVM does, to keep coupling stable.
            let p = m.platt.prob(m.svm.decision(point)).clamp(1e-7, 1.0 - 1e-7);
            let (i, j) = (idx_of[m.pos], idx_of[m.neg]);
            r[i][j] = p;
            r[j][i] = 1.0 - p;
        }
        let coupled = couple(&r);
        let mut full = vec![0.0; self.n_classes];
        for (i, &c) in active.iter().enumerate() {
            full[c] = coupled[i];
        }
        full
    }

    /// The Best-vs-Second-Best margin: `p(best) − p(second)`. Small
    /// margins mark points the model is least sure about — the paper's
    /// active-learning query criterion (§III-B).
    pub fn bvsb_margin(&self, point: &[f64]) -> f64 {
        let mut p = self.probabilities(point);
        p.sort_by(|a, b| b.partial_cmp(a).unwrap());
        match (p.first(), p.get(1)) {
            (Some(best), Some(second)) => best - second,
            (Some(_), None) => 1.0,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blob_dataset() -> Dataset {
        // Three well-separated clusters in 2D.
        let mut d = Dataset::new(3);
        for i in 0..8 {
            let t = i as f64 / 10.0;
            d.push(vec![-1.0 + t * 0.1, -1.0 - t * 0.1], 0);
            d.push(vec![1.0 + t * 0.1, -1.0 + t * 0.1], 1);
            d.push(vec![0.0 + t * 0.1, 1.0 + t * 0.1], 2);
        }
        d
    }

    fn model() -> SvmModel {
        SvmModel::train(
            &three_blob_dataset(),
            Kernel::Rbf { gamma: 1.0 },
            &SmoParams::default(),
        )
    }

    #[test]
    fn trains_all_pairs() {
        assert_eq!(model().n_machines(), 3);
    }

    #[test]
    fn classifies_cluster_centers() {
        let m = model();
        assert_eq!(m.predict(&[-1.0, -1.0]), 0);
        assert_eq!(m.predict(&[1.0, -1.0]), 1);
        assert_eq!(m.predict(&[0.0, 1.0]), 2);
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let m = model();
        let p = m.probabilities(&[0.2, 0.3]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn confident_point_has_large_bvsb_margin() {
        let m = model();
        let at_center = m.bvsb_margin(&[-1.0, -1.0]);
        // Equidistant from all three clusters: maximal confusion.
        let at_centroid = m.bvsb_margin(&[0.0, -0.2]);
        assert!(
            at_center > at_centroid,
            "center margin {at_center} vs centroid margin {at_centroid}"
        );
    }

    #[test]
    fn missing_class_gets_zero_probability() {
        // n_classes = 3 but class 2 never appears.
        let mut d = Dataset::new(3);
        for i in 0..6 {
            d.push(vec![i as f64], if i < 3 { 0 } else { 1 });
        }
        let m = SvmModel::train(&d, Kernel::Linear, &SmoParams::default());
        let p = m.probabilities(&[0.0]);
        assert_eq!(p[2], 0.0);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_class_dataset_predicts_it() {
        let mut d = Dataset::new(4);
        d.push(vec![1.0], 2);
        d.push(vec![2.0], 2);
        let m = SvmModel::train(&d, Kernel::Linear, &SmoParams::default());
        assert_eq!(m.predict(&[5.0]), 2);
        assert_eq!(m.probabilities(&[5.0])[2], 1.0);
        assert_eq!(m.bvsb_margin(&[5.0]), 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let m = model();
        let j = serde_json::to_string(&m).unwrap();
        let back: SvmModel = serde_json::from_str(&j).unwrap();
        for p in [[0.0, 1.0], [1.0, -1.0], [-1.0, -1.0]] {
            assert_eq!(m.predict(&p), back.predict(&p));
        }
    }
}
