//! Sequential Minimal Optimization for the binary C-SVC dual.
//!
//! Solves
//!
//! ```text
//! min_α  ½ αᵀQα − eᵀα    s.t.  0 ≤ α_i ≤ C,  yᵀα = 0
//! ```
//!
//! where `Q_ij = y_i y_j K(x_i, x_j)`, using the maximal-violating-pair
//! rule with second-order `j` selection (libSVM's WSS, Fan–Chen–Lin 2005).
//! Training sets in Nitro are small (tens to a few hundred inputs), so the
//! full Gram matrix is materialized rather than cached column-wise.

use crate::kernel::Kernel;

/// Numerical floor for non-positive-definite quadratic coefficients.
const TAU: f64 = 1e-12;

/// Solver hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmoParams {
    /// Box constraint C (misclassification penalty).
    pub c: f64,
    /// KKT-violation stopping tolerance (libSVM default 1e-3).
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            tol: 1e-3,
            max_iter: 100_000,
        }
    }
}

/// Solver output: dual variables, bias term and iteration count.
#[derive(Debug, Clone)]
pub struct SmoResult {
    /// Dual coefficients, one per training row; support vectors have
    /// `alpha > 0`.
    pub alpha: Vec<f64>,
    /// Bias: the decision function is `Σ α_i y_i K(x_i, x) − rho`.
    pub rho: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the KKT conditions reached `tol` before `max_iter`.
    pub converged: bool,
}

/// Run SMO on training rows `x` with labels `y ∈ {−1, +1}`.
///
/// # Panics
/// Panics if inputs are empty, lengths mismatch, or a label is not ±1.
pub fn solve(x: &[Vec<f64>], y: &[f64], kernel: &Kernel, params: &SmoParams) -> SmoResult {
    let n = x.len();
    assert!(n > 0, "empty training set");
    assert_eq!(y.len(), n, "label length mismatch");
    assert!(
        y.iter().all(|&v| v == 1.0 || v == -1.0),
        "labels must be ±1"
    );

    // Full Gram matrix (row-major, symmetric).
    let mut k = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&x[i], &x[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    let q = |i: usize, j: usize| y[i] * y[j] * k[i * n + j];

    let c = params.c;
    let mut alpha = vec![0.0f64; n];
    // Gradient of the dual objective: G_i = Σ_j Q_ij α_j − 1.
    let mut grad = vec![-1.0f64; n];

    let mut iterations = 0;
    let mut converged = false;

    while iterations < params.max_iter {
        iterations += 1;

        // --- Working-set selection (WSS 2, Fan–Chen–Lin) ---
        // i: maximal −y_t G_t over I_up.
        let mut gmax = f64::NEG_INFINITY;
        let mut i_sel = usize::MAX;
        for t in 0..n {
            if y[t] == 1.0 {
                if alpha[t] < c && -grad[t] >= gmax {
                    gmax = -grad[t];
                    i_sel = t;
                }
            } else if alpha[t] > 0.0 && grad[t] >= gmax {
                gmax = grad[t];
                i_sel = t;
            }
        }
        // j: second-order minimizer over I_low.
        let mut gmax2 = f64::NEG_INFINITY;
        let mut j_sel = usize::MAX;
        let mut obj_min = f64::INFINITY;
        if i_sel != usize::MAX {
            let qii = k[i_sel * n + i_sel];
            for t in 0..n {
                if y[t] == 1.0 {
                    if alpha[t] > 0.0 {
                        let grad_diff = gmax + grad[t];
                        if grad[t] >= gmax2 {
                            gmax2 = grad[t];
                        }
                        if grad_diff > 0.0 {
                            // Curvature along the (i, t) direction:
                            // a_it = K_ii + K_tt − 2 K_it = ||φ(x_i) − φ(x_t)||².
                            let quad = (qii + k[t * n + t] - 2.0 * k[i_sel * n + t]).max(TAU);
                            let obj = -(grad_diff * grad_diff) / quad;
                            if obj <= obj_min {
                                obj_min = obj;
                                j_sel = t;
                            }
                        }
                    }
                } else if alpha[t] < c {
                    let grad_diff = gmax - grad[t];
                    if -grad[t] >= gmax2 {
                        gmax2 = -grad[t];
                    }
                    if grad_diff > 0.0 {
                        let quad = (qii + k[t * n + t] - 2.0 * k[i_sel * n + t]).max(TAU);
                        let obj = -(grad_diff * grad_diff) / quad;
                        if obj <= obj_min {
                            obj_min = obj;
                            j_sel = t;
                        }
                    }
                }
            }
        }

        if i_sel == usize::MAX || j_sel == usize::MAX || gmax + gmax2 < params.tol {
            converged = i_sel == usize::MAX || j_sel == usize::MAX || gmax + gmax2 < params.tol;
            break;
        }

        let (i, j) = (i_sel, j_sel);
        let old_ai = alpha[i];
        let old_aj = alpha[j];

        // --- Two-variable analytic update with box clipping (libSVM) ---
        if y[i] != y[j] {
            // The feasible direction is e_i + e_j, whose curvature is
            // Q_ii + Q_jj + 2Q_ij = K_ii + K_jj − 2K_ij (Q_ij = −K_ij here).
            let quad = (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]).max(TAU);
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > 0.0 {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                }
            } else if alpha[j] > c {
                alpha[j] = c;
                alpha[i] = c + diff;
            }
        } else {
            let quad = (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]).max(TAU);
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = sum - c;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c {
                if alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = sum - c;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // --- Gradient maintenance ---
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            #[allow(clippy::needless_range_loop)] // t indexes grad AND the Q closure
            for t in 0..n {
                grad[t] += q(t, i) * dai + q(t, j) * daj;
            }
        }
    }

    // --- Bias (rho) from the KKT conditions ---
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..n {
        let yg = y[t] * grad[t];
        if alpha[t] >= c {
            if y[t] == -1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] == 1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    let rho = if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    };

    SmoResult {
        alpha,
        rho,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(x: &[Vec<f64>], y: &[f64], r: &SmoResult, kernel: &Kernel, point: &[f64]) -> f64 {
        let mut f = -r.rho;
        for (i, xi) in x.iter().enumerate() {
            if r.alpha[i] > 0.0 {
                f += r.alpha[i] * y[i] * kernel.eval(xi, point);
            }
        }
        f
    }

    #[test]
    fn separable_problem_classifies_training_data() {
        let x = vec![
            vec![-2.0],
            vec![-1.5],
            vec![-1.0],
            vec![1.0],
            vec![1.5],
            vec![2.0],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let kernel = Kernel::Linear;
        let r = solve(&x, &y, &kernel, &SmoParams::default());
        assert!(r.converged);
        for (xi, &yi) in x.iter().zip(&y) {
            let f = decision(&x, &y, &r, &kernel, xi);
            assert!(f * yi > 0.0, "point {xi:?} misclassified (f = {f})");
        }
    }

    #[test]
    fn equality_constraint_holds() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) / 10.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let kernel = Kernel::Rbf { gamma: 1.0 };
        let r = solve(&x, &y, &kernel, &SmoParams::default());
        let balance: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        assert!(balance.abs() < 1e-9, "yᵀα = {balance}");
    }

    #[test]
    fn alphas_respect_box_constraints() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if (i % 10) < 5 { -1.0 } else { 1.0 })
            .collect();
        let params = SmoParams {
            c: 0.5,
            ..Default::default()
        };
        let r = solve(&x, &y, &Kernel::Rbf { gamma: 0.5 }, &params);
        for &a in &r.alpha {
            assert!(
                (-1e-12..=0.5 + 1e-12).contains(&a),
                "alpha {a} outside [0, C]"
            );
        }
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is the canonical non-linearly-separable problem.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![-1.0, 1.0, 1.0, -1.0];
        let kernel = Kernel::Rbf { gamma: 2.0 };
        let r = solve(
            &x,
            &y,
            &kernel,
            &SmoParams {
                c: 10.0,
                ..Default::default()
            },
        );
        for (xi, &yi) in x.iter().zip(&y) {
            let f = decision(&x, &y, &r, &kernel, xi);
            assert!(f * yi > 0.0, "XOR point {xi:?} misclassified");
        }
    }

    #[test]
    fn single_point_per_class_converges() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let r = solve(&x, &y, &Kernel::Linear, &SmoParams::default());
        assert!(r.converged);
        assert!(r.alpha[0] > 0.0 && r.alpha[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        solve(&[vec![0.0]], &[2.0], &Kernel::Linear, &SmoParams::default());
    }

    #[test]
    fn noisy_labels_saturate_at_c() {
        // One flipped label inside the other class forces alpha = C there.
        let x = vec![
            vec![-2.0],
            vec![-1.8],
            vec![-1.9],
            vec![2.0],
            vec![1.9],
            vec![-1.85],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0]; // last point is mislabeled
        let params = SmoParams {
            c: 1.0,
            ..Default::default()
        };
        let r = solve(&x, &y, &Kernel::Linear, &params);
        assert!(r.converged);
        assert!(
            (r.alpha[5] - params.c).abs() < 1e-9,
            "outlier should hit the box bound"
        );
    }
}
