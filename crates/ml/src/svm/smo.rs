//! Sequential Minimal Optimization for the binary C-SVC dual.
//!
//! Solves
//!
//! ```text
//! min_α  ½ αᵀQα − eᵀα    s.t.  0 ≤ α_i ≤ C,  yᵀα = 0
//! ```
//!
//! where `Q_ij = y_i y_j K(x_i, x_j)`, using the maximal-violating-pair
//! rule with second-order `j` selection (libSVM's WSS, Fan–Chen–Lin 2005).
//!
//! Two solvers are provided. [`solve`] — the production path — keeps
//! kernel columns in an LRU cache with a configurable byte budget
//! ([`SmoParams::cache_bytes`]) and applies libSVM's shrinking heuristic,
//! so peak kernel storage is `O(cache)` instead of `O(n²)` and training
//! sets no longer hit a Gram-matrix memory wall. [`solve_reference`]
//! materializes the full Gram matrix exactly as the original implementation
//! did; it is retained as the ground truth for equivalence tests and
//! benchmarks. While the cache holds every requested column and shrinking
//! has not yet triggered (the first `min(n, 1000)` iterations), the two
//! solvers perform bit-identical arithmetic in the same order.

use crate::kernel::Kernel;

/// Numerical floor for non-positive-definite quadratic coefficients.
const TAU: f64 = 1e-12;

/// Default kernel-cache budget: 32 MiB holds the full Gram matrix for
/// n ≤ 2048 and degrades to an LRU working set beyond that.
pub const DEFAULT_CACHE_BYTES: usize = 32 * 1024 * 1024;

/// Solver hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmoParams {
    /// Box constraint C (misclassification penalty).
    pub c: f64,
    /// KKT-violation stopping tolerance (libSVM default 1e-3).
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
    /// Byte budget for the LRU kernel-column cache. Clamped so at least
    /// two columns (the working pair) are always resident.
    pub cache_bytes: usize,
    /// Apply the shrinking heuristic: periodically remove variables that
    /// are pinned at a bound from the working set, reconstructing their
    /// gradients before termination.
    pub shrinking: bool,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            tol: 1e-3,
            max_iter: 100_000,
            cache_bytes: DEFAULT_CACHE_BYTES,
            shrinking: true,
        }
    }
}

/// Solver output: dual variables, bias term and solve statistics.
#[derive(Debug, Clone)]
pub struct SmoResult {
    /// Dual coefficients, one per training row; support vectors have
    /// `alpha > 0`.
    pub alpha: Vec<f64>,
    /// Bias: the decision function is `Σ α_i y_i K(x_i, x) − rho`.
    pub rho: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the KKT conditions reached `tol` before `max_iter`.
    pub converged: bool,
    /// In-sample decision values `f(x_i) = Σ_j α_j y_j K(x_j, x_i) − rho`,
    /// recovered from the final gradient (`f_i = y_i (G_i + 1) − rho`) so
    /// Platt calibration needs no kernel recomputation after training.
    pub decision_values: Vec<f64>,
    /// Kernel evaluations performed (diagonal + columns + reconstruction).
    pub kernel_evals: u64,
    /// Kernel-column cache hits (always 0 for [`solve_reference`]).
    pub cache_hits: u64,
    /// Kernel-column cache misses (always 0 for [`solve_reference`]).
    pub cache_misses: u64,
    /// Peak bytes of kernel storage held at any point during the solve.
    /// Bounded by `cache_bytes` for [`solve`]; `n² · 8` for
    /// [`solve_reference`].
    pub peak_cache_bytes: usize,
}

impl SmoResult {
    /// Cache hit rate in `[0, 1]`; `1.0` when no lookups were made.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn validate(x: &[Vec<f64>], y: &[f64]) {
    assert!(!x.is_empty(), "empty training set");
    assert_eq!(y.len(), x.len(), "label length mismatch");
    assert!(
        y.iter().all(|&v| v == 1.0 || v == -1.0),
        "labels must be ±1"
    );
}

/// LRU cache of full-length kernel columns, keyed by training-row index.
///
/// Columns are stored at full length `n` (indexed by original row), so
/// shrinking never forces a permutation of cached data. Eviction scans
/// resident columns for the least-recently-used stamp — an O(resident)
/// scan that is negligible next to the O(n · dim) kernel work a miss
/// already pays.
struct ColumnCache<'a> {
    x: &'a [Vec<f64>],
    kernel: &'a Kernel,
    cols: Vec<Option<Vec<f64>>>,
    stamp: Vec<u64>,
    resident: Vec<usize>,
    tick: u64,
    max_cols: usize,
    hits: u64,
    misses: u64,
    evals: u64,
    peak_cols: usize,
}

impl<'a> ColumnCache<'a> {
    fn new(x: &'a [Vec<f64>], kernel: &'a Kernel, cache_bytes: usize) -> Self {
        let n = x.len();
        let col_bytes = n * std::mem::size_of::<f64>();
        let max_cols = (cache_bytes / col_bytes.max(1)).max(2).min(n.max(2));
        Self {
            x,
            kernel,
            cols: vec![None; n],
            stamp: vec![0; n],
            resident: Vec::with_capacity(max_cols),
            tick: 0,
            max_cols,
            hits: 0,
            misses: 0,
            evals: 0,
            peak_cols: 0,
        }
    }

    fn touch(&mut self, i: usize) {
        self.tick += 1;
        self.stamp[i] = self.tick;
    }

    /// Make column `i` resident, never evicting `pinned`.
    fn ensure(&mut self, i: usize, pinned: usize) {
        if self.cols[i].is_some() {
            self.hits += 1;
            self.touch(i);
            return;
        }
        self.misses += 1;
        if self.resident.len() >= self.max_cols {
            let mut victim_pos = None;
            let mut victim_stamp = u64::MAX;
            for (pos, &r) in self.resident.iter().enumerate() {
                if r != pinned && self.stamp[r] < victim_stamp {
                    victim_stamp = self.stamp[r];
                    victim_pos = Some(pos);
                }
            }
            if let Some(pos) = victim_pos {
                let evicted = self.resident.swap_remove(pos);
                self.cols[evicted] = None;
            }
        }
        let xi = &self.x[i];
        let col: Vec<f64> = self.x.iter().map(|xj| self.kernel.eval(xi, xj)).collect();
        self.evals += self.x.len() as u64;
        self.cols[i] = Some(col);
        self.resident.push(i);
        self.peak_cols = self.peak_cols.max(self.resident.len());
        self.touch(i);
    }

    fn get(&mut self, i: usize) -> &[f64] {
        self.ensure(i, usize::MAX);
        self.cols[i].as_deref().unwrap()
    }

    /// Fetch two columns at once; loading the second never evicts the
    /// first.
    fn get_pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]) {
        self.ensure(i, usize::MAX);
        self.ensure(j, i);
        (
            self.cols[i].as_deref().unwrap(),
            self.cols[j].as_deref().unwrap(),
        )
    }

    fn peak_bytes(&self) -> usize {
        self.peak_cols * self.x.len() * std::mem::size_of::<f64>()
    }
}

/// WSS 2 (Fan–Chen–Lin) over the active set. Returns the working pair,
/// or `None` when the maximal KKT violation is below `tol` (converged on
/// the active set).
#[allow(clippy::too_many_arguments)]
fn select_working_set(
    active: &[usize],
    y: &[f64],
    alpha: &[f64],
    grad: &[f64],
    diag: &[f64],
    c: f64,
    tol: f64,
    cache: &mut ColumnCache,
) -> Option<(usize, usize)> {
    // i: maximal −y_t G_t over I_up.
    let mut gmax = f64::NEG_INFINITY;
    let mut i_sel = usize::MAX;
    for &t in active {
        if y[t] == 1.0 {
            if alpha[t] < c && -grad[t] >= gmax {
                gmax = -grad[t];
                i_sel = t;
            }
        } else if alpha[t] > 0.0 && grad[t] >= gmax {
            gmax = grad[t];
            i_sel = t;
        }
    }
    if i_sel == usize::MAX {
        return None;
    }
    // j: second-order minimizer over I_low.
    let qii = diag[i_sel];
    let col_i = cache.get(i_sel);
    let mut gmax2 = f64::NEG_INFINITY;
    let mut j_sel = usize::MAX;
    let mut obj_min = f64::INFINITY;
    for &t in active {
        if y[t] == 1.0 {
            if alpha[t] > 0.0 {
                let grad_diff = gmax + grad[t];
                if grad[t] >= gmax2 {
                    gmax2 = grad[t];
                }
                if grad_diff > 0.0 {
                    // Curvature along the (i, t) direction:
                    // a_it = K_ii + K_tt − 2 K_it = ||φ(x_i) − φ(x_t)||².
                    let quad = (qii + diag[t] - 2.0 * col_i[t]).max(TAU);
                    let obj = -(grad_diff * grad_diff) / quad;
                    if obj <= obj_min {
                        obj_min = obj;
                        j_sel = t;
                    }
                }
            }
        } else if alpha[t] < c {
            let grad_diff = gmax - grad[t];
            if -grad[t] >= gmax2 {
                gmax2 = -grad[t];
            }
            if grad_diff > 0.0 {
                let quad = (qii + diag[t] - 2.0 * col_i[t]).max(TAU);
                let obj = -(grad_diff * grad_diff) / quad;
                if obj <= obj_min {
                    obj_min = obj;
                    j_sel = t;
                }
            }
        }
    }
    if j_sel == usize::MAX || gmax + gmax2 < tol {
        return None;
    }
    Some((i_sel, j_sel))
}

/// Recompute stale gradients of inactive variables directly from the
/// current support vectors: `G_t = Σ_{α_s > 0} y_t y_s K(x_t, x_s) α_s − 1`.
fn reconstruct_gradient(
    x: &[Vec<f64>],
    y: &[f64],
    kernel: &Kernel,
    alpha: &[f64],
    grad: &mut [f64],
    is_active: &[bool],
    evals: &mut u64,
) {
    let svs: Vec<usize> = (0..x.len()).filter(|&s| alpha[s] > 0.0).collect();
    for t in 0..x.len() {
        if is_active[t] {
            continue;
        }
        let mut g = -1.0;
        for &s in &svs {
            g += y[t] * y[s] * kernel.eval(&x[t], &x[s]) * alpha[s];
        }
        *evals += svs.len() as u64;
        grad[t] = g;
    }
}

/// libSVM's shrink predicate: a variable pinned at a bound whose gradient
/// says it will stay there can leave the working set.
fn be_shrunk(yt: f64, at: f64, gt: f64, c: f64, gmax1: f64, gmax2: f64) -> bool {
    if at >= c {
        if yt == 1.0 {
            -gt > gmax1
        } else {
            -gt > gmax2
        }
    } else if at <= 0.0 {
        if yt == 1.0 {
            gt > gmax2
        } else {
            gt > gmax1
        }
    } else {
        false
    }
}

/// Periodic shrinking pass. When the duality gap first drops within
/// `10 · tol`, gradients are reconstructed and the full set is
/// re-examined once (libSVM's "unshrinking") before shrinking again.
#[allow(clippy::too_many_arguments)]
fn do_shrinking(
    active: &mut Vec<usize>,
    is_active: &mut [bool],
    x: &[Vec<f64>],
    y: &[f64],
    kernel: &Kernel,
    alpha: &[f64],
    grad: &mut [f64],
    c: f64,
    tol: f64,
    unshrunk: &mut bool,
    evals: &mut u64,
) {
    let mut gmax1 = f64::NEG_INFINITY;
    let mut gmax2 = f64::NEG_INFINITY;
    for &t in active.iter() {
        if y[t] == 1.0 {
            if alpha[t] < c {
                gmax1 = gmax1.max(-grad[t]);
            }
            if alpha[t] > 0.0 {
                gmax2 = gmax2.max(grad[t]);
            }
        } else {
            if alpha[t] > 0.0 {
                gmax1 = gmax1.max(grad[t]);
            }
            if alpha[t] < c {
                gmax2 = gmax2.max(-grad[t]);
            }
        }
    }
    if !*unshrunk && gmax1 + gmax2 <= tol * 10.0 {
        *unshrunk = true;
        reconstruct_gradient(x, y, kernel, alpha, grad, is_active, evals);
        for flag in is_active.iter_mut() {
            *flag = true;
        }
        *active = (0..y.len()).collect();
    }
    active.retain(|&t| {
        let shrink = be_shrunk(y[t], alpha[t], grad[t], c, gmax1, gmax2);
        if shrink {
            is_active[t] = false;
        }
        !shrink
    });
}

/// Bias from the KKT conditions over the (fully reconstructed) gradient.
fn compute_rho(y: &[f64], alpha: &[f64], grad: &[f64], c: f64) -> f64 {
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..y.len() {
        let yg = y[t] * grad[t];
        if alpha[t] >= c {
            if y[t] == -1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] == 1.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    }
}

/// In-sample decision values from the final gradient:
/// `G_i = y_i Σ_j y_j α_j K_ij − 1  ⇒  f_i = y_i (G_i + 1) − rho`.
fn decision_values(y: &[f64], grad: &[f64], rho: f64) -> Vec<f64> {
    y.iter()
        .zip(grad)
        .map(|(&yt, &gt)| yt * (gt + 1.0) - rho)
        .collect()
}

/// Run SMO on training rows `x` with labels `y ∈ {−1, +1}` using the
/// LRU kernel-column cache and the shrinking heuristic.
///
/// # Panics
/// Panics if inputs are empty, lengths mismatch, or a label is not ±1.
pub fn solve(x: &[Vec<f64>], y: &[f64], kernel: &Kernel, params: &SmoParams) -> SmoResult {
    validate(x, y);
    let n = x.len();
    let c = params.c;

    let mut cache = ColumnCache::new(x, kernel, params.cache_bytes);
    let diag: Vec<f64> = x.iter().map(|xi| kernel.eval(xi, xi)).collect();
    let mut direct_evals = n as u64;

    let mut alpha = vec![0.0f64; n];
    // Gradient of the dual objective: G_i = Σ_j Q_ij α_j − 1. Only active
    // entries are maintained incrementally; shrunk entries go stale and
    // are reconstructed on demand.
    let mut grad = vec![-1.0f64; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut is_active = vec![true; n];

    let shrink_interval = n.clamp(1, 1000);
    let mut since_shrink = 0usize;
    let mut unshrunk = false;

    let mut iterations = 0;
    let mut converged = false;

    while iterations < params.max_iter {
        iterations += 1;
        since_shrink += 1;

        if params.shrinking && since_shrink >= shrink_interval {
            since_shrink = 0;
            do_shrinking(
                &mut active,
                &mut is_active,
                x,
                y,
                kernel,
                &alpha,
                &mut grad,
                c,
                params.tol,
                &mut unshrunk,
                &mut direct_evals,
            );
        }

        let selected =
            select_working_set(&active, y, &alpha, &grad, &diag, c, params.tol, &mut cache);
        let (i, j) = match selected {
            Some(pair) => pair,
            None => {
                if active.len() < n {
                    // Converged on the shrunk set: reconstruct and retry
                    // against the full problem before declaring victory.
                    reconstruct_gradient(
                        x,
                        y,
                        kernel,
                        &alpha,
                        &mut grad,
                        &is_active,
                        &mut direct_evals,
                    );
                    active = (0..n).collect();
                    is_active.iter_mut().for_each(|f| *f = true);
                    since_shrink = 0;
                    match select_working_set(
                        &active, y, &alpha, &grad, &diag, c, params.tol, &mut cache,
                    ) {
                        Some(pair) => pair,
                        None => {
                            converged = true;
                            break;
                        }
                    }
                } else {
                    converged = true;
                    break;
                }
            }
        };

        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let (col_i, col_j) = cache.get_pair(i, j);

        // --- Two-variable analytic update with box clipping (libSVM) ---
        if y[i] != y[j] {
            // The feasible direction is e_i + e_j, whose curvature is
            // Q_ii + Q_jj + 2Q_ij = K_ii + K_jj − 2K_ij (Q_ij = −K_ij here).
            let quad = (diag[i] + diag[j] - 2.0 * col_i[j]).max(TAU);
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > 0.0 {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                }
            } else if alpha[j] > c {
                alpha[j] = c;
                alpha[i] = c + diff;
            }
        } else {
            let quad = (diag[i] + diag[j] - 2.0 * col_i[j]).max(TAU);
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = sum - c;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c {
                if alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = sum - c;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // --- Gradient maintenance over the active set ---
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            for &t in &active {
                grad[t] += y[t] * y[i] * col_i[t] * dai + y[t] * y[j] * col_j[t] * daj;
            }
        }
    }

    if active.len() < n {
        reconstruct_gradient(
            x,
            y,
            kernel,
            &alpha,
            &mut grad,
            &is_active,
            &mut direct_evals,
        );
    }

    let rho = compute_rho(y, &alpha, &grad, c);
    let decision_values = decision_values(y, &grad, rho);

    SmoResult {
        alpha,
        rho,
        iterations,
        converged,
        decision_values,
        kernel_evals: cache.evals + direct_evals,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        peak_cache_bytes: cache.peak_bytes(),
    }
}

/// Reference solver: materializes the full Gram matrix up front, exactly
/// as the original implementation did. `O(n²)` memory — kept as the
/// ground truth for equivalence tests and benchmarks, not for production
/// training.
///
/// # Panics
/// Panics if inputs are empty, lengths mismatch, or a label is not ±1.
pub fn solve_reference(
    x: &[Vec<f64>],
    y: &[f64],
    kernel: &Kernel,
    params: &SmoParams,
) -> SmoResult {
    validate(x, y);
    let n = x.len();

    // Full Gram matrix (row-major, symmetric).
    let mut k = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&x[i], &x[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    let kernel_evals = (n * (n + 1) / 2) as u64;
    let q = |i: usize, j: usize| y[i] * y[j] * k[i * n + j];

    let c = params.c;
    let mut alpha = vec![0.0f64; n];
    // Gradient of the dual objective: G_i = Σ_j Q_ij α_j − 1.
    let mut grad = vec![-1.0f64; n];

    let mut iterations = 0;
    let mut converged = false;

    while iterations < params.max_iter {
        iterations += 1;

        // --- Working-set selection (WSS 2, Fan–Chen–Lin) ---
        // i: maximal −y_t G_t over I_up.
        let mut gmax = f64::NEG_INFINITY;
        let mut i_sel = usize::MAX;
        for t in 0..n {
            if y[t] == 1.0 {
                if alpha[t] < c && -grad[t] >= gmax {
                    gmax = -grad[t];
                    i_sel = t;
                }
            } else if alpha[t] > 0.0 && grad[t] >= gmax {
                gmax = grad[t];
                i_sel = t;
            }
        }
        // j: second-order minimizer over I_low.
        let mut gmax2 = f64::NEG_INFINITY;
        let mut j_sel = usize::MAX;
        let mut obj_min = f64::INFINITY;
        if i_sel != usize::MAX {
            let qii = k[i_sel * n + i_sel];
            for t in 0..n {
                if y[t] == 1.0 {
                    if alpha[t] > 0.0 {
                        let grad_diff = gmax + grad[t];
                        if grad[t] >= gmax2 {
                            gmax2 = grad[t];
                        }
                        if grad_diff > 0.0 {
                            let quad = (qii + k[t * n + t] - 2.0 * k[i_sel * n + t]).max(TAU);
                            let obj = -(grad_diff * grad_diff) / quad;
                            if obj <= obj_min {
                                obj_min = obj;
                                j_sel = t;
                            }
                        }
                    }
                } else if alpha[t] < c {
                    let grad_diff = gmax - grad[t];
                    if -grad[t] >= gmax2 {
                        gmax2 = -grad[t];
                    }
                    if grad_diff > 0.0 {
                        let quad = (qii + k[t * n + t] - 2.0 * k[i_sel * n + t]).max(TAU);
                        let obj = -(grad_diff * grad_diff) / quad;
                        if obj <= obj_min {
                            obj_min = obj;
                            j_sel = t;
                        }
                    }
                }
            }
        }

        if i_sel == usize::MAX || j_sel == usize::MAX || gmax + gmax2 < params.tol {
            converged = true;
            break;
        }

        let (i, j) = (i_sel, j_sel);
        let old_ai = alpha[i];
        let old_aj = alpha[j];

        // --- Two-variable analytic update with box clipping (libSVM) ---
        if y[i] != y[j] {
            // The feasible direction is e_i + e_j, whose curvature is
            // Q_ii + Q_jj + 2Q_ij = K_ii + K_jj − 2K_ij (Q_ij = −K_ij here).
            let quad = (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]).max(TAU);
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > 0.0 {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                }
            } else if alpha[j] > c {
                alpha[j] = c;
                alpha[i] = c + diff;
            }
        } else {
            let quad = (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]).max(TAU);
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c {
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = sum - c;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c {
                if alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = sum - c;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // --- Gradient maintenance ---
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            #[allow(clippy::needless_range_loop)] // t indexes grad AND the Q closure
            for t in 0..n {
                grad[t] += q(t, i) * dai + q(t, j) * daj;
            }
        }
    }

    let rho = compute_rho(y, &alpha, &grad, c);
    let decision_values = decision_values(y, &grad, rho);

    SmoResult {
        alpha,
        rho,
        iterations,
        converged,
        decision_values,
        kernel_evals,
        cache_hits: 0,
        cache_misses: 0,
        peak_cache_bytes: n * n * std::mem::size_of::<f64>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(x: &[Vec<f64>], y: &[f64], r: &SmoResult, kernel: &Kernel, point: &[f64]) -> f64 {
        let mut f = -r.rho;
        for (i, xi) in x.iter().enumerate() {
            if r.alpha[i] > 0.0 {
                f += r.alpha[i] * y[i] * kernel.eval(xi, point);
            }
        }
        f
    }

    #[test]
    fn separable_problem_classifies_training_data() {
        let x = vec![
            vec![-2.0],
            vec![-1.5],
            vec![-1.0],
            vec![1.0],
            vec![1.5],
            vec![2.0],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let kernel = Kernel::Linear;
        let r = solve(&x, &y, &kernel, &SmoParams::default());
        assert!(r.converged);
        for (xi, &yi) in x.iter().zip(&y) {
            let f = decision(&x, &y, &r, &kernel, xi);
            assert!(f * yi > 0.0, "point {xi:?} misclassified (f = {f})");
        }
    }

    #[test]
    fn equality_constraint_holds() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) / 10.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let kernel = Kernel::Rbf { gamma: 1.0 };
        let r = solve(&x, &y, &kernel, &SmoParams::default());
        let balance: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        assert!(balance.abs() < 1e-9, "yᵀα = {balance}");
    }

    #[test]
    fn alphas_respect_box_constraints() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if (i % 10) < 5 { -1.0 } else { 1.0 })
            .collect();
        let params = SmoParams {
            c: 0.5,
            ..Default::default()
        };
        let r = solve(&x, &y, &Kernel::Rbf { gamma: 0.5 }, &params);
        for &a in &r.alpha {
            assert!(
                (-1e-12..=0.5 + 1e-12).contains(&a),
                "alpha {a} outside [0, C]"
            );
        }
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is the canonical non-linearly-separable problem.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![-1.0, 1.0, 1.0, -1.0];
        let kernel = Kernel::Rbf { gamma: 2.0 };
        let r = solve(
            &x,
            &y,
            &kernel,
            &SmoParams {
                c: 10.0,
                ..Default::default()
            },
        );
        for (xi, &yi) in x.iter().zip(&y) {
            let f = decision(&x, &y, &r, &kernel, xi);
            assert!(f * yi > 0.0, "XOR point {xi:?} misclassified");
        }
    }

    #[test]
    fn single_point_per_class_converges() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let r = solve(&x, &y, &Kernel::Linear, &SmoParams::default());
        assert!(r.converged);
        assert!(r.alpha[0] > 0.0 && r.alpha[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        solve(&[vec![0.0]], &[2.0], &Kernel::Linear, &SmoParams::default());
    }

    #[test]
    fn noisy_labels_saturate_at_c() {
        // One flipped label inside the other class forces alpha = C there.
        let x = vec![
            vec![-2.0],
            vec![-1.8],
            vec![-1.9],
            vec![2.0],
            vec![1.9],
            vec![-1.85],
        ];
        let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0]; // last point is mislabeled
        let params = SmoParams {
            c: 1.0,
            ..Default::default()
        };
        let r = solve(&x, &y, &Kernel::Linear, &params);
        assert!(r.converged);
        assert!(
            (r.alpha[5] - params.c).abs() < 1e-9,
            "outlier should hit the box bound"
        );
    }

    /// Deterministic interleaved two-class spiral, hard enough that SMO
    /// runs well past the shrink interval.
    fn spiral(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / n as f64 * 6.0;
            let (s, c) = (t + if i % 2 == 0 { 0.0 } else { 0.5 }).sin_cos();
            x.push(vec![t * c * 0.3, t * s * 0.3]);
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        (x, y)
    }

    #[test]
    fn cached_solver_is_bit_identical_to_reference_without_shrinking() {
        // With every column cached and shrinking off, the LRU solver
        // performs the reference solver's arithmetic in the same order.
        let (x, y) = spiral(60);
        let kernel = Kernel::Rbf { gamma: 2.0 };
        let params = SmoParams {
            c: 5.0,
            shrinking: false,
            ..Default::default()
        };
        let cached = solve(&x, &y, &kernel, &params);
        let reference = solve_reference(&x, &y, &kernel, &params);
        assert_eq!(cached.converged, reference.converged);
        assert_eq!(cached.iterations, reference.iterations);
        assert_eq!(cached.rho.to_bits(), reference.rho.to_bits());
        for (a, b) in cached.alpha.iter().zip(&reference.alpha) {
            assert_eq!(a.to_bits(), b.to_bits(), "alpha mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn shrinking_solver_matches_reference_within_tolerance() {
        // Shrinking changes the iterate path (the dual solution is not
        // unique at tol), so demand agreement up to marginal SVs: every
        // solidly-supported vector of one solver must be a support
        // vector of the other, and rho must agree to ~tol.
        for c in [1.0, 5.0, 100.0] {
            let (x, y) = spiral(60);
            let kernel = Kernel::Rbf { gamma: 2.0 };
            let params = SmoParams {
                c,
                ..Default::default()
            };
            let a = solve(&x, &y, &kernel, &params);
            let r = solve_reference(&x, &y, &kernel, &params);
            assert!(a.converged && r.converged);
            assert!(
                (a.rho - r.rho).abs() < 1e-3,
                "c={c}: rho {} vs {}",
                a.rho,
                r.rho
            );
            // The decision function is unique at the optimum even when
            // the dual is degenerate (near-duplicate rows at large C let
            // alpha mass shift between equivalent SVs), so compare f.
            for (fa, fr) in a.decision_values.iter().zip(&r.decision_values) {
                assert!((fa - fr).abs() < 1e-2, "c={c}: decision drift {fa} vs {fr}");
            }
            let solid = 5e-2 * c;
            for i in 0..x.len() {
                if a.alpha[i] > solid {
                    assert!(r.alpha[i] > 0.0, "c={c}: row {i} solid only in cached");
                }
                if r.alpha[i] > solid {
                    assert!(a.alpha[i] > 0.0, "c={c}: row {i} solid only in reference");
                }
            }
        }
    }

    #[test]
    fn tiny_cache_budget_still_converges_to_same_solution() {
        let (x, y) = spiral(50);
        let kernel = Kernel::Rbf { gamma: 2.0 };
        let roomy = SmoParams {
            c: 5.0,
            ..Default::default()
        };
        // Budget below one column: clamps to the two-column minimum.
        let tiny = SmoParams {
            cache_bytes: 1,
            ..roomy
        };
        let a = solve(&x, &y, &kernel, &roomy);
        let b = solve(&x, &y, &kernel, &tiny);
        assert!(b.converged);
        assert!(
            b.peak_cache_bytes <= 2 * x.len() * std::mem::size_of::<f64>(),
            "peak {} exceeds two columns",
            b.peak_cache_bytes
        );
        assert!(b.cache_misses > b.cache_hits / 100, "stats look wrong");
        assert!((a.rho - b.rho).abs() < 1e-6);
        for (ai, bi) in a.alpha.iter().zip(&b.alpha) {
            assert!((ai - bi).abs() < 1e-5, "alpha drift: {ai} vs {bi}");
        }
    }

    #[test]
    fn peak_cache_respects_configured_budget() {
        let (x, y) = spiral(80);
        let budget = 10 * 80 * std::mem::size_of::<f64>(); // ten columns
        let params = SmoParams {
            c: 5.0,
            cache_bytes: budget,
            ..Default::default()
        };
        let r = solve(&x, &y, &Kernel::Rbf { gamma: 2.0 }, &params);
        assert!(
            r.peak_cache_bytes <= budget,
            "peak {} over budget {budget}",
            r.peak_cache_bytes
        );
        assert!(r.converged);
    }

    #[test]
    fn shrinking_path_agrees_with_unshrunk_solve() {
        // Small tolerance + saturating C forces many iterations, so the
        // shrink interval is crossed and bounded variables get dropped.
        let (x, y) = spiral(40);
        let kernel = Kernel::Rbf { gamma: 4.0 };
        let base = SmoParams {
            c: 100.0,
            tol: 1e-5,
            ..Default::default()
        };
        let no_shrink = SmoParams {
            shrinking: false,
            ..base
        };
        let a = solve(&x, &y, &kernel, &base);
        let b = solve(&x, &y, &kernel, &no_shrink);
        assert!(a.converged && b.converged);
        assert!((a.rho - b.rho).abs() < 1e-4, "rho {} vs {}", a.rho, b.rho);
        let sv_a: Vec<usize> = (0..x.len()).filter(|&i| a.alpha[i] > 1e-8).collect();
        let sv_b: Vec<usize> = (0..x.len()).filter(|&i| b.alpha[i] > 1e-8).collect();
        assert_eq!(sv_a, sv_b, "support-vector sets diverged");
    }

    #[test]
    fn decision_values_match_direct_computation() {
        let (x, y) = spiral(30);
        let kernel = Kernel::Rbf { gamma: 1.0 };
        let r = solve(&x, &y, &kernel, &SmoParams::default());
        for (i, xi) in x.iter().enumerate() {
            let direct = decision(&x, &y, &r, &kernel, xi);
            assert!(
                (r.decision_values[i] - direct).abs() < 1e-6,
                "row {i}: gradient-recovered {} vs direct {direct}",
                r.decision_values[i]
            );
        }
    }

    #[test]
    fn reference_reports_full_gram_storage() {
        let (x, y) = spiral(20);
        let r = solve_reference(&x, &y, &Kernel::Rbf { gamma: 1.0 }, &SmoParams::default());
        assert_eq!(r.peak_cache_bytes, 20 * 20 * 8);
        assert_eq!(r.kernel_evals, (20 * 21 / 2) as u64);
        assert_eq!(r.cache_hits + r.cache_misses, 0);
    }
}
