//! The compiled prediction engine: one-vs-one SVM inference flattened
//! into a cache-friendly, zero-allocation form.
//!
//! [`CompiledSvm`] is built from a trained [`SvmModel`] at install time
//! (or lazily on first use after deserialization — the serde artifact
//! keeps `SvmModel` as the source of truth). Compilation deduplicates
//! the support vectors shared across pair machines into one contiguous
//! row-major matrix with precomputed per-row squared norms; each machine
//! reduces to `(pos, neg, rho, platt, sparse coefficient slice over
//! unique-SV indices)`. A single predict computes each unique kernel
//! value exactly once, then every decision value is a short sparse dot
//! product. Decisions are computed once per point and shared by voting,
//! tie-breaking, [`CompiledSvm::probabilities_with`] and ranking, with
//! all intermediates living in a caller-provided [`SvmScratch`] so
//! steady-state prediction performs zero allocations.
//!
//! **Determinism contract.** Kernel values are evaluated with the same
//! [`Kernel::eval`] routine the reference path uses, over rows of the
//! flat matrix, and per-machine decision sums visit support vectors in
//! the reference order — so decisions, posteriors (via the shared
//! [`couple_into`] core) and rankings are bit-identical to `SvmModel`'s.
//! The precomputed squared norms would permit the classic
//! `‖x‖² + ‖sv‖² − 2·x·sv` RBF expansion, but that expansion rounds
//! differently at the ulp level and would break the bit-equality
//! guarantee the equivalence tests pin down; with Nitro's low-dimensional
//! feature vectors the `exp` dominates the distance loop anyway. The
//! norms are retained (see [`CompiledSvm::sq_norms`]) for audit
//! invariants and for kernels that may exploit them later.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::kernel::Kernel;
use crate::svm::coupling::{couple_into, CoupleWork};
use crate::svm::multiclass::SvmModel;
use crate::svm::platt::Platt;

/// One pair machine in compiled form: metadata plus a sparse coefficient
/// slice over the shared unique-SV matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMachine {
    /// Class mapped to the machine's `+1` label.
    pub pos: usize,
    /// Class mapped to the machine's `−1` label.
    pub neg: usize,
    /// Bias term.
    pub rho: f64,
    /// Platt calibration mapping decision values to probabilities.
    pub platt: Platt,
    /// Row indices into the unique-SV matrix, in reference SV order.
    pub sv_idx: Vec<u32>,
    /// `α_s y_s` for each referenced support vector.
    pub coef: Vec<f64>,
}

/// Caller-provided scratch for compiled prediction. All buffers grow to
/// the model's working size on first use and are reused afterwards;
/// steady-state calls allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SvmScratch {
    /// Kernel values against each unique support vector.
    kvals: Vec<f64>,
    /// Per-machine decision values for the current point.
    decisions: Vec<f64>,
    /// Per-class vote counts.
    votes: Vec<usize>,
    /// Flat `ka × ka` pairwise probability matrix.
    r: Vec<f64>,
    /// Coupled posterior over present classes.
    p_active: Vec<f64>,
    /// Posterior scattered over all classes.
    probs: Vec<f64>,
    /// Wu–Lin–Weng iteration buffers.
    couple_work: CoupleWork,
    /// Cumulative kernel evaluations across calls; the dispatch path
    /// drains this into the `ml.predict.kernel_evals` counter.
    pub kernel_evals: u64,
}

impl SvmScratch {
    /// Posterior from the most recent `probabilities_with`/`predict_with`
    /// call that computed one (length `n_classes`).
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }
}

/// A compiled one-vs-one SVM: deduplicated flat support vectors plus
/// sparse per-machine coefficient slices. See the module docs for the
/// layout and determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSvm {
    n_classes: usize,
    fallback: usize,
    dim: usize,
    kernel: Kernel,
    /// Unique support vectors, row-major `n_unique × dim`.
    sv: Vec<f64>,
    /// Squared L2 norm of each unique support vector.
    sq_norms: Vec<f64>,
    machines: Vec<CompiledMachine>,
    /// Classes present in training, ascending.
    active: Vec<usize>,
    /// Class → index into `active` (or `usize::MAX` if absent).
    idx_of: Vec<usize>,
}

impl CompiledSvm {
    /// Compile a trained model. Support vectors appearing in several pair
    /// machines (bit-identical rows) are stored once.
    pub fn compile(model: &SvmModel) -> Self {
        let src = model.machines();
        let n_classes = model.n_classes();
        let kernel = src.first().map(|m| m.svm.kernel).unwrap_or(Kernel::Linear);
        let dim = src
            .iter()
            .flat_map(|m| m.svm.support_vectors.first())
            .map(|sv| sv.len())
            .next()
            .unwrap_or(0);

        let mut index: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut sv = Vec::new();
        let mut sq_norms: Vec<f64> = Vec::new();
        let mut machines = Vec::with_capacity(src.len());
        for pm in src {
            let mut sv_idx = Vec::with_capacity(pm.svm.support_vectors.len());
            for row in &pm.svm.support_vectors {
                // Key on the exact bit pattern: dedup must never merge
                // rows that differ even in the last ulp.
                let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
                let next_id = sq_norms.len() as u32;
                let id = *index.entry(key).or_insert_with(|| {
                    sv.extend_from_slice(row);
                    sq_norms.push(row.iter().map(|v| v * v).sum());
                    next_id
                });
                sv_idx.push(id);
            }
            machines.push(CompiledMachine {
                pos: pm.pos,
                neg: pm.neg,
                rho: pm.svm.rho,
                platt: pm.platt,
                sv_idx,
                coef: pm.svm.coef.clone(),
            });
        }

        let present = model.present();
        let active: Vec<usize> = (0..n_classes).filter(|&c| present[c]).collect();
        let mut idx_of = vec![usize::MAX; n_classes];
        for (i, &c) in active.iter().enumerate() {
            idx_of[c] = i;
        }

        Self {
            n_classes,
            fallback: model.fallback(),
            dim,
            kernel,
            sv,
            sq_norms,
            machines,
            active,
            idx_of,
        }
    }

    /// Number of unique support vectors in the flat matrix.
    pub fn n_unique_svs(&self) -> usize {
        self.sq_norms.len()
    }

    /// Total support-vector references across machines (what the
    /// reference path stores — and evaluates — per prediction).
    pub fn total_sv_refs(&self) -> usize {
        self.machines.iter().map(|m| m.sv_idx.len()).sum()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature dimensionality of the support vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Kernel the machines were trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The compiled pair machines.
    pub fn machines(&self) -> &[CompiledMachine] {
        &self.machines
    }

    /// Precomputed squared norms of the unique support vectors.
    pub fn sq_norms(&self) -> &[f64] {
        &self.sq_norms
    }

    /// A unique support-vector row.
    pub fn sv_row(&self, r: usize) -> &[f64] {
        &self.sv[r * self.dim..(r + 1) * self.dim]
    }

    /// Evaluate each unique kernel value once, then every machine's
    /// decision as a sparse dot product (reference summation order).
    fn compute_decisions(&self, x: &[f64], s: &mut SvmScratch) {
        s.kvals.clear();
        for r in 0..self.sq_norms.len() {
            s.kvals.push(self.kernel.eval(self.sv_row(r), x));
        }
        s.kernel_evals += self.sq_norms.len() as u64;
        s.decisions.clear();
        for m in &self.machines {
            let mut f = -m.rho;
            for (&idx, &c) in m.sv_idx.iter().zip(&m.coef) {
                f += c * s.kvals[idx as usize];
            }
            s.decisions.push(f);
        }
    }

    /// Posterior from already-computed decisions (mirrors the reference
    /// `SvmModel::probabilities` exactly, through the shared coupling
    /// core). Leaves the result in `s.probs`.
    fn probabilities_from_decisions(&self, s: &mut SvmScratch) {
        let ka = self.active.len();
        s.probs.clear();
        s.probs.resize(self.n_classes, 0.0);
        if ka == 0 {
            return;
        }
        if ka == 1 {
            s.probs[self.active[0]] = 1.0;
            return;
        }
        s.r.clear();
        s.r.resize(ka * ka, 0.5);
        for i in 0..ka {
            s.r[i * ka + i] = 0.0;
        }
        for (m, &d) in self.machines.iter().zip(&s.decisions) {
            // Clamp away from 0/1 as libSVM does, to keep coupling stable.
            let p = m.platt.prob(d).clamp(1e-7, 1.0 - 1e-7);
            let (i, j) = (self.idx_of[m.pos], self.idx_of[m.neg]);
            s.r[i * ka + j] = p;
            s.r[j * ka + i] = 1.0 - p;
        }
        couple_into(&s.r, ka, &mut s.p_active, &mut s.couple_work);
        for (i, &c) in self.active.iter().enumerate() {
            s.probs[c] = s.p_active[i];
        }
    }

    /// Predict the class of a (pre-scaled) point: pairwise voting with
    /// posterior tie-breaking, decisions computed once. Bit-identical to
    /// [`SvmModel::predict`]; zero allocations at steady state.
    pub fn predict_with(&self, x: &[f64], s: &mut SvmScratch) -> usize {
        if self.machines.is_empty() {
            return self.fallback;
        }
        self.compute_decisions(x, s);
        s.votes.clear();
        s.votes.resize(self.n_classes, 0);
        for (m, &d) in self.machines.iter().zip(&s.decisions) {
            if d >= 0.0 {
                s.votes[m.pos] += 1;
            } else {
                s.votes[m.neg] += 1;
            }
        }
        let max_votes = *s.votes.iter().max().unwrap();
        let mut first_tied = usize::MAX;
        let mut n_tied = 0usize;
        for (c, &v) in s.votes.iter().enumerate() {
            if v == max_votes {
                n_tied += 1;
                if first_tied == usize::MAX {
                    first_tied = c;
                }
            }
        }
        if n_tied == 1 {
            return first_tied;
        }
        // Break ties with the coupled posterior. `>=` on an ascending
        // scan reproduces `Iterator::max_by`, which keeps the last of
        // equally-maximal elements.
        self.probabilities_from_decisions(s);
        let mut best = self.fallback;
        let mut best_p = f64::NEG_INFINITY;
        let mut seen = false;
        for (c, &v) in s.votes.iter().enumerate() {
            if v == max_votes {
                let pc = s.probs[c];
                if !seen || pc >= best_p {
                    best = c;
                    best_p = pc;
                    seen = true;
                }
            }
        }
        best
    }

    /// Class posterior for a (pre-scaled) point, length `n_classes`.
    /// Classes absent from training receive probability 0. Bit-identical
    /// to [`SvmModel::probabilities`]; zero allocations at steady state.
    pub fn probabilities_with<'s>(&self, x: &[f64], s: &'s mut SvmScratch) -> &'s [f64] {
        self.compute_decisions(x, s);
        self.probabilities_from_decisions(s);
        &s.probs
    }

    /// Classes ordered from most to least probable (ties toward the lower
    /// class index), written into `out`. Matches the reference
    /// `TrainedModel::rank` ordering bit-for-bit.
    pub fn rank_into(&self, x: &[f64], s: &mut SvmScratch, out: &mut Vec<usize>) {
        self.probabilities_with(x, s);
        let p = &s.probs;
        out.clear();
        out.extend(0..p.len());
        out.sort_by(|&a, &b| {
            p[b].partial_cmp(&p[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
    }

    /// Allocating convenience wrapper over [`CompiledSvm::predict_with`].
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_with(x, &mut SvmScratch::default())
    }

    /// Allocating convenience wrapper over
    /// [`CompiledSvm::probabilities_with`].
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        let mut s = SvmScratch::default();
        self.probabilities_with(x, &mut s);
        s.probs
    }
}

/// Interior cell holding the lazily-compiled engine inside [`SvmModel`].
///
/// Excluded from serialization (the `SvmModel` fields are the source of
/// truth); deserialized models recompile on first use. Cloning clones
/// any already-compiled engine; equality is vacuous because the cell is
/// a pure cache of the surrounding model's fields.
#[derive(Debug, Default)]
pub struct CompiledCell(pub(crate) OnceLock<CompiledSvm>);

impl CompiledCell {
    /// The compiled engine, building it on first call.
    pub fn get_or_compile(&self, model: &SvmModel) -> &CompiledSvm {
        self.0.get_or_init(|| CompiledSvm::compile(model))
    }
}

impl Clone for CompiledCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(compiled) = self.0.get() {
            let _ = cell.set(compiled.clone());
        }
        Self(cell)
    }
}

impl PartialEq for CompiledCell {
    fn eq(&self, _other: &Self) -> bool {
        // A cache derived from the model's own fields carries no identity
        // of its own.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::svm::smo::SmoParams;

    fn blob_dataset() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..10 {
            let t = i as f64 / 10.0;
            d.push(vec![-1.0 + t * 0.1, -1.0 - t * 0.1], 0);
            d.push(vec![1.0 + t * 0.1, -1.0 + t * 0.1], 1);
            d.push(vec![0.0 + t * 0.1, 1.0 + t * 0.1], 2);
        }
        d
    }

    fn trained() -> SvmModel {
        SvmModel::train(
            &blob_dataset(),
            Kernel::Rbf { gamma: 1.0 },
            &SmoParams::default(),
        )
    }

    #[test]
    fn dedup_shrinks_storage_below_total_references() {
        let model = trained();
        let compiled = CompiledSvm::compile(&model);
        let total: usize = model
            .machines()
            .iter()
            .map(|m| m.svm.support_vectors.len())
            .sum();
        assert_eq!(compiled.total_sv_refs(), total);
        assert!(
            compiled.n_unique_svs() <= total,
            "dedup can never grow the matrix"
        );
        // Every training row sits in two of the three pair machines, so
        // real sharing must occur on this dataset.
        assert!(
            compiled.n_unique_svs() < total,
            "expected shared support vectors across machines"
        );
    }

    #[test]
    fn sq_norms_match_rows() {
        let compiled = CompiledSvm::compile(&trained());
        for r in 0..compiled.n_unique_svs() {
            let row = compiled.sv_row(r);
            let expect: f64 = row.iter().map(|v| v * v).sum();
            assert_eq!(compiled.sq_norms()[r].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn predictions_match_reference_bitwise() {
        let d = blob_dataset();
        let model = trained();
        let compiled = CompiledSvm::compile(&model);
        let mut s = SvmScratch::default();
        let probe = [
            vec![0.0, 0.0],
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![0.05, 0.95],
            vec![0.5, -0.5],
        ];
        for x in d.x.iter().chain(probe.iter()) {
            assert_eq!(compiled.predict_with(x, &mut s), model.predict(x));
            let p_ref = model.probabilities(x);
            let p_new = compiled.probabilities_with(x, &mut s);
            for (a, b) in p_new.iter().zip(&p_ref) {
                assert_eq!(a.to_bits(), b.to_bits(), "posterior drift at {x:?}");
            }
        }
    }

    #[test]
    fn kernel_eval_counter_accumulates() {
        let compiled = CompiledSvm::compile(&trained());
        let mut s = SvmScratch::default();
        compiled.predict_with(&[0.1, 0.2], &mut s);
        let once = s.kernel_evals;
        assert_eq!(once, compiled.n_unique_svs() as u64);
        compiled.predict_with(&[0.3, -0.2], &mut s);
        assert_eq!(s.kernel_evals, 2 * once);
    }

    #[test]
    fn single_class_model_compiles_to_fallback() {
        let mut d = Dataset::new(4);
        d.push(vec![1.0], 2);
        d.push(vec![2.0], 2);
        let model = SvmModel::train(&d, Kernel::Linear, &SmoParams::default());
        let compiled = CompiledSvm::compile(&model);
        let mut s = SvmScratch::default();
        assert_eq!(compiled.predict_with(&[5.0], &mut s), 2);
        assert_eq!(compiled.probabilities_with(&[5.0], &mut s)[2], 1.0);
    }

    #[test]
    fn rank_matches_reference_order() {
        let d = blob_dataset();
        let model = trained();
        let compiled = CompiledSvm::compile(&model);
        let mut s = SvmScratch::default();
        let mut order = Vec::new();
        for x in &d.x {
            compiled.rank_into(x, &mut s, &mut order);
            let p = model.probabilities(x);
            let mut expect: Vec<usize> = (0..p.len()).collect();
            expect.sort_by(|&a, &b| {
                p[b].partial_cmp(&p[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            assert_eq!(order, expect);
        }
    }

    #[test]
    fn compiled_cell_clone_preserves_compiled_state() {
        let model = trained();
        let _ = model.compiled(); // force compile
        let cloned = model.clone();
        // The clone either carried the compiled engine or recompiles to
        // an equal one; both must predict identically.
        assert_eq!(
            cloned.compiled().n_unique_svs(),
            model.compiled().n_unique_svs()
        );
        assert_eq!(model.predict(&[0.2, 0.1]), cloned.predict(&[0.2, 0.1]));
    }
}
