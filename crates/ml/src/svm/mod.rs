//! Support Vector Machine classification (the paper's default model).
//!
//! The stack mirrors libSVM, which the paper uses directly (§II-A):
//!
//! * [`smo`] — the Sequential Minimal Optimization solver for the binary
//!   C-SVC dual, with second-order working-set selection (Fan, Chen & Lin,
//!   JMLR 2005 — the selection rule libSVM ships).
//! * [`binary`] — a trained binary machine: support vectors, coefficients
//!   and bias.
//! * [`platt`] — Platt sigmoid calibration of decision values into
//!   probabilities (Lin, Lin & Weng's robust Newton variant).
//! * [`coupling`] — Wu–Lin–Weng pairwise coupling, combining the
//!   one-vs-one probabilities into a single class posterior.
//! * [`multiclass`] — the one-vs-one ensemble that the rest of Nitro
//!   consumes; posteriors feed the Best-vs-Second-Best active-learning
//!   heuristic (paper §III-B).
//! * [`compiled`] — the compiled prediction engine: unique support
//!   vectors deduplicated across pair machines into one flat matrix,
//!   decisions computed once per point and shared by voting, posterior
//!   and rank, with zero steady-state allocations.

pub mod binary;
pub mod compiled;
pub mod coupling;
pub mod multiclass;
pub mod platt;
pub mod smo;

pub use binary::BinarySvm;
pub use compiled::{CompiledSvm, SvmScratch};
pub use multiclass::{PairMachine, SvmModel};
pub use platt::Platt;
pub use smo::{solve, solve_reference, SmoParams, SmoResult};
