//! A trained binary SVM: support vectors, coefficients and bias.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::svm::smo::{solve, SmoParams};

/// A binary C-SVC machine produced by [`BinarySvm::train`].
///
/// Only support vectors (training rows with `α > 0`) are retained; the
/// decision function is `f(x) = Σ coef_s · K(sv_s, x) − rho`, with
/// `coef_s = α_s y_s`. Positive `f` predicts the `+1` class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySvm {
    /// Support vectors (copies of the relevant training rows).
    pub support_vectors: Vec<Vec<f64>>,
    /// `α_s y_s` for each support vector.
    pub coef: Vec<f64>,
    /// Bias term.
    pub rho: f64,
    /// Kernel the machine was trained with.
    pub kernel: Kernel,
}

impl BinarySvm {
    /// Train on rows `x` with labels `y ∈ {−1, +1}`.
    pub fn train(x: &[Vec<f64>], y: &[f64], kernel: Kernel, params: &SmoParams) -> Self {
        Self::train_result(x, y, kernel, params).0
    }

    /// Train and also return the raw solver result, whose
    /// `decision_values` and cache statistics feed Platt calibration and
    /// training observability without recomputing kernels.
    pub fn train_result(
        x: &[Vec<f64>],
        y: &[f64],
        kernel: Kernel,
        params: &SmoParams,
    ) -> (Self, crate::svm::smo::SmoResult) {
        let result = solve(x, y, &kernel, params);
        let mut support_vectors = Vec::new();
        let mut coef = Vec::new();
        for (i, &a) in result.alpha.iter().enumerate() {
            if a > 0.0 {
                support_vectors.push(x[i].clone());
                coef.push(a * y[i]);
            }
        }
        (
            Self {
                support_vectors,
                coef,
                rho: result.rho,
                kernel,
            },
            result,
        )
    }

    /// Signed decision value; the predicted label is its sign.
    pub fn decision(&self, point: &[f64]) -> f64 {
        let mut f = -self.rho;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coef) {
            f += c * self.kernel.eval(sv, point);
        }
        f
    }

    /// Predicted label in `{−1, +1}` (ties break positive).
    pub fn predict(&self, point: &[f64]) -> f64 {
        if self.decision(point) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of retained support vectors.
    pub fn n_support(&self) -> usize {
        self.support_vectors.len()
    }

    /// How far the retained coefficients are from satisfying the KKT box
    /// and equality constraints: `max(|Σ coef_s|, max_s(|coef_s| − c))`,
    /// clamped at zero. A sound solution for box bound `c` keeps every
    /// `|coef_s| = α_s` within `[0, c]` and the coefficients summing to
    /// zero, so residuals well above the solver tolerance indicate a
    /// corrupt or mis-parameterized artifact.
    pub fn kkt_residual(&self, c: f64) -> f64 {
        let sum: f64 = self.coef.iter().sum();
        let overflow = self
            .coef
            .iter()
            .map(|&v| v.abs() - c)
            .fold(0.0f64, f64::max);
        sum.abs().max(overflow).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_separable_data() {
        let x = vec![
            vec![-3.0, 0.0],
            vec![-2.0, 1.0],
            vec![2.0, -1.0],
            vec![3.0, 0.5],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let m = BinarySvm::train(&x, &y, Kernel::Linear, &SmoParams::default());
        assert_eq!(m.predict(&[-2.5, 0.0]), -1.0);
        assert_eq!(m.predict(&[2.5, 0.0]), 1.0);
        assert!(m.n_support() >= 2);
    }

    #[test]
    fn discards_non_support_vectors() {
        // Points far behind the margin should not be support vectors.
        let x = vec![vec![-10.0], vec![-1.0], vec![1.0], vec![10.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let m = BinarySvm::train(&x, &y, Kernel::Linear, &SmoParams::default());
        assert!(m.n_support() < 4, "expected the ±10 points to be dropped");
    }

    #[test]
    fn decision_is_continuous_and_signed() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let m = BinarySvm::train(&x, &y, Kernel::Rbf { gamma: 1.0 }, &SmoParams::default());
        assert!(m.decision(&[0.0]) < 0.0);
        assert!(m.decision(&[1.0]) > 0.0);
        // Midpoint should be near the boundary.
        assert!(m.decision(&[0.5]).abs() < 0.2);
    }

    #[test]
    fn serde_round_trip_preserves_decisions() {
        let x = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let m = BinarySvm::train(&x, &y, Kernel::Rbf { gamma: 0.5 }, &SmoParams::default());
        let j = serde_json::to_string(&m).unwrap();
        let back: BinarySvm = serde_json::from_str(&j).unwrap();
        let p = [1.3, 0.9];
        assert_eq!(m.decision(&p), back.decision(&p));
    }
}
