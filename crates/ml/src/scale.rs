//! Feature scaling to `[-1, 1]`.
//!
//! Paper §III-A: "The features are scaled to the range [-1, 1]" before the
//! RBF-kernel SVM is trained — the standard libSVM preprocessing. The same
//! scaler fitted on the training set is applied to every later input.

use serde::{Deserialize, Serialize};

/// Per-dimension min/max scaler mapping features into `[-1, 1]`.
///
/// Dimensions that were constant in the training data map to `0.0`.
/// Out-of-range values at prediction time extrapolate linearly (they are
/// *not* clamped), matching libSVM's `svm-scale`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Scaler {
    /// Fit a scaler on training rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged rows");
            for (d, &v) in row.iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        Self { mins, maxs }
    }

    /// Feature dimensionality this scaler was fitted for.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Per-dimension training minima (for auditing fitted ranges).
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-dimension training maxima (for auditing fitted ranges).
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Scale one feature vector into `[-1, 1]` (training range).
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(row.len());
        self.transform_into(row, &mut out);
        out
    }

    /// Scale one feature vector into `[-1, 1]`, writing into `out`
    /// (cleared first). The dispatch hot path reuses one buffer across
    /// calls so classification stops allocating per call.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        out.clear();
        for (d, &v) in row.iter().enumerate() {
            let span = self.maxs[d] - self.mins[d];
            out.push(if span <= 0.0 || !span.is_finite() {
                0.0
            } else {
                -1.0 + 2.0 * (v - self.mins[d]) / span
            });
        }
    }

    /// Scale many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Map a scaled vector back to original units (constant dimensions
    /// return their training value).
    pub fn inverse(&self, scaled: &[f64]) -> Vec<f64> {
        assert_eq!(scaled.len(), self.dim(), "dimension mismatch");
        scaled
            .iter()
            .enumerate()
            .map(|(d, &s)| {
                let span = self.maxs[d] - self.mins[d];
                if span <= 0.0 || !span.is_finite() {
                    self.mins[d]
                } else {
                    self.mins[d] + (s + 1.0) * span / 2.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_extremes_to_unit_bounds() {
        let rows = vec![vec![0.0, 10.0], vec![4.0, 30.0], vec![2.0, 20.0]];
        let s = Scaler::fit(&rows);
        assert_eq!(s.transform(&[0.0, 10.0]), vec![-1.0, -1.0]);
        assert_eq!(s.transform(&[4.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[2.0, 20.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let s = Scaler::fit(&rows);
        assert_eq!(s.transform(&[5.0, 1.5])[0], 0.0);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let rows = vec![vec![0.0], vec![10.0]];
        let s = Scaler::fit(&rows);
        assert_eq!(s.transform(&[20.0]), vec![3.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-3.0]);
    }

    #[test]
    fn inverse_round_trips() {
        let rows = vec![vec![1.0, -4.0], vec![9.0, 8.0], vec![3.0, 0.0]];
        let s = Scaler::fit(&rows);
        for row in &rows {
            let back = s.inverse(&s.transform(row));
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_rejects_empty() {
        Scaler::fit(&[]);
    }

    #[test]
    fn transform_into_matches_transform_and_reuses_capacity() {
        let rows = vec![vec![0.0, 10.0], vec![4.0, 30.0]];
        let s = Scaler::fit(&rows);
        let mut buf = Vec::new();
        for probe in [[1.0, 12.0], [3.0, 28.0], [-2.0, 40.0]] {
            s.transform_into(&probe, &mut buf);
            assert_eq!(buf, s.transform(&probe));
        }
        let cap = buf.capacity();
        s.transform_into(&[2.0, 20.0], &mut buf);
        assert_eq!(buf.capacity(), cap, "steady-state call must not grow");
    }

    #[test]
    fn serde_round_trip() {
        let s = Scaler::fit(&[vec![0.0], vec![2.0]]);
        let j = serde_json::to_string(&s).unwrap();
        let back: Scaler = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
