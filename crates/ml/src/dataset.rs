//! Labeled datasets for supervised classification.
//!
//! A [`Dataset`] holds feature vectors (`x`) and integer labels (`y`) in
//! the range `0..n_classes` — in Nitro, labels are variant indices
//! (paper §III-A: "the label set is integers in the range
//! {0, 1, …, |V| − 1}").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled classification dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors; all rows must share a dimension.
    pub x: Vec<Vec<f64>>,
    /// Labels in `0..n_classes`, parallel to `x`.
    pub y: Vec<usize>,
    /// Number of classes (variant count).
    pub n_classes: usize,
}

impl Dataset {
    /// Create an empty dataset expecting the given number of classes.
    pub fn new(n_classes: usize) -> Self {
        Self {
            x: Vec::new(),
            y: Vec::new(),
            n_classes,
        }
    }

    /// Create a dataset from parallel arrays, inferring `n_classes` as
    /// `max(y) + 1`.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ or rows have mixed dimensions.
    pub fn from_parts(x: Vec<Vec<f64>>, y: Vec<usize>) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        let n_classes = y.iter().max().map_or(0, |m| m + 1);
        Self { x, y, n_classes }
    }

    /// Append one labeled example.
    ///
    /// # Panics
    /// Panics if the label is out of range or the dimension disagrees with
    /// existing rows.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert!(
            label < self.n_classes,
            "label {label} >= n_classes {}",
            self.n_classes
        );
        if let Some(first) = self.x.first() {
            assert_eq!(first.len(), features.len(), "feature dimension mismatch");
        }
        self.x.push(features);
        self.y.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// The subset of examples at the given indices (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Deterministic stratified k-fold split: returns `k` disjoint index
    /// sets whose union is `0..len`, each approximately preserving class
    /// proportions. Folds are shuffled with `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k > 0, "k must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes.max(1)];
        for (i, &label) in self.y.iter().enumerate() {
            by_class[label].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class_indices in by_class.iter_mut() {
            class_indices.shuffle(&mut rng);
            for (j, &idx) in class_indices.iter().enumerate() {
                folds[j % k].push(idx);
            }
        }
        folds
    }

    /// Classification accuracy of `predictions` against this dataset's
    /// labels (0 for an empty dataset).
    pub fn accuracy(&self, predictions: &[usize]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        assert_eq!(predictions.len(), self.len());
        let correct = predictions
            .iter()
            .zip(&self.y)
            .filter(|(p, y)| p == y)
            .count();
        correct as f64 / self.len() as f64
    }

    /// Confusion matrix `m[actual][predicted]`.
    pub fn confusion(&self, predictions: &[usize]) -> Vec<Vec<usize>> {
        assert_eq!(predictions.len(), self.len());
        let mut m = vec![vec![0usize; self.n_classes]; self.n_classes];
        for (&pred, &actual) in predictions.iter().zip(&self.y) {
            m[actual][pred] += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_parts(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn from_parts_infers_classes() {
        let d = toy();
        assert_eq!(d.n_classes, 2);
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn push_rejects_out_of_range_label() {
        let mut d = Dataset::new(2);
        d.push(vec![1.0], 2);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn push_rejects_ragged_rows() {
        let mut d = toy();
        d.push(vec![1.0], 0);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0, 1]);
        assert_eq!(s.x[1], vec![3.0, 3.0]);
    }

    #[test]
    fn folds_partition_all_indices() {
        let d = toy();
        let folds = d.stratified_folds(2, 42);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn folds_are_stratified() {
        // 10 of class 0, 10 of class 1; 5 folds should each get 2+2.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..20).map(|i| i / 10).collect();
        let d = Dataset::from_parts(x, y);
        for fold in d.stratified_folds(5, 7) {
            let zeros = fold.iter().filter(|&&i| d.y[i] == 0).count();
            let ones = fold.len() - zeros;
            assert_eq!((zeros, ones), (2, 2));
        }
    }

    #[test]
    fn folds_deterministic_by_seed() {
        let d = toy();
        assert_eq!(d.stratified_folds(2, 5), d.stratified_folds(2, 5));
    }

    #[test]
    fn accuracy_and_confusion() {
        let d = toy();
        let preds = vec![0, 1, 1, 1];
        assert_eq!(d.accuracy(&preds), 0.75);
        let m = d.confusion(&preds);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 2);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        assert_eq!(Dataset::new(3).accuracy(&[]), 0.0);
    }
}
