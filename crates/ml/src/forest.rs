//! Random forest — a bagged ensemble of CART trees.
//!
//! A fourth classifier family for the tuner's `classifier` option. The
//! paper's related-work section (§VI) surveys a spectrum of learning
//! approaches for algorithm selection and argues "many of these
//! techniques can be integrated into Nitro's learning sub-system";
//! forests are the natural upgrade over a single tree: same
//! interpretable axis-aligned structure, far lower variance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::tree::{TreeModel, TreeParams};

/// Training hyper-parameters for [`ForestModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Per-tree CART parameters.
    pub tree: TreeParams,
    /// Bootstrap sample fraction (of the training-set size).
    pub sample_fraction: f64,
    /// Seed for the bootstrap resampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 25,
            tree: TreeParams::default(),
            sample_fraction: 0.8,
            seed: 0xF0E5,
        }
    }
}

/// A bagged ensemble of CART trees with averaged leaf posteriors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestModel {
    trees: Vec<TreeModel>,
    n_classes: usize,
}

impl ForestModel {
    /// Train the ensemble on bootstrap resamples of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `n_trees == 0`.
    pub fn train(data: &Dataset, params: &ForestParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let sample_size =
            ((data.len() as f64 * params.sample_fraction).ceil() as usize).clamp(1, data.len());
        let trees = (0..params.n_trees)
            .map(|_| {
                let indices: Vec<usize> = (0..sample_size)
                    .map(|_| rng.random_range(0..data.len()))
                    .collect();
                TreeModel::train(&data.subset(&indices), &params.tree)
            })
            .collect();
        Self {
            trees,
            n_classes: data.n_classes,
        }
    }

    /// Mean leaf posterior across the ensemble.
    pub fn probabilities(&self, point: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.probabilities(point)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }

    /// Predicted class (argmax of the mean posterior).
    pub fn predict(&self, point: &[f64]) -> usize {
        self.probabilities(point)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Union of every member tree's leaf-winning classes, sorted and
    /// deduped — a superset of what the averaged vote can emit, used by
    /// the model-label exhaustiveness analysis.
    pub fn leaf_classes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.trees.iter().flat_map(|t| t.leaf_classes()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy two-moons-ish data a single shallow tree struggles with.
    fn noisy_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for _ in 0..240 {
            let x: f64 = rng.random_range(-2.0..2.0);
            let y: f64 = rng.random_range(-2.0..2.0);
            // True boundary: inside the unit circle vs outside, with 8%
            // label noise.
            let mut label = usize::from(x * x + y * y > 1.0);
            if rng.random_bool(0.08) {
                label = 1 - label;
            }
            d.push(vec![x, y], label);
        }
        d
    }

    #[test]
    fn forest_learns_nonlinear_boundary() {
        let d = noisy_data(3);
        let f = ForestModel::train(&d, &ForestParams::default());
        // Evaluate on clean points.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..200 {
            let theta = i as f64 * 0.0314;
            for (r, label) in [(0.5, 0usize), (1.5, 1usize)] {
                let p = vec![r * theta.cos(), r * theta.sin()];
                if f.predict(&p) == label {
                    correct += 1;
                }
                total += 1;
            }
        }
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let train = noisy_data(5);
        let forest = ForestModel::train(&train, &ForestParams::default());
        let tree = TreeModel::train(&train, &TreeParams::default());
        let mut forest_ok = 0;
        let mut tree_ok = 0;
        let mut n = 0;
        for i in 0..300 {
            let theta = i as f64 * 0.021;
            for (r, label) in [(0.4, 0usize), (1.7, 1usize)] {
                let p = vec![r * theta.cos(), r * theta.sin()];
                forest_ok += usize::from(forest.predict(&p) == label);
                tree_ok += usize::from(tree.predict(&p) == label);
                n += 1;
            }
        }
        assert!(
            forest_ok >= tree_ok,
            "forest {forest_ok} vs tree {tree_ok} of {n}"
        );
    }

    #[test]
    fn probabilities_are_distributions() {
        let d = noisy_data(7);
        let f = ForestModel::train(
            &d,
            &ForestParams {
                n_trees: 7,
                ..Default::default()
            },
        );
        let p = f.probabilities(&[0.3, -0.4]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = noisy_data(9);
        let a = ForestModel::train(&d, &ForestParams::default());
        let b = ForestModel::train(&d, &ForestParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let d = noisy_data(11);
        let f = ForestModel::train(
            &d,
            &ForestParams {
                n_trees: 3,
                ..Default::default()
            },
        );
        let j = serde_json::to_string(&f).unwrap();
        let back: ForestModel = serde_json::from_str(&j).unwrap();
        assert_eq!(f, back);
    }
}
