//! k-nearest-neighbour classifier — an alternative model for the tuner's
//! `classifier` option (Table II lets the expert swap the learning
//! algorithm; the paper's related-work section cites several systems that
//! use instance-based selection).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Brute-force kNN over (pre-scaled) feature vectors with majority voting.
///
/// Probabilities are neighbour vote fractions with inverse-distance
/// weighting, which gives the active learner a usable confidence signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KnnModel {
    /// Fit (memorize) the training data.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `k == 0`.
    pub fn train(data: &Dataset, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(k > 0, "k must be positive");
        Self {
            k,
            x: data.x.clone(),
            y: data.y.clone(),
            n_classes: data.n_classes,
        }
    }

    /// The configured neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of classes the model votes over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Memorized training labels (for auditing label ranges).
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Number of memorized training points.
    pub fn n_points(&self) -> usize {
        self.x.len()
    }

    fn neighbours(&self, point: &[f64]) -> Vec<(f64, usize)> {
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(row, &label)| {
                let d2: f64 = row.iter().zip(point).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, label)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        dists.truncate(self.k);
        dists
    }

    /// Predicted class of a point.
    pub fn predict(&self, point: &[f64]) -> usize {
        let p = self.probabilities(point);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Inverse-distance-weighted vote distribution over classes.
    pub fn probabilities(&self, point: &[f64]) -> Vec<f64> {
        let mut weights = vec![0.0f64; self.n_classes];
        for (d2, label) in self.neighbours(point) {
            weights[label] += 1.0 / (d2.sqrt() + 1e-9);
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in weights.iter_mut() {
                *w /= total;
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_parts(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![5.0, 5.0],
                vec![5.1, 5.0],
                vec![5.0, 5.1],
            ],
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn predicts_by_locality() {
        let m = KnnModel::train(&toy(), 3);
        assert_eq!(m.predict(&[0.05, 0.05]), 0);
        assert_eq!(m.predict(&[5.05, 5.05]), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = KnnModel::train(&toy(), 3);
        let p = m.probabilities(&[2.5, 2.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_training_point_is_confident() {
        let m = KnnModel::train(&toy(), 1);
        let p = m.probabilities(&[0.0, 0.0]);
        assert!(p[0] > 0.999);
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let m = KnnModel::train(&toy(), 100);
        // Should not panic; majority of all six points decides.
        let _ = m.predict(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        KnnModel::train(&toy(), 0);
    }
}
