//! # nitro-ml — the learning subsystem of Nitro
//!
//! The Nitro paper builds variant-selection models with libSVM: an RBF
//! C-SVC trained on `[-1, 1]`-scaled features with cross-validated
//! parameter search (§III-A), plus Best-vs-Second-Best active learning to
//! shrink the training set (§III-B). This crate implements that stack
//! from scratch:
//!
//! * [`dataset`] — labeled datasets, stratified folds, accuracy/confusion.
//! * [`scale`] — min-max scaling to `[-1, 1]`.
//! * [`kernel`] — RBF / linear / polynomial kernels.
//! * [`svm`] — SMO solver, binary machines, Platt calibration, pairwise
//!   coupling and the one-vs-one multiclass ensemble.
//! * [`grid`] — cross-validated `(C, γ)` grid search.
//! * [`knn`], [`tree`] — alternative classifiers for the tuner's
//!   `classifier` option.
//! * [`classifier`] — the [`ClassifierConfig`]/[`TrainedModel`] pair the
//!   rest of the workspace consumes.
//! * [`active`] — the BvSB active-learning loop behind incremental tuning.
//!
//! ## Example: train and query a variant-selection model
//!
//! ```
//! use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
//!
//! // Feature vectors -> best-variant labels (e.g. from exhaustive search).
//! let data = Dataset::from_parts(
//!     vec![vec![1.0, 10.0], vec![1.2, 11.0], vec![8.0, 2.0], vec![8.4, 1.5]],
//!     vec![0, 0, 1, 1],
//! );
//! let config = ClassifierConfig::Svm { c: Some(10.0), gamma: Some(0.5), grid_search: false, cache_bytes: None };
//! let model = TrainedModel::train(&config, &data);
//! assert_eq!(model.predict(&[1.1, 10.5]), 0);
//! assert_eq!(model.predict(&[8.2, 1.8]), 1);
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod classifier;
pub mod dataset;
pub mod forest;
pub mod grid;
pub mod kernel;
pub mod knn;
pub mod metrics;
pub mod scale;
pub mod svm;
pub mod tree;

pub use active::ActiveLearner;
pub use classifier::{ClassifierConfig, PredictScratch, TrainedModel};
pub use dataset::Dataset;
pub use forest::{ForestModel, ForestParams};
pub use grid::{GridResult, GridSearch};
pub use kernel::Kernel;
pub use knn::KnnModel;
pub use metrics::{classification_report, ClassificationReport};
pub use scale::Scaler;
pub use svm::multiclass::SvmTrainStats;
pub use svm::{BinarySvm, CompiledSvm, PairMachine, SvmModel, SvmScratch};
pub use tree::{TreeModel, TreeParams};
