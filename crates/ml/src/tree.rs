//! CART decision tree — a second alternative classifier.
//!
//! Decision trees produce human-readable variant-selection rules (e.g.
//! "if AvgOutDeg > 14.3 choose 2-Phase-Fused"), which is useful when an
//! expert wants to inspect *why* the tuner picks a variant. Guo's Bayesian
//! approach and Luo et al.'s classifier comparison (paper §VI) motivate
//! having more than one model family available.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// A node in the tree, indexing into [`TreeModel::nodes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal split: `feature <= threshold` goes left, else right.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf with a class-probability distribution.
    Leaf { probs: Vec<f64> },
}

/// Training hyper-parameters for [`TreeModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_split: 4,
        }
    }
}

/// A Gini-impurity CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeModel {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl TreeModel {
    /// Grow a tree on the dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, params: &TreeParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut model = Self {
            nodes: Vec::new(),
            n_classes: data.n_classes,
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        model.grow(data, &indices, params, 0);
        model
    }

    /// Recursively grow and return the new node's index.
    fn grow(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        depth: usize,
    ) -> usize {
        let probs = class_distribution(data, indices, self.n_classes);
        let pure = probs.iter().any(|&p| p >= 1.0 - 1e-12);
        if depth >= params.max_depth || indices.len() < params.min_split || pure {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        }
        match best_split(data, indices) {
            Some((feature, threshold)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.x[i][feature] <= threshold);
                if li.is_empty() || ri.is_empty() {
                    self.nodes.push(Node::Leaf { probs });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot before growing children.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { probs: Vec::new() }); // placeholder
                let left = self.grow(data, &li, params, depth + 1);
                let right = self.grow(data, &ri, params, depth + 1);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
            None => {
                self.nodes.push(Node::Leaf { probs });
                self.nodes.len() - 1
            }
        }
    }

    /// Class-probability distribution at the leaf `point` falls into.
    pub fn probabilities(&self, point: &[f64]) -> Vec<f64> {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if point[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf { probs } => return probs.clone(),
            }
        }
    }

    /// Predicted class.
    pub fn predict(&self, point: &[f64]) -> usize {
        self.probabilities(point)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of nodes in the grown tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The classes this tree can predict: the argmax class of each leaf
    /// (same tie-break as [`TreeModel::predict`]), sorted and deduped.
    /// Exact — every prediction walks to some leaf, and every leaf is
    /// reachable by the half-open boxes the splits carve out.
    pub fn leaf_classes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { probs } => probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i),
                Node::Split { .. } => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn class_distribution(data: &Dataset, indices: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0.0f64; n_classes];
    for &i in indices {
        counts[data.y[i]] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in counts.iter_mut() {
            *c /= total;
        }
    }
    counts
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| (c / total) * (c / total))
        .sum::<f64>()
}

/// Exhaustive best (feature, threshold) split by Gini gain, scanning sorted
/// unique values per feature. Returns `None` when nothing improves.
fn best_split(data: &Dataset, indices: &[usize]) -> Option<(usize, f64)> {
    let n = indices.len() as f64;
    let n_classes = data.n_classes;
    let parent_counts = {
        let mut c = vec![0.0; n_classes];
        for &i in indices {
            c[data.y[i]] += 1.0;
        }
        c
    };
    let parent_gini = gini(&parent_counts, n);

    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for f in 0..data.dim() {
        let mut vals: Vec<(f64, usize)> =
            indices.iter().map(|&i| (data.x[i][f], data.y[i])).collect();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut left_counts = vec![0.0f64; n_classes];
        let mut right_counts = parent_counts.clone();
        for w in 0..vals.len() - 1 {
            left_counts[vals[w].1] += 1.0;
            right_counts[vals[w].1] -= 1.0;
            if vals[w].0 == vals[w + 1].0 {
                continue; // can't split between equal values
            }
            let nl = (w + 1) as f64;
            let nr = n - nl;
            let weighted = (nl / n) * gini(&left_counts, nl) + (nr / n) * gini(&right_counts, nr);
            let gain = parent_gini - weighted;
            let threshold = (vals[w].0 + vals[w + 1].0) / 2.0;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> Dataset {
        // Class = x0 bucket; requires two splits on feature 0.
        let mut d = Dataset::new(3);
        for i in 0..30 {
            let x0 = i as f64 / 10.0; // 0..3
            d.push(vec![x0, (i % 7) as f64], (x0.floor() as usize).min(2));
        }
        d
    }

    #[test]
    fn fits_axis_aligned_structure_perfectly() {
        let d = stripes();
        let m = TreeModel::train(&d, &TreeParams::default());
        for (row, &label) in d.x.iter().zip(&d.y) {
            assert_eq!(m.predict(row), label);
        }
    }

    #[test]
    fn depth_limit_bounds_tree_size() {
        let d = stripes();
        let shallow = TreeModel::train(
            &d,
            &TreeParams {
                max_depth: 1,
                min_split: 2,
            },
        );
        // Depth 1: one split, two leaves max.
        assert!(shallow.n_nodes() <= 3);
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(vec![i as f64], 1);
        }
        let m = TreeModel::train(&d, &TreeParams::default());
        assert_eq!(m.n_nodes(), 1);
        assert_eq!(m.predict(&[100.0]), 1);
    }

    #[test]
    fn leaf_probabilities_are_distributions() {
        let d = stripes();
        let m = TreeModel::train(
            &d,
            &TreeParams {
                max_depth: 2,
                min_split: 2,
            },
        );
        let p = m.probabilities(&[1.5, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let mut d = Dataset::new(2);
        d.push(vec![1.0], 0);
        d.push(vec![1.0], 1);
        d.push(vec![1.0], 0);
        d.push(vec![1.0], 1);
        let m = TreeModel::train(&d, &TreeParams::default());
        assert_eq!(m.n_nodes(), 1, "no split possible on constant features");
    }

    #[test]
    fn serde_round_trip() {
        let d = stripes();
        let m = TreeModel::train(&d, &TreeParams::default());
        let j = serde_json::to_string(&m).unwrap();
        let back: TreeModel = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }
}
