//! Property-based tests for the learning subsystem.

use nitro_ml::svm::smo::{solve, solve_reference, SmoParams};
use nitro_ml::{ClassifierConfig, Dataset, Kernel, Scaler, SvmModel, TrainedModel};
use proptest::prelude::*;

proptest! {
    /// SMO output always satisfies the box and equality constraints.
    #[test]
    fn smo_respects_constraints(
        points in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 4..40),
        c in 0.1f64..100.0,
    ) {
        let x: Vec<Vec<f64>> = points.iter().map(|&(a, b)| vec![a, b]).collect();
        // Deterministic half/half labels so both classes are present.
        let y: Vec<f64> = (0..x.len()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = solve(&x, &y, &Kernel::Rbf { gamma: 0.5 }, &SmoParams { c, ..Default::default() });
        for &a in &r.alpha {
            prop_assert!((-1e-9..=c + 1e-9).contains(&a));
        }
        let balance: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        prop_assert!(balance.abs() < 1e-6, "yᵀα = {}", balance);
    }

    /// Scaler always maps training rows into [-1, 1] and round-trips.
    #[test]
    fn scaler_bounds_and_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 3), 1..50)
    ) {
        let s = Scaler::fit(&rows);
        for row in &rows {
            let t = s.transform(row);
            for &v in &t {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
            let back = s.inverse(&t);
            for (a, b) in row.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
            }
        }
    }

    /// Every classifier family yields valid posteriors everywhere.
    #[test]
    fn posteriors_are_distributions(
        seed_pts in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 6..20),
        query in (-10.0f64..10.0, -10.0f64..10.0),
    ) {
        let x: Vec<Vec<f64>> = seed_pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<usize> = (0..x.len()).map(|i| i % 3).collect();
        let data = Dataset::from_parts(x, y);
        let q = vec![query.0, query.1];
        for config in [
            ClassifierConfig::Svm { c: Some(1.0), gamma: Some(0.5), grid_search: false, cache_bytes: None },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(Default::default()),
        ] {
            let m = TrainedModel::train(&config, &data);
            let p = m.probabilities(&q);
            prop_assert_eq!(p.len(), 3);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            prop_assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
            let pred = m.predict(&q);
            prop_assert!(pred < 3);
        }
    }

    /// The compiled prediction engine is bit-identical to the reference
    /// one-vs-one path: same argmax, and bitwise-equal posteriors, on
    /// arbitrary multi-class data and arbitrary (even out-of-hull)
    /// queries.
    #[test]
    fn compiled_engine_is_bit_identical(
        pts in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 9..30),
        queries in prop::collection::vec((-12.0f64..12.0, -12.0f64..12.0), 1..8),
        c in 0.5f64..50.0,
        gamma in 0.05f64..4.0,
    ) {
        let x: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<usize> = (0..x.len()).map(|i| i % 3).collect();
        let data = Dataset::from_parts(x, y);
        let model = SvmModel::train(
            &data,
            Kernel::Rbf { gamma },
            &SmoParams { c, ..Default::default() },
        );
        let compiled = model.compiled();
        for q in &queries {
            let q = vec![q.0, q.1];
            prop_assert_eq!(model.predict(&q), compiled.predict(&q));
            let reference = model.probabilities(&q);
            let fast = compiled.probabilities(&q);
            prop_assert_eq!(reference.len(), fast.len());
            for (a, b) in reference.iter().zip(&fast) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }

    /// The kernel-cached SMO solver (shrinking off) performs the same
    /// arithmetic as the full-Gram reference solver: bitwise-equal alpha
    /// and rho. With shrinking on, it must still land on the same
    /// solution within tolerance (same solid support set, close rho).
    #[test]
    fn cached_smo_matches_full_gram(
        pts in prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 6..40),
        c in 0.5f64..20.0,
        cache_cols in 2usize..8,
    ) {
        let x: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<f64> = (0..x.len()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let kernel = Kernel::Rbf { gamma: 0.5 };
        // A deliberately tiny cache (a few columns) forces eviction.
        let cache_bytes = cache_cols * x.len() * 8;
        let reference = solve_reference(
            &x, &y, &kernel, &SmoParams { c, ..Default::default() },
        );
        let exact = solve(&x, &y, &kernel, &SmoParams {
            c, cache_bytes, shrinking: false, ..Default::default()
        });
        prop_assert_eq!(exact.rho.to_bits(), reference.rho.to_bits());
        for (a, b) in exact.alpha.iter().zip(&reference.alpha) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let shrunk = solve(&x, &y, &kernel, &SmoParams {
            c, cache_bytes, shrinking: true, ..Default::default()
        });
        prop_assert!((shrunk.rho - reference.rho).abs() < 1e-2, "rho {} vs {}", shrunk.rho, reference.rho);
        // Solid support vectors (alpha well above the boundary noise
        // floor) must agree; decision values must track closely.
        let solid = 5e-2 * c;
        for i in 0..x.len() {
            prop_assert_eq!(shrunk.alpha[i] > solid, reference.alpha[i] > solid,
                "row {} alpha {} vs {}", i, shrunk.alpha[i], reference.alpha[i]);
            prop_assert!((shrunk.decision_values[i] - reference.decision_values[i]).abs() < 5e-2,
                "row {} f {} vs {}", i, shrunk.decision_values[i], reference.decision_values[i]);
        }
        prop_assert!(shrunk.peak_cache_bytes <= cache_bytes.max(2 * x.len() * 8));
    }

    /// kNN with k=1 reproduces training labels exactly.
    #[test]
    fn knn1_memorizes(
        pts in prop::collection::hash_set((-100i32..100, -100i32..100), 4..30)
    ) {
        let pts: Vec<_> = pts.into_iter().collect();
        let x: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a as f64, b as f64]).collect();
        let y: Vec<usize> = (0..x.len()).map(|i| i % 2).collect();
        let data = Dataset::from_parts(x.clone(), y.clone());
        let m = TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data);
        for (xi, &yi) in x.iter().zip(&y) {
            prop_assert_eq!(m.predict(xi), yi);
        }
    }
}

/// A training set ~4× larger than any the seed suites use: the full Gram
/// matrix would be `n² · 8 B` (≈ 18 MiB at n = 1536), but the cached
/// solver must stay inside a budget two orders of magnitude smaller and
/// still produce a working classifier.
#[test]
fn large_training_set_stays_inside_cache_budget() {
    let n = 1536usize;
    let budget = 256 * 1024; // ≈ 21 columns of 12 KiB
    let full_gram = n * n * 8;
    assert!(budget * 50 < full_gram, "budget must be far below the Gram");

    // Two interleaved rings: not linearly separable, so the solver does
    // real work across many kernel columns.
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 * 0.41;
            let r = if i % 2 == 0 { 1.0 } else { 2.0 };
            let wobble = ((i * 7919) % 97) as f64 / 97.0 * 0.3;
            vec![(r + wobble) * t.cos(), (r + wobble) * t.sin()]
        })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    let result = nitro_ml::svm::smo::solve(
        &x,
        &y,
        &Kernel::Rbf { gamma: 1.0 },
        &SmoParams {
            c: 1.0,
            cache_bytes: budget,
            ..Default::default()
        },
    );
    assert!(
        result.peak_cache_bytes <= budget,
        "peak {} exceeds budget {budget}",
        result.peak_cache_bytes
    );
    assert!(result.cache_hits > 0, "the LRU must be doing something");

    // The bounded-cache model still separates the rings.
    let correct = (0..n)
        .filter(|&i| (result.decision_values[i] >= 0.0) == (y[i] > 0.0))
        .count();
    assert!(
        correct as f64 / n as f64 > 0.9,
        "only {correct}/{n} training rows classified correctly"
    );
}
