//! Property-based tests for the learning subsystem.

use nitro_ml::svm::smo::{solve, SmoParams};
use nitro_ml::{ClassifierConfig, Dataset, Kernel, Scaler, TrainedModel};
use proptest::prelude::*;

proptest! {
    /// SMO output always satisfies the box and equality constraints.
    #[test]
    fn smo_respects_constraints(
        points in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 4..40),
        c in 0.1f64..100.0,
    ) {
        let x: Vec<Vec<f64>> = points.iter().map(|&(a, b)| vec![a, b]).collect();
        // Deterministic half/half labels so both classes are present.
        let y: Vec<f64> = (0..x.len()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = solve(&x, &y, &Kernel::Rbf { gamma: 0.5 }, &SmoParams { c, ..Default::default() });
        for &a in &r.alpha {
            prop_assert!((-1e-9..=c + 1e-9).contains(&a));
        }
        let balance: f64 = r.alpha.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        prop_assert!(balance.abs() < 1e-6, "yᵀα = {}", balance);
    }

    /// Scaler always maps training rows into [-1, 1] and round-trips.
    #[test]
    fn scaler_bounds_and_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 3), 1..50)
    ) {
        let s = Scaler::fit(&rows);
        for row in &rows {
            let t = s.transform(row);
            for &v in &t {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
            let back = s.inverse(&t);
            for (a, b) in row.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
            }
        }
    }

    /// Every classifier family yields valid posteriors everywhere.
    #[test]
    fn posteriors_are_distributions(
        seed_pts in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 6..20),
        query in (-10.0f64..10.0, -10.0f64..10.0),
    ) {
        let x: Vec<Vec<f64>> = seed_pts.iter().map(|&(a, b)| vec![a, b]).collect();
        let y: Vec<usize> = (0..x.len()).map(|i| i % 3).collect();
        let data = Dataset::from_parts(x, y);
        let q = vec![query.0, query.1];
        for config in [
            ClassifierConfig::Svm { c: Some(1.0), gamma: Some(0.5), grid_search: false },
            ClassifierConfig::Knn { k: 3 },
            ClassifierConfig::Tree(Default::default()),
        ] {
            let m = TrainedModel::train(&config, &data);
            let p = m.probabilities(&q);
            prop_assert_eq!(p.len(), 3);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            prop_assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
            let pred = m.predict(&q);
            prop_assert!(pred < 3);
        }
    }

    /// kNN with k=1 reproduces training labels exactly.
    #[test]
    fn knn1_memorizes(
        pts in prop::collection::hash_set((-100i32..100, -100i32..100), 4..30)
    ) {
        let pts: Vec<_> = pts.into_iter().collect();
        let x: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a as f64, b as f64]).collect();
        let y: Vec<usize> = (0..x.len()).map(|i| i % 2).collect();
        let data = Dataset::from_parts(x.clone(), y.clone());
        let m = TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data);
        for (xi, &yi) in x.iter().zip(&y) {
            prop_assert_eq!(m.predict(xi), yi);
        }
    }
}
