//! The [`Tracer`]: clock + thread-id assignment + sink + metrics, bound
//! together behind one cheaply-clonable handle.
//!
//! A `Tracer` is an `Arc` around its state, so installing it in a
//! [`Context`](../../nitro_core) and cloning it per dispatch costs one
//! reference-count bump — no allocation. Spans are emitted through
//! [`SpanGuard`], which writes the `B` event on creation and the
//! matching `E` event on `Drop`, keeping Chrome traces strictly nested
//! even across early `return Err(...)` paths.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Value;

use crate::event::{Phase, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::sink::TraceSink;

/// Time source for event timestamps.
enum Clock {
    /// Wall clock: nanoseconds since the tracer was created.
    Monotonic(Instant),
    /// Hand-advanced clock for deterministic tests and golden files.
    Manual(AtomicU64),
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    metrics: MetricsRegistry,
    clock: Clock,
    /// OS thread ids mapped to small dense tids, first-come first-served.
    tids: Mutex<HashMap<ThreadId, u64>>,
    next_tid: AtomicU64,
}

/// Handle that instrumentation sites clone and emit through.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer over the given sink, timestamping with a monotonic
    /// clock whose epoch is "now".
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self::with_clock(sink, Clock::Monotonic(Instant::now()))
    }

    /// A tracer with a manually advanced clock starting at 0 ns — for
    /// deterministic tests and golden files. Advance it with
    /// [`Tracer::advance`].
    pub fn with_manual_clock(sink: Arc<dyn TraceSink>) -> Self {
        Self::with_clock(sink, Clock::Manual(AtomicU64::new(0)))
    }

    fn with_clock(sink: Arc<dyn TraceSink>, clock: Clock) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                sink,
                metrics: MetricsRegistry::new(),
                clock,
                tids: Mutex::new(HashMap::new()),
                next_tid: AtomicU64::new(1),
            }),
        }
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        match &self.inner.clock {
            Clock::Monotonic(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Advance a manual clock by `ns` (no-op on monotonic tracers).
    pub fn advance(&self, ns: u64) {
        if let Clock::Manual(t) = &self.inner.clock {
            t.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// The tracer's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Small dense id for the calling thread, assigned on first use.
    pub fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = self.inner.tids.lock();
        if let Some(&t) = tids.get(&id) {
            return t;
        }
        let t = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        tids.insert(id, t);
        t
    }

    fn emit(&self, name: &str, cat: &str, phase: Phase, args: Vec<(String, Value)>) {
        let event = TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase,
            ts_ns: self.now_ns(),
            pid: 1,
            tid: self.tid(),
            args,
        };
        self.inner.sink.record(&event);
    }

    /// Emit a thread-scoped instant event.
    pub fn instant(&self, name: &str, cat: &str, args: Vec<(String, Value)>) {
        self.emit(name, cat, Phase::Instant, args);
    }

    /// Open a span: the `B` event is emitted now, the matching `E` when
    /// the returned guard drops (with any args added via
    /// [`SpanGuard::end_arg`]).
    pub fn span(&self, name: &str, cat: &str, args: Vec<(String, Value)>) -> SpanGuard {
        self.emit(name, cat, Phase::Begin, args);
        SpanGuard {
            tracer: self.clone(),
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns: self.now_ns(),
            tid: self.tid(),
            end_args: Vec::new(),
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        self.inner.sink.flush();
    }

    /// Events the bound sink has dropped so far (0 for lossless sinks).
    pub fn dropped_events(&self) -> u64 {
        self.inner.sink.dropped_events()
    }

    /// Freeze the metrics registry, injecting the sink's drop count as
    /// the `trace.dropped_events` counter — a truncated trace is then
    /// visible in the exported artifact itself, not just to whoever
    /// still holds the sink handle.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        let mut snap = self.inner.metrics.snapshot();
        let dropped = self.dropped_events();
        match snap
            .counters
            .iter_mut()
            .find(|(k, _)| k == "trace.dropped_events")
        {
            Some((_, v)) => *v = dropped,
            None => {
                snap.counters
                    .push(("trace.dropped_events".to_string(), dropped));
                snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        snap
    }
}

/// RAII span: emits the `E` event on drop, on the same tid the `B` was
/// emitted on, so per-thread nesting stays valid even if the guard is
/// dropped from another thread or during unwinding.
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    cat: String,
    start_ns: u64,
    tid: u64,
    end_args: Vec<(String, Value)>,
}

impl SpanGuard {
    /// Attach an argument to the closing `E` event (outcomes that are
    /// only known at the end of the span: predicted label, veto flag…).
    pub fn end_arg(&mut self, name: &str, value: Value) {
        self.end_args.push((name.to_string(), value));
    }

    /// Nanoseconds elapsed since the span opened.
    pub fn elapsed_ns(&self) -> u64 {
        self.tracer.now_ns().saturating_sub(self.start_ns)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            phase: Phase::End,
            ts_ns: self.tracer.now_ns(),
            pid: 1,
            tid: self.tid,
            args: std::mem::take(&mut self.end_args),
        };
        self.tracer.inner.sink.record(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg;
    use crate::sink::RingSink;

    #[test]
    fn span_emits_begin_then_end_in_order() {
        let ring = Arc::new(RingSink::new(16));
        let tracer = Tracer::with_manual_clock(ring.clone());
        {
            let mut span = tracer.span("dispatch", "dispatch", vec![arg("n", &4u64)]);
            tracer.advance(500);
            span.end_arg("label", serde::Value::Number(serde::Number::PosInt(2)));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[1].phase, Phase::End);
        assert_eq!(events[1].ts_ns, 500);
        assert_eq!(events[1].args[0].0, "label");
        assert_eq!(events[0].tid, events[1].tid);
    }

    #[test]
    fn metrics_snapshot_injects_the_drop_counter() {
        let ring = Arc::new(RingSink::new(2));
        let tracer = Tracer::new(ring);
        tracer.metrics().inc("dispatch.toy.calls");
        for _ in 0..5 {
            tracer.instant("tick", "test", vec![]);
        }
        assert_eq!(tracer.dropped_events(), 3);
        let snap = tracer.metrics_snapshot();
        assert_eq!(snap.counter("trace.dropped_events"), Some(3));
        assert_eq!(snap.counter("dispatch.toy.calls"), Some(1));
        // Injection keeps the sorted-names invariant.
        let names: Vec<&String> = snap.counters.iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn span_closes_on_early_return() {
        let ring = Arc::new(RingSink::new(16));
        let tracer = Tracer::new(ring.clone());
        fn fallible(t: &Tracer) -> Result<(), ()> {
            let _span = t.span("work", "tuning", vec![]);
            Err(())
        }
        assert!(fallible(&tracer).is_err());
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].phase, Phase::End);
    }

    #[test]
    fn threads_get_distinct_dense_tids() {
        let ring = Arc::new(RingSink::new(64));
        let tracer = Tracer::new(ring.clone());
        tracer.instant("main", "test", vec![]);
        let t2 = tracer.clone();
        std::thread::spawn(move || t2.instant("worker", "test", vec![]))
            .join()
            .unwrap();
        tracer.instant("main-again", "test", vec![]);
        let events = ring.snapshot();
        assert_eq!(events[0].tid, events[2].tid);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let ring = Arc::new(RingSink::new(8));
        let tracer = Tracer::with_manual_clock(ring.clone());
        assert_eq!(tracer.now_ns(), 0);
        tracer.advance(1234);
        assert_eq!(tracer.now_ns(), 1234);
        tracer.instant("tick", "test", vec![]);
        assert_eq!(ring.snapshot()[0].ts_ns, 1234);
    }

    #[test]
    fn clone_shares_metrics_and_sink() {
        let ring = Arc::new(RingSink::new(8));
        let tracer = Tracer::new(ring.clone());
        let clone = tracer.clone();
        clone.metrics().inc("calls");
        assert_eq!(tracer.metrics().counter("calls"), Some(1));
        clone.instant("e", "test", vec![]);
        assert_eq!(ring.len(), 1);
    }
}
