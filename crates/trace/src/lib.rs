//! nitro-trace — structured tracing, metrics and regret accounting for
//! the Nitro variant-tuning stack.
//!
//! The crate has four pieces:
//!
//! * **Events and sinks** ([`TraceEvent`], [`TraceSink`]): every
//!   instrumented operation emits span boundaries (`B`/`E`) or instants
//!   (`i`) in the Chrome `trace_event` field shape. Sinks decide where
//!   they go — a bounded in-memory ring ([`RingSink`]), a streaming
//!   JSONL writer ([`JsonlSink`]), a full Chrome-trace document
//!   collector ([`ChromeSink`]) openable in `chrome://tracing` or
//!   Perfetto, or several at once ([`MultiSink`]).
//! * **Tracer** ([`Tracer`], [`SpanGuard`]): binds a clock, dense
//!   thread-id assignment, a sink and a metrics registry behind one
//!   cheaply-clonable handle. Spans close themselves on drop, so traces
//!   stay well nested across early returns.
//! * **Metrics** ([`MetricsRegistry`], [`MetricsSnapshot`]): named
//!   counters, gauges and fixed-bucket histograms — win/veto/fallback
//!   counts per variant, feature-extraction and prediction latency,
//!   regret distributions — exported as sorted, serializable JSON.
//! * **Regret** ([`RegretLedger`]): chosen-cost minus oracle-cost
//!   accounting with top-K worst-decision retention, for runs where a
//!   profile table provides ground truth.
//!
//! Instrumentation is opt-in: a `Tracer` is installed into a
//! `nitro_core::Context` (covering dispatch, tuning and profiling) and,
//! for the simulator layer, into the process-global slot via
//! [`install_global`] — `nitro_simt::Gpu::launch` checks that slot
//! because substrates construct their GPUs internally. With no tracer
//! installed every instrumentation site is a cheap `None` check.

#![warn(missing_docs)]

mod chrome;
mod event;
mod metrics;
mod regret;
mod sink;
mod tracer;

pub use chrome::{validate_chrome_trace, ChromeTraceStats};
pub use event::{arg, val, Phase, TraceEvent};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_NS_BOUNDS};
pub use regret::{RegretEntry, RegretLedger};
pub use sink::{chrome_trace_json, ChromeSink, JsonlSink, MultiSink, RingSink, TraceSink};
pub use tracer::{SpanGuard, Tracer};

// Re-exported so instrumentation sites can build args without adding
// their own dependency on the vendored serde value model.
pub use serde::{Number, Value};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
// std Mutex: the vendored parking_lot Mutex is not const-constructible.
// It serializes *writers only* — readers never touch it.
use std::sync::Mutex;

// The global tracer slot is a single-pointer RCU with striped reader
// counters. Readers ([`global`]) are lock-free: they announce
// themselves on a per-thread stripe (one `fetch_add` on a cache line no
// other stripe shares), load the pointer, clone the `Tracer` (an `Arc`
// bump) and retire the stripe. Writers ([`install_global`] /
// [`uninstall_global`]) swap the pointer and then spin until every
// stripe drains to zero before freeing the old box — at that point no
// reader can still hold the old pointer.
//
// Why this is sound (all protocol operations are `SeqCst`, so they form
// one total order): a reader's stripe increment precedes its pointer
// load. If the increment ordered *before* the writer's swap, the
// writer's subsequent drain-check observes the nonzero stripe and
// waits. If it ordered *after* the swap, the reader's load observes the
// *new* pointer — it never sees the old one. Either way the writer
// frees the old tracer only after every reader that could have seen it
// has finished.
static GLOBAL_INSTALLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_PTR: AtomicPtr<Tracer> = AtomicPtr::new(std::ptr::null_mut());
static GLOBAL_WRITER: Mutex<()> = Mutex::new(());

const READER_STRIPES: usize = 8;

/// One cache line (conservatively two, for adjacent-line prefetchers)
/// per stripe, so concurrent readers on different stripes never
/// false-share.
#[repr(align(128))]
struct ReaderStripe(AtomicU64);

static READERS: [ReaderStripe; READER_STRIPES] =
    [const { ReaderStripe(AtomicU64::new(0)) }; READER_STRIPES];

fn reader_stripe() -> &'static AtomicU64 {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    let ordinal = ORDINAL.with(|slot| {
        let mut o = slot.get();
        if o == usize::MAX {
            o = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(o);
        }
        o
    });
    &READERS[ordinal % READER_STRIPES].0
}

/// Swap the slot pointer and free the displaced tracer once all
/// in-flight readers have drained. Callers hold the writer mutex.
fn swap_global(new: *mut Tracer) -> Option<Tracer> {
    let old = GLOBAL_PTR.swap(new, Ordering::SeqCst);
    if old.is_null() {
        return None;
    }
    for stripe in &READERS {
        while stripe.0.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
    }
    // No reader holds `old`: every stripe has drained since the swap,
    // and any reader arriving after it sees `new`.
    Some(*unsafe { Box::from_raw(old) })
}

/// Install a tracer into the process-global slot consulted by layers
/// that have no `Context` in scope (the SIMT simulator). Replaces any
/// previously installed tracer.
pub fn install_global(tracer: Tracer) {
    let boxed = Box::into_raw(Box::new(tracer));
    let _writer = GLOBAL_WRITER.lock().expect("global tracer writer lock");
    swap_global(boxed);
    GLOBAL_INSTALLED.store(true, Ordering::Release);
}

/// Remove the process-global tracer, returning it if one was installed.
pub fn uninstall_global() -> Option<Tracer> {
    let _writer = GLOBAL_WRITER.lock().expect("global tracer writer lock");
    GLOBAL_INSTALLED.store(false, Ordering::Release);
    swap_global(std::ptr::null_mut())
}

/// The process-global tracer, if installed. Lock-free on every path:
/// with no tracer installed this is a single atomic load; with one
/// installed it is two stripe-local counter updates, a pointer load and
/// an `Arc` clone. Readers never contend with each other and never
/// block a concurrent [`install_global`] for longer than their own
/// clone.
pub fn global() -> Option<Tracer> {
    if !GLOBAL_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    let stripe = reader_stripe();
    stripe.fetch_add(1, Ordering::SeqCst);
    let ptr = GLOBAL_PTR.load(Ordering::SeqCst);
    let out = if ptr.is_null() {
        None
    } else {
        // In-bounds: the writer frees this allocation only after our
        // stripe (incremented before the load) drains back to zero.
        Some(unsafe { (*ptr).clone() })
    };
    stripe.fetch_sub(1, Ordering::SeqCst);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // One test exercises the whole global-slot lifecycle: tests run
    // concurrently, and the slot is process-wide state.
    #[test]
    fn global_slot_install_use_uninstall() {
        assert!(global().is_none());
        let ring = Arc::new(RingSink::new(8));
        install_global(Tracer::new(ring.clone()));
        let t = global().expect("installed");
        t.instant("tick", "test", vec![]);
        assert_eq!(ring.len(), 1);
        assert!(uninstall_global().is_some());
        assert!(global().is_none());
        assert!(uninstall_global().is_none());

        // Churn: readers hammer the slot while a writer re-installs,
        // exercising the RCU drain path. Every successful read must
        // yield a usable tracer (use-after-free here would crash or
        // corrupt the Arc count).
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let stop = stop.clone();
                s.spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(t) = global() {
                            t.instant("churn", "test", vec![]);
                            seen += 1;
                        }
                    }
                    seen
                });
            }
            for i in 0..200 {
                install_global(Tracer::new(Arc::new(RingSink::new(4))));
                if i % 10 == 0 {
                    uninstall_global();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(uninstall_global().is_some());
        assert!(global().is_none());
    }
}
