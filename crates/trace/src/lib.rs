//! nitro-trace — structured tracing, metrics and regret accounting for
//! the Nitro variant-tuning stack.
//!
//! The crate has four pieces:
//!
//! * **Events and sinks** ([`TraceEvent`], [`TraceSink`]): every
//!   instrumented operation emits span boundaries (`B`/`E`) or instants
//!   (`i`) in the Chrome `trace_event` field shape. Sinks decide where
//!   they go — a bounded in-memory ring ([`RingSink`]), a streaming
//!   JSONL writer ([`JsonlSink`]), a full Chrome-trace document
//!   collector ([`ChromeSink`]) openable in `chrome://tracing` or
//!   Perfetto, or several at once ([`MultiSink`]).
//! * **Tracer** ([`Tracer`], [`SpanGuard`]): binds a clock, dense
//!   thread-id assignment, a sink and a metrics registry behind one
//!   cheaply-clonable handle. Spans close themselves on drop, so traces
//!   stay well nested across early returns.
//! * **Metrics** ([`MetricsRegistry`], [`MetricsSnapshot`]): named
//!   counters, gauges and fixed-bucket histograms — win/veto/fallback
//!   counts per variant, feature-extraction and prediction latency,
//!   regret distributions — exported as sorted, serializable JSON.
//! * **Regret** ([`RegretLedger`]): chosen-cost minus oracle-cost
//!   accounting with top-K worst-decision retention, for runs where a
//!   profile table provides ground truth.
//!
//! Instrumentation is opt-in: a `Tracer` is installed into a
//! `nitro_core::Context` (covering dispatch, tuning and profiling) and,
//! for the simulator layer, into the process-global slot via
//! [`install_global`] — `nitro_simt::Gpu::launch` checks that slot
//! because substrates construct their GPUs internally. With no tracer
//! installed every instrumentation site is a cheap `None` check.

#![warn(missing_docs)]

mod chrome;
mod event;
mod metrics;
mod regret;
mod sink;
mod tracer;

pub use chrome::{validate_chrome_trace, ChromeTraceStats};
pub use event::{arg, val, Phase, TraceEvent};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_NS_BOUNDS};
pub use regret::{RegretEntry, RegretLedger};
pub use sink::{chrome_trace_json, ChromeSink, JsonlSink, MultiSink, RingSink, TraceSink};
pub use tracer::{SpanGuard, Tracer};

// Re-exported so instrumentation sites can build args without adding
// their own dependency on the vendored serde value model.
pub use serde::{Number, Value};

use std::sync::atomic::{AtomicBool, Ordering};
// std Mutex: the vendored parking_lot Mutex is not const-constructible.
use std::sync::Mutex;

static GLOBAL_INSTALLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_TRACER: Mutex<Option<Tracer>> = Mutex::new(None);

/// Install a tracer into the process-global slot consulted by layers
/// that have no `Context` in scope (the SIMT simulator). Replaces any
/// previously installed tracer.
pub fn install_global(tracer: Tracer) {
    *GLOBAL_TRACER.lock().expect("global tracer lock") = Some(tracer);
    GLOBAL_INSTALLED.store(true, Ordering::Release);
}

/// Remove the process-global tracer, returning it if one was installed.
pub fn uninstall_global() -> Option<Tracer> {
    GLOBAL_INSTALLED.store(false, Ordering::Release);
    GLOBAL_TRACER.lock().expect("global tracer lock").take()
}

/// The process-global tracer, if installed. The fast path when no
/// tracer is installed is a single relaxed atomic load — no locking,
/// no allocation.
pub fn global() -> Option<Tracer> {
    if !GLOBAL_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL_TRACER.lock().expect("global tracer lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // One test exercises the whole global-slot lifecycle: tests run
    // concurrently, and the slot is process-wide state.
    #[test]
    fn global_slot_install_use_uninstall() {
        assert!(global().is_none());
        let ring = Arc::new(RingSink::new(8));
        install_global(Tracer::new(ring.clone()));
        let t = global().expect("installed");
        t.instant("tick", "test", vec![]);
        assert_eq!(ring.len(), 1);
        assert!(uninstall_global().is_some());
        assert!(global().is_none());
        assert!(uninstall_global().is_none());
    }
}
