//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Metric names are flat dotted strings assembled by the instrumentation
//! sites (`dispatch.<fn>.calls`, `dispatch.<fn>.win.<variant>`,
//! `regret.<fn>.ns`, `simt.launch.elapsed_ns`, …). The registry is
//! thread-safe and cheap to share; [`MetricsRegistry::snapshot`] freezes
//! it into a serializable [`MetricsSnapshot`] whose JSON form is what
//! `trace_report` exports and `nitro-audit` analyzes.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default histogram bucket bounds for nanosecond-scale observations:
/// decades from 100 ns to 10 s (an over-bucket catches the rest).
pub const DEFAULT_NS_BOUNDS: [f64; 9] = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// One fixed-bucket histogram. `counts[i]` counts observations `v`
/// with `v <= bounds[i]` (and greater than the previous bound);
/// `counts[bounds.len()]` is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            // Non-finite floats encode as JSON null, so an empty
            // histogram reports 0 rather than ±∞ sentinels.
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Serializable freeze of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the final entry is the overflow
    /// bucket for values above the last bound.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile estimated from the bucket counts: the upper
    /// bound of the bucket holding the observation of rank
    /// `floor(q·(count−1))`, clamped to the observed `[min, max]` range
    /// (the overflow bucket reports `max`). Resolution is whatever the
    /// bucket bounds give — for tight-error quantiles record into a
    /// `nitro-pulse` sketch instead. Returns 0 when empty; `q` is
    /// clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > target {
                return match self.bounds.get(i) {
                    Some(&b) => b.clamp(self.min, self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsInner {
    fn counter_mut(&mut self, name: &str) -> &mut u64 {
        if let Some(i) = self.counters.iter().position(|(k, _)| k == name) {
            &mut self.counters[i].1
        } else {
            self.counters.push((name.to_string(), 0));
            &mut self.counters.last_mut().expect("just pushed").1
        }
    }

    fn histogram_mut(&mut self, name: &str, bounds: &[f64]) -> &mut Histogram {
        if let Some(i) = self.histograms.iter().position(|(k, _)| k == name) {
            &mut self.histograms[i].1
        } else {
            self.histograms
                .push((name.to_string(), Histogram::new(bounds)));
            &mut self.histograms.last_mut().expect("just pushed").1
        }
    }
}

/// Thread-safe registry of named counters, gauges and histograms.
/// Metrics are created lazily on first touch (or eagerly via the
/// `declare_*` methods, so "never incremented" is distinguishable from
/// "never registered" in exports).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a counter by 1, creating it at 0 first if absent.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        *self.inner.lock().counter_mut(name) += delta;
    }

    /// Ensure a counter exists (at 0) without incrementing it.
    pub fn declare_counter(&self, name: &str) {
        self.inner.lock().counter_mut(name);
    }

    /// Set a gauge to an absolute value, creating it if absent.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.gauges.iter().position(|(k, _)| k == name) {
            inner.gauges[i].1 = value;
        } else {
            inner.gauges.push((name.to_string(), value));
        }
    }

    /// Record an observation into a histogram with the default
    /// nanosecond decade buckets ([`DEFAULT_NS_BOUNDS`]).
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &DEFAULT_NS_BOUNDS);
    }

    /// Record an observation, creating the histogram with the given
    /// bucket bounds if absent (existing histograms keep their bounds).
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        self.inner.lock().histogram_mut(name, bounds).observe(value);
    }

    /// Current value of a counter, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock();
        inner
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock();
        inner
            .gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Freeze the registry into a serializable snapshot, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut snap = MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// Serializable freeze of a [`MetricsRegistry`]: sorted name/value
/// pairs, ready for JSON export and offline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshots always serialize")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_declare_at_zero() {
        let m = MetricsRegistry::new();
        m.declare_counter("wins");
        m.inc("calls");
        m.add("calls", 2);
        assert_eq!(m.counter("calls"), Some(3));
        assert_eq!(m.counter("wins"), Some(0));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("phase_ns", 10.0);
        m.set_gauge("phase_ns", 25.0);
        assert_eq!(m.gauge("phase_ns"), Some(25.0));
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let m = MetricsRegistry::new();
        for v in [5.0, 50.0, 500.0, 1e12] {
            m.observe_with("lat", v, &[10.0, 100.0, 1000.0]);
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 5.0);
        assert_eq!(h.max, 1e12);
        assert!((h.mean() - (5.0 + 50.0 + 500.0 + 1e12) / 4.0).abs() < 1e-3);
    }

    #[test]
    fn histogram_quantiles_walk_the_buckets() {
        let m = MetricsRegistry::new();
        for v in [5.0, 50.0, 500.0, 1e12] {
            m.observe_with("lat", v, &[10.0, 100.0, 1000.0]);
        }
        let h = m.snapshot().histogram("lat").unwrap().clone();
        // Rank rule floor(q·(n−1)): p0 → bucket ≤10 (clamped to min 5),
        // p50 → rank 1 (bucket ≤100), p100 → overflow → max.
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(1.0), 1e12);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn empty_histogram_reports_finite_min_max() {
        let h = Histogram::new(&DEFAULT_NS_BOUNDS).snapshot();
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = MetricsRegistry::new();
        m.inc("dispatch.spmv.calls");
        m.set_gauge("tune.spmv.training_ns", 1234.5);
        m.observe("dispatch.spmv.feature_ns", 420.0);
        let snap = m.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_sorts_names() {
        let m = MetricsRegistry::new();
        m.inc("zeta");
        m.inc("alpha");
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.inc("calls");
                        m.observe("lat", 1000.0);
                    }
                });
            }
        });
        assert_eq!(m.counter("calls"), Some(400));
        assert_eq!(m.snapshot().histogram("lat").unwrap().count, 400);
    }
}
