//! Validator for Chrome `trace_event` documents.
//!
//! `trace_report` (and CI) run every exported trace through
//! [`validate_chrome_trace`] before declaring success: the document must
//! parse, every event must carry the required fields with a known `ph`
//! code, `B`/`E` events must nest strictly (name-matched, per
//! `(pid, tid)` lane) with every span closed by end-of-trace, and
//! timestamps must be non-decreasing within each lane.

use serde::Value;

/// Summary of a validated trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// Total events in the document.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Distinct `(pid, tid)` lanes seen.
    pub lanes: usize,
}

fn field<'a>(event: &'a Value, name: &str, idx: usize) -> Result<&'a Value, String> {
    event
        .get(name)
        .ok_or_else(|| format!("event {idx}: missing required field `{name}`"))
}

fn str_field<'a>(event: &'a Value, name: &str, idx: usize) -> Result<&'a str, String> {
    field(event, name, idx)?
        .as_str()
        .ok_or_else(|| format!("event {idx}: field `{name}` is not a string"))
}

fn num_field(event: &Value, name: &str, idx: usize) -> Result<f64, String> {
    field(event, name, idx)?
        .as_f64()
        .ok_or_else(|| format!("event {idx}: field `{name}` is not a number"))
}

/// Validate a Chrome trace document (the `{"traceEvents": [...]}` JSON
/// object form). Returns summary statistics, or a message naming the
/// first violation.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("document not JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("document has no `traceEvents` field")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;

    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..Default::default()
    };
    // Per-(pid,tid) lane: stack of open span names + last timestamp.
    let mut lanes: Vec<((u64, u64), Vec<String>, f64)> = Vec::new();

    for (idx, event) in events.iter().enumerate() {
        let name = str_field(event, "name", idx)?;
        str_field(event, "cat", idx)?;
        let ph = str_field(event, "ph", idx)?;
        let ts = num_field(event, "ts", idx)?;
        let pid = num_field(event, "pid", idx)? as u64;
        let tid = num_field(event, "tid", idx)? as u64;

        let lane = match lanes.iter_mut().find(|(key, _, _)| *key == (pid, tid)) {
            Some(lane) => lane,
            None => {
                lanes.push(((pid, tid), Vec::new(), f64::NEG_INFINITY));
                lanes.last_mut().expect("just pushed")
            }
        };
        if ts < lane.2 {
            return Err(format!(
                "event {idx} (`{name}`): timestamp {ts} precedes {} on pid {pid} tid {tid}",
                lane.2
            ));
        }
        lane.2 = ts;

        match ph {
            "B" => lane.1.push(name.to_string()),
            "E" => match lane.1.pop() {
                Some(open) if open == name => stats.spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {idx}: `E` for `{name}` but innermost open span \
                         on pid {pid} tid {tid} is `{open}`"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {idx}: `E` for `{name}` with no open span on pid {pid} tid {tid}"
                    ));
                }
            },
            "i" => stats.instants += 1,
            other => return Err(format!("event {idx}: unknown ph code `{other}`")),
        }
    }

    for ((pid, tid), stack, _) in &lanes {
        if let Some(open) = stack.last() {
            return Err(format!(
                "span `{open}` on pid {pid} tid {tid} never closed ({} open at end of trace)",
                stack.len()
            ));
        }
    }
    stats.lanes = lanes.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::chrome_trace_json;
    use crate::{Phase, TraceEvent};

    fn ev(name: &str, ph: Phase, ts_ns: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "test".into(),
            phase: ph,
            ts_ns,
            pid: 1,
            tid,
            args: vec![],
        }
    }

    #[test]
    fn accepts_well_nested_trace() {
        let json = chrome_trace_json(&[
            ev("outer", Phase::Begin, 0, 1),
            ev("inner", Phase::Begin, 10, 1),
            ev("mark", Phase::Instant, 20, 1),
            ev("inner", Phase::End, 30, 1),
            ev("outer", Phase::End, 40, 1),
        ]);
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.lanes, 1);
    }

    #[test]
    fn rejects_cross_nested_spans() {
        let json = chrome_trace_json(&[
            ev("a", Phase::Begin, 0, 1),
            ev("b", Phase::Begin, 1, 1),
            ev("a", Phase::End, 2, 1),
        ]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("innermost open span"), "{err}");
    }

    #[test]
    fn rejects_unclosed_span() {
        let json = chrome_trace_json(&[ev("a", Phase::Begin, 0, 1)]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn rejects_end_without_begin() {
        let json = chrome_trace_json(&[ev("a", Phase::End, 0, 1)]);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("no open span"), "{err}");
    }

    #[test]
    fn rejects_time_travel_within_a_lane() {
        let json = chrome_trace_json(&[
            ev("a", Phase::Instant, 5000, 1),
            ev("b", Phase::Instant, 1000, 1),
        ]);
        assert!(validate_chrome_trace(&json).is_err());
    }

    #[test]
    fn lanes_are_independent() {
        let json = chrome_trace_json(&[
            ev("a", Phase::Begin, 0, 1),
            ev("b", Phase::Begin, 1, 2),
            ev("a", Phase::End, 2, 1),
            ev("b", Phase::End, 3, 2),
        ]);
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.lanes, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
    }
}
