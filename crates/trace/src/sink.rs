//! Trace sinks: where emitted events go.
//!
//! A [`TraceSink`] receives every [`TraceEvent`] a tracer emits. Three
//! production sinks are provided — a bounded in-memory ring
//! ([`RingSink`]), a streaming JSONL writer ([`JsonlSink`]) and a
//! collect-then-export Chrome `trace_event` sink ([`ChromeSink`]) — plus
//! a [`MultiSink`] fan-out so one tracer can feed several of them.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Value;

use crate::event::TraceEvent;

/// Receiver of trace events. Implementations must be thread-safe: the
/// simulator emits from rayon worker threads while dispatch emits from
/// the caller's thread.
pub trait TraceSink: Send + Sync {
    /// Record one event. Called in emission order per thread.
    fn record(&self, event: &TraceEvent);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}

    /// Events this sink has dropped rather than retained or written.
    /// Lossy sinks (the bounded [`RingSink`]) override this; lossless
    /// sinks report 0. Exported as the `trace.dropped_events` counter by
    /// [`Tracer::metrics_snapshot`](crate::Tracer::metrics_snapshot), so
    /// a truncated trace is visible in the artifact it truncated.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Bounded in-memory ring buffer: keeps the most recent `capacity`
/// events and counts the ones it had to drop. The always-on choice for
/// production-style deployments — a crashed run still has its tail.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (capacity 0 drops all).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Events evicted (or refused, for capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TraceSink for RingSink {
    fn dropped_events(&self) -> u64 {
        self.dropped()
    }

    fn record(&self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

/// Streaming sink writing one compact JSON object per line — the format
/// `jq`, log shippers and the golden-file tests consume. Lines follow
/// the Chrome `trace_event` field shape, so a JSONL file wraps into a
/// loadable Chrome trace with `{"traceEvents": [<lines joined by ,>]}`.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap any writer (a `File`, a `Vec<u8>` buffer, …).
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Consume the sink, returning the writer (flushing it first).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner();
        w.flush().ok();
        w
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Stream to a file, creating (or truncating) it.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut w = self.writer.lock();
        // A full disk mid-trace must not take down the traced program;
        // the line is simply lost.
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        self.writer.lock().flush().ok();
    }
}

/// Collects every event and exports a complete Chrome `trace_event`
/// document — the JSON-object form `{"traceEvents": [...]}` that
/// `chrome://tracing` and Perfetto open directly.
#[derive(Default)]
pub struct ChromeSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl ChromeSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the collected events in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Render the collected events as a Chrome trace document.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(&self.events.lock())
    }
}

impl TraceSink for ChromeSink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Fan-out: forwards every event to each inner sink in order.
pub struct MultiSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl MultiSink {
    /// Forward to all of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for MultiSink {
    fn record(&self, event: &TraceEvent) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }

    fn dropped_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped_events()).sum()
    }
}

/// Render a slice of events as a Chrome `trace_event` JSON document:
/// `{"displayTimeUnit": "ns", "traceEvents": [...]}`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let doc = Value::Object(vec![
        (
            "displayTimeUnit".to_string(),
            Value::String("ns".to_string()),
        ),
        (
            "traceEvents".to_string(),
            Value::Array(events.iter().map(TraceEvent::to_value).collect()),
        ),
    ]);
    serde_json::to_string(&doc).expect("trace documents always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn ev(name: &str, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "test".into(),
            phase: Phase::Instant,
            ts_ns,
            pid: 1,
            tid: 1,
            args: vec![],
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingSink::new(2);
        for i in 0..5 {
            ring.record(&ev(&format!("e{i}"), i));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].name, "e3");
        assert_eq!(kept[1].name, "e4");
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let ring = RingSink::new(0);
        ring.record(&ev("e", 0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn dropped_events_surfaces_through_the_trait_and_fans_in() {
        let ring = Arc::new(RingSink::new(1));
        let chrome = Arc::new(ChromeSink::new());
        let multi = MultiSink::new(vec![ring.clone(), chrome.clone()]);
        for i in 0..3 {
            multi.record(&ev("e", i));
        }
        // Lossless sinks report 0; the ring kept 1 of 3; the fan-out sums.
        assert_eq!(chrome.dropped_events(), 0);
        assert_eq!(ring.dropped_events(), 2);
        assert_eq!(multi.dropped_events(), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&ev("a", 1000));
        sink.record(&ev("b", 2000));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("each line parses");
            assert!(v.get("name").is_some());
        }
    }

    #[test]
    fn chrome_document_parses_and_carries_events() {
        let sink = ChromeSink::new();
        sink.record(&ev("a", 1000));
        let doc: Value = serde_json::from_str(&sink.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(ChromeSink::new());
        let b = Arc::new(RingSink::new(8));
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.record(&ev("x", 0));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
