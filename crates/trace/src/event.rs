//! The trace event model: one record per span boundary or instant.
//!
//! Events serialize to the Chrome `trace_event` JSON shape (the format
//! `chrome://tracing` and Perfetto ingest): `name`, `cat`, `ph`, `ts`
//! (microseconds), `pid`, `tid` and an `args` object. The JSONL sink
//! writes one such object per line; the Chrome sink wraps them in a
//! `{"traceEvents": [...]}` document.

use serde::{Number, Serialize, Value};

/// Span boundary / event kind, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Thread-scoped instant (`"i"`).
    Instant,
}

impl Phase {
    /// The Chrome `ph` code for this phase.
    pub fn code(&self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span name, kernel name, …).
    pub name: String,
    /// Category: `dispatch`, `tuning`, `profile` or `simt`.
    pub cat: String,
    /// Span boundary / instant marker.
    pub phase: Phase,
    /// Nanoseconds since the owning tracer's epoch.
    pub ts_ns: u64,
    /// Process id (always 1 — one simulated process per run).
    pub pid: u64,
    /// Small per-thread id assigned on first use.
    pub tid: u64,
    /// Event arguments, in insertion order.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Render as a Chrome `trace_event` object. Timestamps convert to
    /// microseconds (the unit the Trace Event Format prescribes);
    /// instants carry the thread scope marker `"s": "t"`.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("cat".to_string(), Value::String(self.cat.clone())),
            (
                "ph".to_string(),
                Value::String(self.phase.code().to_string()),
            ),
            (
                "ts".to_string(),
                Value::Number(Number::Float(self.ts_ns as f64 / 1000.0)),
            ),
            ("pid".to_string(), Value::Number(Number::PosInt(self.pid))),
            ("tid".to_string(), Value::Number(Number::PosInt(self.tid))),
        ];
        if self.phase == Phase::Instant {
            fields.push(("s".to_string(), Value::String("t".to_string())));
        }
        if !self.args.is_empty() {
            fields.push(("args".to_string(), Value::Object(self.args.clone())));
        }
        Value::Object(fields)
    }

    /// Render as one compact JSON line (the JSONL sink's format).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("trace events always serialize")
    }
}

/// Convert any serializable value into a trace-argument [`Value`].
///
/// This is the one helper instrumentation sites need:
/// `("features", val(&features))`, `("vetoed", val(&true))`, ….
pub fn val<T: Serialize + ?Sized>(x: &T) -> Value {
    x.to_value()
}

/// Build an owned argument pair from a name and any serializable value.
pub fn arg<T: Serialize + ?Sized>(name: &str, x: &T) -> (String, Value) {
    (name.to_string(), x.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_object_shape() {
        let e = TraceEvent {
            name: "spmv".into(),
            cat: "dispatch".into(),
            phase: Phase::Begin,
            ts_ns: 1500,
            pid: 1,
            tid: 2,
            args: vec![arg("x", &3.0f64)],
        };
        let v = e.to_value();
        assert_eq!(v.get("name").unwrap().as_str(), Some("spmv"));
        assert_eq!(v.get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("args").unwrap().get("x").unwrap().as_f64(), Some(3.0));
        assert!(v.get("s").is_none(), "scope marker is instant-only");
    }

    #[test]
    fn instants_carry_thread_scope() {
        let e = TraceEvent {
            name: "kernel".into(),
            cat: "simt".into(),
            phase: Phase::Instant,
            ts_ns: 0,
            pid: 1,
            tid: 1,
            args: vec![],
        };
        assert_eq!(e.to_value().get("s").unwrap().as_str(), Some("t"));
        assert!(e.to_value().get("args").is_none(), "empty args omitted");
    }

    #[test]
    fn json_line_is_one_compact_object() {
        let e = TraceEvent {
            name: "n".into(),
            cat: "c".into(),
            phase: Phase::End,
            ts_ns: 2000,
            pid: 1,
            tid: 1,
            args: vec![],
        };
        let line = e.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"ph\":\"E\""));
    }
}
