//! Regret accounting: how much runtime the dispatcher's choices cost
//! versus an oracle that always picks the cheapest variant.
//!
//! Regret is only measurable when ground truth exists — i.e. when a
//! profile table records every variant's cost for an input. The ledger
//! keeps aggregate statistics plus the top-K worst decisions so a
//! report can name its biggest regret contributors.

use serde::{Deserialize, Serialize};

/// One selection decision measured against the oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretEntry {
    /// Input label (whatever identifies the input in the suite).
    pub label: String,
    /// Variant index the dispatcher executed.
    pub chosen: usize,
    /// Oracle-best variant index for this input.
    pub best: usize,
    /// Cost of the chosen variant (ns or simulator cost units).
    pub chosen_cost: f64,
    /// Cost of the best variant, same units.
    pub best_cost: f64,
    /// `chosen_cost - best_cost` (0 when the dispatcher was optimal).
    pub regret: f64,
}

/// Accumulates regret over a run, retaining the `top_k` worst entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegretLedger {
    top_k: usize,
    /// Worst decisions, sorted by descending regret, at most `top_k`.
    entries: Vec<RegretEntry>,
    /// Total decisions recorded.
    pub count: u64,
    /// Decisions where chosen != best.
    pub mispredicts: u64,
    /// Sum of regret over all decisions.
    pub total_regret: f64,
    /// Largest single-decision regret.
    pub max_regret: f64,
    /// Sum of best-variant costs (the oracle's total runtime).
    pub oracle_cost: f64,
    /// Sum of chosen-variant costs (the dispatcher's total runtime).
    pub chosen_cost: f64,
}

impl Default for RegretLedger {
    fn default() -> Self {
        Self::new(10)
    }
}

impl RegretLedger {
    /// A ledger retaining the `top_k` worst decisions.
    pub fn new(top_k: usize) -> Self {
        Self {
            top_k,
            entries: Vec::new(),
            count: 0,
            mispredicts: 0,
            total_regret: 0.0,
            max_regret: 0.0,
            oracle_cost: 0.0,
            chosen_cost: 0.0,
        }
    }

    /// Record one decision given the full per-variant cost vector for
    /// the input. Ignores empty or non-finite cost vectors.
    pub fn record(&mut self, label: &str, chosen: usize, costs: &[f64]) {
        if costs.is_empty() || costs.iter().any(|c| !c.is_finite()) {
            return;
        }
        let chosen = chosen.min(costs.len() - 1);
        let best = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs compare"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let entry = RegretEntry {
            label: label.to_string(),
            chosen,
            best,
            chosen_cost: costs[chosen],
            best_cost: costs[best],
            regret: costs[chosen] - costs[best],
        };
        self.count += 1;
        if chosen != best {
            self.mispredicts += 1;
        }
        self.total_regret += entry.regret;
        self.max_regret = self.max_regret.max(entry.regret);
        self.oracle_cost += entry.best_cost;
        self.chosen_cost += entry.chosen_cost;
        if entry.regret > 0.0 {
            self.entries.push(entry);
            self.entries
                .sort_by(|a, b| b.regret.partial_cmp(&a.regret).expect("finite regret"));
            self.entries.truncate(self.top_k);
        }
    }

    /// The retained worst decisions, descending by regret.
    pub fn top(&self) -> &[RegretEntry] {
        &self.entries
    }

    /// Mean regret per decision (0 when empty).
    pub fn mean_regret(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_regret / self.count as f64
        }
    }

    /// Achieved fraction of oracle performance: `oracle_cost /
    /// chosen_cost` (1.0 = optimal; 0 when nothing was recorded).
    pub fn oracle_fraction(&self) -> f64 {
        if self.chosen_cost <= 0.0 {
            0.0
        } else {
            self.oracle_cost / self.chosen_cost
        }
    }

    /// Mean chosen-variant cost per decision (0 when empty). Two ledgers
    /// fed the same decision stream are comparable through this — the
    /// staged-promotion window in `nitro-store` compares a candidate
    /// model's shadow predictions against the incumbent's this way.
    pub fn mean_chosen_cost(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.chosen_cost / self.count as f64
        }
    }

    /// Reset all accumulated state, keeping the `top_k` retention limit.
    /// Windowed consumers (promotion probation, rolling reports) reuse a
    /// ledger across windows instead of reallocating one.
    pub fn clear(&mut self) {
        let top_k = self.top_k;
        *self = Self::new(top_k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_choice_has_zero_regret() {
        let mut ledger = RegretLedger::new(4);
        ledger.record("a", 1, &[5.0, 2.0, 9.0]);
        assert_eq!(ledger.count, 1);
        assert_eq!(ledger.mispredicts, 0);
        assert_eq!(ledger.total_regret, 0.0);
        assert!(ledger.top().is_empty());
        assert_eq!(ledger.oracle_fraction(), 1.0);
    }

    #[test]
    fn suboptimal_choice_accrues_regret() {
        let mut ledger = RegretLedger::new(4);
        ledger.record("a", 0, &[5.0, 2.0]);
        assert_eq!(ledger.mispredicts, 1);
        assert_eq!(ledger.total_regret, 3.0);
        assert_eq!(ledger.max_regret, 3.0);
        let top = ledger.top();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].chosen, 0);
        assert_eq!(top[0].best, 1);
        assert!((ledger.oracle_fraction() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_keeps_only_top_k_worst() {
        let mut ledger = RegretLedger::new(2);
        ledger.record("small", 1, &[1.0, 2.0]); // regret 1
        ledger.record("big", 1, &[1.0, 9.0]); // regret 8
        ledger.record("mid", 1, &[1.0, 5.0]); // regret 4
        let top = ledger.top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].label, "big");
        assert_eq!(top[1].label, "mid");
        assert_eq!(ledger.count, 3);
        assert_eq!(ledger.total_regret, 13.0);
    }

    #[test]
    fn out_of_range_chosen_is_clamped_and_bad_costs_ignored() {
        let mut ledger = RegretLedger::new(2);
        ledger.record("clamped", 7, &[1.0, 3.0]);
        assert_eq!(ledger.top()[0].chosen, 1);
        assert_eq!(ledger.top()[0].best, 0);
        ledger.record("nan", 0, &[f64::NAN, 1.0]);
        ledger.record("empty", 0, &[]);
        assert_eq!(ledger.count, 1);
    }

    #[test]
    fn ledger_serializes_round_trip() {
        let mut ledger = RegretLedger::new(3);
        ledger.record("x", 0, &[4.0, 2.0]);
        let json = serde_json::to_string(&ledger).unwrap();
        let back: RegretLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count, ledger.count);
        assert_eq!(back.top(), ledger.top());
    }
}
