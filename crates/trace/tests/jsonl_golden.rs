//! Golden-file test for the JSONL sink: a fixed span/instant sequence
//! driven by the manual clock must serialize byte-for-byte identically
//! to the checked-in fixture. Catches accidental schema drift in the
//! event shape (field names, ordering, timestamp units).

use std::sync::Arc;

use nitro_trace::{arg, JsonlSink, Tracer, Value};

const GOLDEN: &str = include_str!("golden/trace.jsonl");

fn emit_fixture_sequence(tracer: &Tracer) {
    let mut dispatch = tracer.span(
        "dispatch:spmv",
        "dispatch",
        vec![arg("features", &vec![128.0f64, 0.25])],
    );
    tracer.advance(1_500);
    tracer.instant("predict", "dispatch", vec![arg("label", &2u64)]);
    tracer.advance(500);
    dispatch.end_arg("chosen", Value::Number(nitro_trace::Number::PosInt(2)));
    dispatch.end_arg("fallback", Value::Bool(false));
    drop(dispatch);

    tracer.advance(1_000);
    let phase = tracer.span("phase:training", "tuning", vec![]);
    tracer.advance(250_000);
    drop(phase);
}

#[test]
fn jsonl_output_matches_golden_file() {
    let sink = Arc::new(JsonlSink::new(Vec::new()));
    let tracer = Tracer::with_manual_clock(sink.clone());
    emit_fixture_sequence(&tracer);
    drop(tracer);
    let bytes = Arc::into_inner(sink).expect("sole owner").into_inner();
    let actual = String::from_utf8(bytes).expect("utf8");
    assert_eq!(
        actual, GOLDEN,
        "JSONL sink output drifted from the golden file; if the change \
         is intentional, regenerate crates/trace/tests/golden/trace.jsonl"
    );
}

/// The same fixture, wrapped as a Chrome document, passes validation —
/// i.e. the golden file itself is a loadable trace.
#[test]
fn golden_file_lines_form_a_valid_trace() {
    let joined = GOLDEN.lines().collect::<Vec<_>>().join(",");
    let doc = format!("{{\"traceEvents\": [{joined}]}}");
    let stats = nitro_trace::validate_chrome_trace(&doc).expect("golden trace validates");
    assert_eq!(stats.spans, 2);
    assert_eq!(stats.instants, 1);
}
