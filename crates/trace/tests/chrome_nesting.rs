//! Property: any sequence of span operations driven through a
//! [`Tracer`] exports a well-formed Chrome trace — valid JSON whose
//! `B`/`E` events nest strictly per thread lane.

use std::sync::Arc;

use nitro_trace::{arg, chrome_trace_json, validate_chrome_trace, ChromeSink, SpanGuard, Tracer};
use proptest::prelude::*;

/// Interpret a random op script against a tracer: 0 opens a span,
/// 1 closes the innermost open span, 2 emits an instant, 3 advances the
/// manual clock. Leftover spans drop (innermost first) at the end.
fn run_script(ops: &[u8]) -> String {
    let sink = Arc::new(ChromeSink::new());
    let tracer = Tracer::with_manual_clock(sink.clone());
    let mut open: Vec<SpanGuard> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op % 4 {
            0 => {
                let name = format!("span{}", open.len());
                open.push(tracer.span(&name, "test", vec![arg("op", &i)]));
            }
            1 => {
                open.pop();
            }
            2 => tracer.instant(&format!("mark{i}"), "test", vec![]),
            _ => tracer.advance(17),
        }
    }
    while open.pop().is_some() {}
    sink.to_chrome_json()
}

proptest! {
    #[test]
    fn any_span_script_exports_valid_chrome_trace(
        ops in prop::collection::vec(0u8..8, 0..200)
    ) {
        let json = run_script(&ops);
        let stats = validate_chrome_trace(&json).map_err(TestCaseError::fail)?;
        let opens = ops.iter().filter(|&&o| o % 4 == 0).count();
        prop_assert_eq!(stats.spans, opens, "every opened span closes exactly once");
    }
}

/// Spans emitted from several threads still validate: each thread gets
/// its own lane, and nesting is checked per lane.
#[test]
fn concurrent_emission_stays_valid_per_lane() {
    let sink = Arc::new(ChromeSink::new());
    let tracer = Tracer::new(sink.clone());
    std::thread::scope(|s| {
        for w in 0..4 {
            let tracer = tracer.clone();
            s.spawn(move || {
                for i in 0..25 {
                    let _outer = tracer.span(&format!("outer{w}"), "test", vec![]);
                    let _inner = tracer.span(&format!("inner{w}-{i}"), "test", vec![]);
                    tracer.instant("tick", "test", vec![]);
                    // Locals drop in reverse declaration order: inner
                    // closes before outer, keeping the lane nested.
                }
            });
        }
    });
    let json = chrome_trace_json(&sink.snapshot());
    let stats = validate_chrome_trace(&json).expect("concurrent trace validates");
    assert_eq!(stats.spans, 4 * 25 * 2);
    assert_eq!(stats.lanes, 4);
}
