use std::time::Instant;

use nitro_pulse::PulseRegistry;

#[test]
#[ignore]
fn microprobe() {
    let r = PulseRegistry::new();
    let c = r.counter("dispatch.bench.calls");
    let s = r.sketch("dispatch.bench.latency_ns");
    let n = 2_000_000u64;
    for i in 0..1000 {
        c.inc();
        s.record(100.0 + (i & 0xff) as f64);
    }
    let t = Instant::now();
    for _ in 0..n {
        c.inc();
    }
    println!(
        "counter.inc: {:.2} ns",
        t.elapsed().as_nanos() as f64 / n as f64
    );
    let t = Instant::now();
    for i in 0..n {
        s.record(100.0 + (i & 0xff) as f64);
    }
    println!(
        "sketch.record: {:.2} ns",
        t.elapsed().as_nanos() as f64 / n as f64
    );
    let t = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += std::hint::black_box(100.0 + (i & 0xff) as f64).ln();
    }
    println!(
        "ln: {:.2} ns (acc {acc})",
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
