//! Counting-allocator harness: proves the hot record path is
//! allocation-free. Handles are registered once (that lookup may
//! allocate) and each thread's stripe ordinal is assigned on first
//! touch; after that warm-up, `inc` and `record` must not allocate —
//! single-threaded or across concurrent threads.
//!
//! The counter is **thread-local**: each thread measures only its own
//! allocations. A process-global counter is racy here — the libtest
//! harness (and any other runtime thread) allocates at unpredictable
//! times, and those allocations would land inside the measurement
//! window and fail the assertion spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use nitro_pulse::PulseRegistry;

struct CountingAlloc;

thread_local! {
    // const-initialized: reading/writing the Cell never allocates, so
    // the allocator hook can touch it without recursing.
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    let _ = LOCAL_ALLOCATIONS.try_with(|n| n.set(n.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(|n| n.get())
}

/// Single test covering both phases: single-threaded and concurrent
/// recording on shared metrics, each thread asserting over its own
/// allocation count.
#[test]
fn record_path_is_allocation_free() {
    let registry = PulseRegistry::new();

    // Phase 1: single thread. Warm up (handle registration + this
    // thread's stripe ordinal), then measure.
    let counter = registry.counter("dispatch.alloc.calls");
    let sketch = registry.sketch("dispatch.alloc.latency_ns");
    for i in 0..64 {
        counter.inc();
        sketch.record(1.0 + i as f64);
    }
    let before = allocations();
    for i in 0..100_000u64 {
        counter.inc();
        sketch.record(1.0 + (i % 1000) as f64);
    }
    let single_thread_allocs = allocations() - before;

    // Phase 2: concurrent threads on the same metrics. Every thread
    // warms up before the barrier opens its measurement window, counts
    // its own allocations across the record loop, and contributes to
    // the shared total.
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    let start = Barrier::new(THREADS);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let (registry, start, total) = (&registry, &start, &total);
            s.spawn(move || {
                let c = registry.counter("dispatch.alloc.calls");
                let sk = registry.sketch("dispatch.alloc.latency_ns");
                for i in 0..64 {
                    c.inc();
                    sk.record(1.0 + i as f64);
                }
                start.wait();
                let before = allocations();
                for i in 0..OPS {
                    c.inc();
                    sk.record(1.0 + ((i + t) % 1000) as f64);
                }
                total.fetch_add(allocations() - before, Ordering::Relaxed);
            });
        }
    });
    let multi_thread_allocs = total.load(Ordering::Relaxed);

    assert_eq!(
        single_thread_allocs, 0,
        "single-thread record path allocated {single_thread_allocs} time(s)"
    );
    assert_eq!(
        multi_thread_allocs, 0,
        "multi-thread record path allocated {multi_thread_allocs} time(s)"
    );
}
