//! Counting-allocator harness: proves the hot record path is
//! allocation-free. Handles are registered once (that lookup may
//! allocate) and each thread's stripe ordinal is assigned on first
//! touch; after that warm-up, `inc` and `record` must not allocate —
//! single-threaded or across concurrent threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use nitro_pulse::PulseRegistry;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Single test covering both phases: the allocation counter is global,
/// so running the phases in one sequential test keeps the measurement
/// windows free of unrelated test-harness allocations.
#[test]
fn record_path_is_allocation_free() {
    let registry = PulseRegistry::new();

    // Phase 1: single thread. Warm up (handle registration + this
    // thread's stripe ordinal), then measure.
    let counter = registry.counter("dispatch.alloc.calls");
    let sketch = registry.sketch("dispatch.alloc.latency_ns");
    for i in 0..64 {
        counter.inc();
        sketch.record(1.0 + i as f64);
    }
    let before = allocations();
    for i in 0..100_000u64 {
        counter.inc();
        sketch.record(1.0 + (i % 1000) as f64);
    }
    let single_thread_allocs = allocations() - before;

    // Phase 2: concurrent threads on the same metrics. Every thread
    // warms up before the measurement window opens (`start`), and all
    // threads are parked on `hold` while the window closes, so the
    // window contains nothing but the record loops and barrier wakes.
    const THREADS: usize = 4;
    const OPS: u64 = 50_000;
    let start = Barrier::new(THREADS + 1);
    let done = Barrier::new(THREADS + 1);
    let hold = Barrier::new(THREADS + 1);
    let mut multi_thread_allocs = 0;
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let (registry, start, done, hold) = (&registry, &start, &done, &hold);
            s.spawn(move || {
                let c = registry.counter("dispatch.alloc.calls");
                let sk = registry.sketch("dispatch.alloc.latency_ns");
                for i in 0..64 {
                    c.inc();
                    sk.record(1.0 + i as f64);
                }
                start.wait();
                for i in 0..OPS {
                    c.inc();
                    sk.record(1.0 + ((i + t) % 1000) as f64);
                }
                done.wait();
                hold.wait();
            });
        }
        start.wait();
        let before = allocations();
        done.wait();
        multi_thread_allocs = allocations() - before;
        hold.wait();
    });

    assert_eq!(
        single_thread_allocs, 0,
        "single-thread record path allocated {single_thread_allocs} time(s)"
    );
    assert_eq!(
        multi_thread_allocs, 0,
        "multi-thread record path allocated {multi_thread_allocs} time(s)"
    );
}
