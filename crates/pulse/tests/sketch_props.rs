//! Property tests: the quantile sketch honors its relative-error
//! contract, and merging is lossless (a merge is indistinguishable from
//! sketching the concatenated stream) as well as commutative and
//! associative.

use nitro_pulse::{QuantileSketch, SketchConfig};
use proptest::prelude::*;

/// Arbitrary positive observations inside the sketch's accurate range
/// (the default config covers 1 ns to ~1.7e11 ns).
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..1e9, 1..200)
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::default();
    for &v in values {
        s.record(v);
    }
    s
}

/// Exact value at the same rank the sketch targets: 0-indexed rank
/// `⌊q · (n − 1)⌋` of the sorted stream.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

/// Structural equality modulo the floating-point `sum`, which is only
/// reproducible up to addition-order rounding. Everything else —
/// bucket counts, extrema, quantiles — must match exactly.
fn assert_same_modulo_sum(a: &QuantileSketch, b: &QuantileSketch) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.count(), b.count());
    prop_assert_eq!(a.zeros(), b.zeros());
    prop_assert_eq!(a.saturated(), b.saturated());
    prop_assert_eq!(a.min(), b.min());
    prop_assert_eq!(a.max(), b.max());
    for i in 0..=100 {
        let q = i as f64 / 100.0;
        prop_assert_eq!(a.quantile(q), b.quantile(q));
    }
    let tol = 1e-9 * a.sum().abs().max(1.0);
    prop_assert!(
        (a.sum() - b.sum()).abs() <= tol,
        "sums diverge beyond rounding: {} vs {}",
        a.sum(),
        b.sum()
    );
    Ok(())
}

proptest! {
    /// Every quantile estimate is within `α` relative error of the
    /// exact value at the same rank, for in-range observations.
    #[test]
    fn quantile_error_within_alpha(values in arb_values()) {
        let alpha = SketchConfig::default().alpha;
        let s = sketch_of(&values);
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = s.quantile(q);
            // Allow a hair of float slack on top of α for boundary
            // values whose `ln`-based bucket index rounds either way.
            let tol = alpha * exact * (1.0 + 1e-6);
            prop_assert!(
                (est - exact).abs() <= tol,
                "q={q}: estimate {est} vs exact {exact} exceeds α={alpha}"
            );
        }
    }

    /// merge(sketch(a), sketch(b)) behaves exactly like
    /// sketch(a ++ b): a fused sketch loses nothing vs. sketching the
    /// concatenated stream directly.
    #[test]
    fn merge_equals_concatenation(a in arb_values(), b in arb_values()) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        assert_same_modulo_sum(&merged, &sketch_of(&concat))?;
    }

    /// Merging is commutative: a ⊕ b == b ⊕ a, bit-for-bit (u64 bucket
    /// addition and f64 `+`/`min`/`max` are all commutative).
    #[test]
    fn merge_commutes(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), exactly on
    /// counts and quantiles, up to addition-order rounding on `sum`.
    #[test]
    fn merge_associates(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        assert_same_modulo_sum(&left, &right)?;
    }

    /// Merging an empty sketch is the identity, from either side.
    #[test]
    fn merge_identity(a in arb_values()) {
        let sa = sketch_of(&a);
        let mut left = QuantileSketch::default();
        left.merge(&sa);
        prop_assert_eq!(&left, &sa);
        let mut right = sa.clone();
        right.merge(&QuantileSketch::default());
        prop_assert_eq!(&right, &sa);
    }
}
