//! Wiring pulse into the dispatch pipeline: pre-resolved handle
//! bundles that implement `nitro-core`'s [`DispatchObserver`] hook.
//!
//! [`FunctionPulse::install`] registers every metric a tuned function
//! emits — call/win/veto/fallback counters (the same names the traced
//! path uses, so `nitro-audit`'s metrics analyzer reads pulse snapshots
//! unchanged), latency/feature/predict sketches, and optionally a
//! [`PulseProfiler`] sampling every Kth call — then installs itself as
//! the function's observer. After installation the per-dispatch cost is
//! a handful of relaxed atomic ops on the caller's stripes: no lock, no
//! allocation, no string formatting.

use std::sync::Arc;

use nitro_core::{CodeVariant, DispatchObservation, DispatchObserver};

use crate::profiler::{feature_regime, PulseProfiler};
use crate::registry::{PulseCounter, PulseRegistry, PulseSketch};

/// Pre-resolved pulse handles for one tuned function, installable as
/// its dispatch observer.
#[derive(Debug)]
pub struct FunctionPulse {
    calls: PulseCounter,
    async_calls: PulseCounter,
    fallback: PulseCounter,
    kernel_evals: PulseCounter,
    /// Indexed by variant position, like the dispatcher's own tables.
    wins: Vec<PulseCounter>,
    vetoes: Vec<PulseCounter>,
    latency: PulseSketch,
    feature: PulseSketch,
    predict: PulseSketch,
    profiler: Option<PulseProfiler>,
}

impl FunctionPulse {
    /// Register this function's metrics in `registry` and return the
    /// handle bundle. Registration is the cold path — every counter and
    /// sketch the hot path touches is resolved here, once.
    ///
    /// Metric names: `dispatch.<fn>.{calls,async_calls,fallback}`,
    /// `dispatch.<fn>.{win,veto}.<variant>` (counters, mirroring the
    /// traced path's naming), `dispatch.<fn>.latency_ns`,
    /// `dispatch.<fn>.feature_ns`, `ml.<fn>.predict_ns` (sketches) and
    /// `ml.predict.kernel_evals`.
    pub fn register<I: ?Sized>(registry: &PulseRegistry, cv: &CodeVariant<I>) -> Self {
        let name = cv.name();
        Self {
            calls: registry.counter(&format!("dispatch.{name}.calls")),
            async_calls: registry.counter(&format!("dispatch.{name}.async_calls")),
            fallback: registry.counter(&format!("dispatch.{name}.fallback")),
            kernel_evals: registry.counter("ml.predict.kernel_evals"),
            wins: cv
                .variant_names()
                .iter()
                .map(|v| registry.counter(&format!("dispatch.{name}.win.{v}")))
                .collect(),
            vetoes: cv
                .variant_names()
                .iter()
                .map(|v| registry.counter(&format!("dispatch.{name}.veto.{v}")))
                .collect(),
            latency: registry.sketch(&format!("dispatch.{name}.latency_ns")),
            feature: registry.sketch(&format!("dispatch.{name}.feature_ns")),
            predict: registry.sketch(&format!("ml.{name}.predict_ns")),
            profiler: None,
        }
    }

    /// Attach a sampling profiler: every Kth dispatch lands in the
    /// profiler's per-(function, variant, feature-regime) cells.
    pub fn with_profiler(mut self, profiler: PulseProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Register metrics and install the bundle as `cv`'s dispatch
    /// observer in one step. Returns the shared handle (also useful for
    /// asserting on values in tests).
    pub fn install<I: ?Sized>(
        cv: &mut CodeVariant<I>,
        registry: &PulseRegistry,
        profiler: Option<PulseProfiler>,
    ) -> Arc<FunctionPulse> {
        let mut fp = FunctionPulse::register(registry, cv);
        if let Some(p) = profiler {
            fp = fp.with_profiler(p);
        }
        let fp = Arc::new(fp);
        cv.set_dispatch_observer(fp.clone());
        fp
    }

    /// Total dispatches recorded.
    pub fn calls(&self) -> u64 {
        self.calls.value()
    }

    /// The function's latency sketch handle.
    pub fn latency(&self) -> &PulseSketch {
        &self.latency
    }
}

impl DispatchObserver for FunctionPulse {
    #[inline]
    fn on_dispatch(&self, o: &DispatchObservation<'_>) {
        self.calls.inc();
        if o.via_async {
            self.async_calls.inc();
        }
        if let Some(win) = self.wins.get(o.variant) {
            win.inc();
        }
        if o.fell_back {
            self.fallback.inc();
            if let Some(veto) = self.vetoes.get(o.intended) {
                veto.inc();
            }
        }
        self.latency.record(o.objective_ns);
        self.feature.record(o.feature_cost_ns);
        if o.predict_wall_ns > 0 {
            self.predict.record(o.predict_wall_ns as f64);
        }
        if o.kernel_evals > 0 {
            self.kernel_evals.add(o.kernel_evals);
        }
        if let Some(p) = &self.profiler {
            if p.should_sample() {
                p.record_sample(
                    o.function,
                    o.variant_name,
                    feature_regime(o.features),
                    o.objective_ns,
                );
            }
        }
    }
}

/// Pre-resolved pulse counters for one guarded function
/// (`guard.<fn>.*`, mirroring `nitro-guard`'s traced counter names).
/// `nitro-guard` records into these alongside — and independently of —
/// its tracer metrics.
#[derive(Debug, Clone)]
pub struct GuardPulse {
    /// `guard.<fn>.calls`.
    pub calls: PulseCounter,
    /// `guard.<fn>.failure`.
    pub failure: PulseCounter,
    /// `guard.<fn>.fallback`.
    pub fallback: PulseCounter,
    /// `guard.<fn>.retry`.
    pub retry: PulseCounter,
    /// `guard.<fn>.recovered`.
    pub recovered: PulseCounter,
    /// `guard.<fn>.quarantine`.
    pub quarantine: PulseCounter,
    /// `guard.<fn>.degraded`.
    pub degraded: PulseCounter,
}

impl GuardPulse {
    /// Register the guard counter set for `function`.
    pub fn register(registry: &PulseRegistry, function: &str) -> Self {
        let c = |suffix: &str| registry.counter(&format!("guard.{function}.{suffix}"));
        Self {
            calls: c("calls"),
            failure: c("failure"),
            fallback: c("fallback"),
            retry: c("retry"),
            recovered: c("recovered"),
            quarantine: c("quarantine"),
            degraded: c("degraded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnFeature, FnVariant};

    fn toy() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("toy", &ctx);
        cv.add_variant(FnVariant::new("a", |x: &f64| *x + 100.0));
        cv.add_variant(FnVariant::new("b", |x: &f64| *x + 200.0));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |x: &f64| *x));
        cv
    }

    #[test]
    fn installed_pulse_counts_dispatches() {
        let registry = PulseRegistry::with_stripes(2);
        let mut cv = toy();
        let fp = FunctionPulse::install(&mut cv, &registry, None);
        for i in 0..20 {
            cv.call(&(i as f64)).unwrap();
        }
        assert_eq!(fp.calls(), 20);
        assert_eq!(registry.counter_value("dispatch.toy.calls"), Some(20));
        // No model installed: the default variant wins every call.
        assert_eq!(registry.counter_value("dispatch.toy.win.a"), Some(20));
        assert_eq!(registry.counter_value("dispatch.toy.win.b"), Some(0));
        let lat = registry.fused_sketch("dispatch.toy.latency_ns").unwrap();
        assert_eq!(lat.count(), 20);
        assert!(lat.quantile(0.5) > 0.0);
    }

    #[test]
    fn profiler_samples_through_the_observer() {
        let registry = PulseRegistry::with_stripes(2);
        let profiler = PulseProfiler::new(4);
        let mut cv = toy();
        FunctionPulse::install(&mut cv, &registry, Some(profiler.clone()));
        for i in 0..40 {
            cv.call(&(i as f64)).unwrap();
        }
        assert_eq!(profiler.sampled(), 10);
        let collapsed = profiler.collapsed();
        assert!(collapsed.contains("nitro;dispatch;toy;a;"), "{collapsed}");
    }

    #[test]
    fn snapshot_feeds_the_audit_metrics_analyzer_shape() {
        let registry = PulseRegistry::with_stripes(2);
        let mut cv = toy();
        FunctionPulse::install(&mut cv, &registry, None);
        for i in 0..15 {
            cv.call(&(i as f64)).unwrap();
        }
        let snap = registry.snapshot();
        // The pulse snapshot uses the traced path's counter names, so
        // downstream consumers parse it without change.
        assert_eq!(snap.counter("dispatch.toy.calls"), Some(15));
        assert!(snap.counter("dispatch.toy.win.b").is_some());
        assert!(snap.histogram("dispatch.toy.latency_ns").is_some());
    }

    #[test]
    fn guard_pulse_registers_the_counter_set() {
        let registry = PulseRegistry::with_stripes(2);
        let gp = GuardPulse::register(&registry, "spmv");
        gp.calls.add(10);
        gp.fallback.inc();
        assert_eq!(registry.counter_value("guard.spmv.calls"), Some(10));
        assert_eq!(registry.counter_value("guard.spmv.fallback"), Some(1));
        assert_eq!(registry.counter_value("guard.spmv.retry"), Some(0));
    }
}
