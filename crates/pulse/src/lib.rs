//! # nitro-pulse — concurrency-first telemetry for the Nitro stack
//!
//! The observability layer in `nitro-trace` funnels every metric
//! through one mutex and buckets latencies by decade — fine for
//! single-threaded tuning runs, fatal for a serving layer where N
//! worker shards record on every dispatch and a p99 has to mean
//! something. This crate is the production-shaped replacement, built
//! around four pieces:
//!
//! * **Sharded lock-free metrics** ([`PulseRegistry`],
//!   [`PulseCounter`], [`PulseGauge`], [`PulseSketch`]): metrics are
//!   registered once, at wiring time, returning handles that record
//!   through per-thread striped atomics ([`StripedU64`]) — no lock, no
//!   allocation, no false sharing. Snapshots fold the stripes back
//!   into the ordinary `nitro-trace` [`MetricsSnapshot`] schema, so
//!   every existing consumer reads pulse metrics unchanged.
//! * **Mergeable quantile sketches** ([`QuantileSketch`],
//!   [`ConcurrentSketch`]): DDSketch-style log-bucketed sketches with a
//!   configured relative-error bound `α` — a p99 read off a sketch is
//!   within `α` of the true p99. Merging adds bucket counts and is
//!   associative and commutative, so per-stripe and per-shard sketches
//!   fuse into process-level p50/p99/p999 with no accuracy loss.
//! * **Continuous dispatch profiling** ([`PulseProfiler`]): every Kth
//!   `CodeVariant::call` is sampled into per-(function, variant,
//!   feature-regime) latency sketches, exported as collapsed-stack
//!   (flamegraph-compatible) text and a JSON profile.
//! * **SLO watchdogs** ([`SloSpec`], [`SloWatchdog`], [`PulseAlert`]):
//!   declarative objectives (`p99(dispatch.latency) < X`,
//!   `rate(guard.fallback) < 5%`) evaluated over sliding windows with
//!   multi-window burn-rate alerting. Alerts are typed data;
//!   `nitro_store::StagedPromotion` consumes a latency regression as a
//!   rollback signal, closing the observe→act loop.
//!
//! Wiring into dispatch goes through `nitro-core`'s
//! [`DispatchObserver`] hook: [`FunctionPulse::install`] registers a
//! function's whole metric set and observes every call; [`GuardPulse`]
//! does the same for `nitro-guard`'s resilience counters.
//!
//! Misconfigurations are audited as `NITRO090`–`NITRO093`
//! ([`audit_slos`], [`audit_registry`]).
//!
//! [`DispatchObserver`]: nitro_core::DispatchObserver
//! [`MetricsSnapshot`]: nitro_trace::MetricsSnapshot

#![warn(missing_docs)]

pub mod audit;
pub mod dispatch;
pub mod profiler;
pub mod registry;
pub mod sketch;
pub mod slo;
mod stripe;

pub use audit::{audit_registry, audit_slos, MetricCadence};
pub use dispatch::{FunctionPulse, GuardPulse};
pub use profiler::{feature_regime, ProfileEntry, ProfileReport, PulseProfiler};
pub use registry::{PulseCounter, PulseGauge, PulseRegistry, PulseSketch};
pub use sketch::{ConcurrentSketch, QuantileSketch, SketchConfig};
pub use slo::{AlertKind, AlertSeverity, PulseAlert, SloExpr, SloSpec, SloWatchdog, WindowSpec};
pub use stripe::{default_stripes, StripedU64};
