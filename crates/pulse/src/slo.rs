//! Declarative SLOs over pulse metrics, evaluated on sliding windows
//! with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names an objective — `p99(dispatch.latency) < X` or
//! `rate(guard.fallback) < 5%` — and a set of [`WindowSpec`]s. On every
//! [`SloWatchdog::tick`] the watchdog snapshots the referenced metrics
//! (cumulative sketches and counters), diffs them against the frame
//! from each window's start (sketch counts are monotone, so the
//! elementwise difference *is* the window's sketch), and fires a typed
//! [`PulseAlert`] only when **every** window breaches its burn-scaled
//! threshold. The classic pairing is a long window at burn 1.0 (the
//! objective is really violated) plus a short window at a higher burn
//! factor (it is violating *right now*) — slow burns page late, fast
//! burns page fast, and a transient spike that ended does not page at
//! all.
//!
//! Alerts are plain data so downstream machinery can act on them:
//! `nitro_store::StagedPromotion::ingest_alert` consumes a
//! [`AlertKind::LatencyRegression`] as a rollback signal, closing the
//! observe→act loop.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::registry::PulseRegistry;
use crate::sketch::QuantileSketch;

/// What an SLO constrains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloExpr {
    /// `quantile(metric, q) < max_value` over the window (a latency
    /// objective; `metric` names a pulse sketch).
    QuantileBelow {
        /// Sketch metric name (e.g. `dispatch.spmv.latency_ns`).
        metric: String,
        /// Quantile in `[0, 1]` (0.99 for a p99 objective).
        q: f64,
        /// Breach threshold at burn factor 1.0.
        max_value: f64,
    },
    /// `event / per < max_rate` over the window (an error-budget
    /// objective; both names are pulse counters).
    RateBelow {
        /// Numerator counter (e.g. `guard.spmv.fallback`).
        event: String,
        /// Denominator counter (e.g. `dispatch.spmv.calls`).
        per: String,
        /// Breach threshold at burn factor 1.0.
        max_rate: f64,
    },
}

/// One evaluation window: how far back to diff, and how much faster
/// than the objective the budget must be burning before this window
/// counts as breached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window length in watchdog ticks (must be ≥ 1).
    pub ticks: usize,
    /// Threshold multiplier for this window (1.0 = the objective
    /// itself; 2.0 = burning budget at twice the sustainable rate).
    pub burn_factor: f64,
}

/// Alert urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Wake someone up (and trip automated rollback).
    Page,
    /// Surface in reports.
    Warn,
}

/// What kind of objective an alert came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// A latency quantile objective breached.
    LatencyRegression,
    /// A rate objective breached.
    RateBreach,
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Human-readable objective name (appears in alerts).
    pub name: String,
    /// The constrained quantity.
    pub expr: SloExpr,
    /// Evaluation windows; the alert fires only when all of them
    /// breach. Empty windows never fire.
    pub windows: Vec<WindowSpec>,
    /// Urgency of the resulting alert.
    pub severity: AlertSeverity,
}

impl SloSpec {
    /// A p99 latency objective with the default window pair: 4 ticks at
    /// burn 1.0 (sustained) and 1 tick at burn 1.0 (still happening).
    pub fn p99_below(name: impl Into<String>, metric: impl Into<String>, max_value: f64) -> Self {
        Self {
            name: name.into(),
            expr: SloExpr::QuantileBelow {
                metric: metric.into(),
                q: 0.99,
                max_value,
            },
            windows: vec![
                WindowSpec {
                    ticks: 4,
                    burn_factor: 1.0,
                },
                WindowSpec {
                    ticks: 1,
                    burn_factor: 1.0,
                },
            ],
            severity: AlertSeverity::Page,
        }
    }

    /// A rate objective (`event / per < max_rate`) with the default
    /// window pair.
    pub fn rate_below(
        name: impl Into<String>,
        event: impl Into<String>,
        per: impl Into<String>,
        max_rate: f64,
    ) -> Self {
        Self {
            name: name.into(),
            expr: SloExpr::RateBelow {
                event: event.into(),
                per: per.into(),
                max_rate,
            },
            windows: vec![
                WindowSpec {
                    ticks: 4,
                    burn_factor: 1.0,
                },
                WindowSpec {
                    ticks: 1,
                    burn_factor: 1.0,
                },
            ],
            severity: AlertSeverity::Page,
        }
    }

    /// Replace the evaluation windows.
    pub fn with_windows(mut self, windows: Vec<WindowSpec>) -> Self {
        self.windows = windows;
        self
    }

    /// Downgrade to a warn-only objective.
    pub fn warn_only(mut self) -> Self {
        self.severity = AlertSeverity::Warn;
        self
    }

    /// Every metric name the objective reads.
    pub fn referenced_metrics(&self) -> Vec<&str> {
        match &self.expr {
            SloExpr::QuantileBelow { metric, .. } => vec![metric],
            SloExpr::RateBelow { event, per, .. } => vec![event, per],
        }
    }

    /// The longest configured window.
    pub fn max_window_ticks(&self) -> usize {
        self.windows.iter().map(|w| w.ticks).max().unwrap_or(0)
    }
}

/// A typed, serializable alert: which objective breached, by how much,
/// and on which window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PulseAlert {
    /// The breached objective's name.
    pub slo: String,
    /// Latency or rate breach.
    pub kind: AlertKind,
    /// Urgency.
    pub severity: AlertSeverity,
    /// The primary metric (sketch name for latency, event counter for
    /// rates).
    pub metric: String,
    /// The windowed value that breached.
    pub observed: f64,
    /// The objective's base threshold (burn factor 1.0).
    pub threshold: f64,
    /// Length of the shortest breaching window, in ticks.
    pub window_ticks: usize,
}

impl PulseAlert {
    /// The tuned-function segment of a conventionally named metric
    /// (`dispatch.<fn>.latency_ns`, `guard.<fn>.fallback`, …): the
    /// second dot-segment when at least three are present.
    pub fn function(&self) -> Option<&str> {
        let mut parts = self.metric.splitn(3, '.');
        let _prefix = parts.next()?;
        let function = parts.next()?;
        parts.next()?; // require a trailing segment
        Some(function)
    }

    /// True when this alert is a Page-severity latency regression on
    /// the named tuned function — the condition that makes
    /// `nitro-store` roll a promotion back and `nitro-serve` tighten
    /// admission. Centralized here so every consumer reacts to exactly
    /// the same alerts.
    pub fn is_page_latency_for(&self, function: &str) -> bool {
        self.kind == AlertKind::LatencyRegression
            && self.severity == AlertSeverity::Page
            && self.function() == Some(function)
    }
}

/// One tick's cumulative capture of the metrics the specs reference.
#[derive(Debug)]
struct Frame {
    sketches: Vec<(String, QuantileSketch)>,
    counters: Vec<(String, u64)>,
}

impl Frame {
    fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Evaluates a set of [`SloSpec`]s against a [`PulseRegistry`], one
/// sliding-window frame per [`tick`](SloWatchdog::tick).
#[derive(Debug)]
pub struct SloWatchdog {
    specs: Vec<SloSpec>,
    frames: VecDeque<Frame>,
    capacity: usize,
    min_window_count: u64,
}

impl SloWatchdog {
    /// A watchdog for the given objectives. Frame retention is sized to
    /// the longest window.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let capacity = specs
            .iter()
            .map(SloSpec::max_window_ticks)
            .max()
            .unwrap_or(0)
            + 1;
        Self {
            specs,
            frames: VecDeque::with_capacity(capacity),
            capacity,
            min_window_count: 1,
        }
    }

    /// Require at least `n` observations in a window before judging a
    /// quantile objective (tiny windows produce meaningless quantiles).
    pub fn with_min_window_count(mut self, n: u64) -> Self {
        self.min_window_count = n.max(1);
        self
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Frames captured so far (windows of `w` ticks evaluate once more
    /// than `w` frames exist).
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    /// Capture one frame and evaluate every objective. Returns the
    /// alerts that fired this tick.
    pub fn tick(&mut self, registry: &PulseRegistry) -> Vec<PulseAlert> {
        let mut sketches = Vec::new();
        let mut counters = Vec::new();
        for spec in &self.specs {
            for metric in spec.referenced_metrics() {
                if sketches.iter().any(|(k, _): &(String, _)| k == metric)
                    || counters.iter().any(|(k, _): &(String, u64)| k == metric)
                {
                    continue;
                }
                if let Some(s) = registry.fused_sketch(metric) {
                    sketches.push((metric.to_string(), s));
                } else if let Some(c) = registry.counter_value(metric) {
                    counters.push((metric.to_string(), c));
                }
            }
        }
        self.frames.push_back(Frame { sketches, counters });
        while self.frames.len() > self.capacity {
            self.frames.pop_front();
        }

        let mut alerts = Vec::new();
        let now = self.frames.back().expect("just pushed");
        for spec in &self.specs {
            if spec.windows.is_empty() {
                continue;
            }
            let mut breaching: Option<(f64, usize)> = None; // (observed, ticks)
            let mut all_breach = true;
            for w in &spec.windows {
                let Some(observed) = self.window_value(now, spec, w) else {
                    all_breach = false;
                    break;
                };
                let threshold = self.base_threshold(spec) * w.burn_factor;
                if observed > threshold {
                    breaching = match breaching {
                        Some((obs, ticks)) if ticks <= w.ticks => Some((obs, ticks)),
                        _ => Some((observed, w.ticks)),
                    };
                } else {
                    all_breach = false;
                    break;
                }
            }
            if all_breach {
                if let Some((observed, window_ticks)) = breaching {
                    let (kind, metric) = match &spec.expr {
                        SloExpr::QuantileBelow { metric, .. } => {
                            (AlertKind::LatencyRegression, metric.clone())
                        }
                        SloExpr::RateBelow { event, .. } => (AlertKind::RateBreach, event.clone()),
                    };
                    alerts.push(PulseAlert {
                        slo: spec.name.clone(),
                        kind,
                        severity: spec.severity,
                        metric,
                        observed,
                        threshold: self.base_threshold(spec),
                        window_ticks,
                    });
                }
            }
        }
        alerts
    }

    fn base_threshold(&self, spec: &SloSpec) -> f64 {
        match &spec.expr {
            SloExpr::QuantileBelow { max_value, .. } => *max_value,
            SloExpr::RateBelow { max_rate, .. } => *max_rate,
        }
    }

    /// The windowed value for one window of one spec, or `None` when
    /// the window cannot be evaluated yet (not enough frames, missing
    /// metric, empty window).
    fn window_value(&self, now: &Frame, spec: &SloSpec, w: &WindowSpec) -> Option<f64> {
        if w.ticks == 0 || self.frames.len() <= w.ticks {
            return None;
        }
        let start = &self.frames[self.frames.len() - 1 - w.ticks];
        match &spec.expr {
            SloExpr::QuantileBelow { metric, q, .. } => {
                let cur = now.sketch(metric)?;
                let delta = match start.sketch(metric) {
                    Some(old) => cur.delta_since(old),
                    None => cur.clone(),
                };
                if delta.count() < self.min_window_count {
                    return None;
                }
                Some(delta.quantile(*q))
            }
            SloExpr::RateBelow { event, per, .. } => {
                let ev = now
                    .counter(event)?
                    .saturating_sub(start.counter(event).unwrap_or(0));
                let denom = now
                    .counter(per)?
                    .saturating_sub(start.counter(per).unwrap_or(0));
                if denom == 0 {
                    return None;
                }
                Some(ev as f64 / denom as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_spec(max_ns: f64) -> SloSpec {
        SloSpec::p99_below("spmv p99", "dispatch.spmv.latency_ns", max_ns).with_windows(vec![
            WindowSpec {
                ticks: 2,
                burn_factor: 1.0,
            },
            WindowSpec {
                ticks: 1,
                burn_factor: 1.0,
            },
        ])
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let r = PulseRegistry::with_stripes(2);
        let s = r.sketch("dispatch.spmv.latency_ns");
        let mut dog = SloWatchdog::new(vec![latency_spec(10_000.0)]);
        for _ in 0..6 {
            for i in 0..100 {
                s.record(1000.0 + i as f64);
            }
            assert!(dog.tick(&r).is_empty());
        }
    }

    #[test]
    fn sustained_regression_trips_the_latency_slo() {
        let r = PulseRegistry::with_stripes(2);
        let s = r.sketch("dispatch.spmv.latency_ns");
        let mut dog = SloWatchdog::new(vec![latency_spec(10_000.0)]);
        // Healthy warm-up fills the windows.
        for _ in 0..3 {
            for _ in 0..100 {
                s.record(1000.0);
            }
            assert!(dog.tick(&r).is_empty());
        }
        // Regress: every call now takes 50 µs.
        let mut fired = Vec::new();
        for _ in 0..3 {
            for _ in 0..100 {
                s.record(50_000.0);
            }
            fired.extend(dog.tick(&r));
        }
        assert!(!fired.is_empty(), "regression must alert");
        let a = &fired[0];
        assert_eq!(a.kind, AlertKind::LatencyRegression);
        assert_eq!(a.function(), Some("spmv"));
        assert!(a.observed > a.threshold, "{a:?}");
    }

    #[test]
    fn transient_spike_outside_all_windows_does_not_page() {
        let r = PulseRegistry::with_stripes(2);
        let s = r.sketch("dispatch.spmv.latency_ns");
        let mut dog = SloWatchdog::new(vec![latency_spec(10_000.0)]);
        // One bad tick...
        for _ in 0..100 {
            s.record(50_000.0);
        }
        assert!(dog.tick(&r).is_empty(), "windows not filled yet");
        // ...then healthy traffic long enough that the short window is
        // clean even though the long window still contains the spike.
        for _ in 0..400 {
            s.record(1000.0);
        }
        assert!(dog.tick(&r).is_empty());
        for _ in 0..400 {
            s.record(1000.0);
        }
        assert!(
            dog.tick(&r).is_empty(),
            "short window is healthy, must not page"
        );
    }

    #[test]
    fn fallback_rate_slo_fires_on_budget_burn() {
        let r = PulseRegistry::with_stripes(2);
        let calls = r.counter("dispatch.spmv.calls");
        let fb = r.counter("guard.spmv.fallback");
        let spec = SloSpec::rate_below(
            "spmv fallback budget",
            "guard.spmv.fallback",
            "dispatch.spmv.calls",
            0.05,
        )
        .with_windows(vec![
            WindowSpec {
                ticks: 2,
                burn_factor: 1.0,
            },
            WindowSpec {
                ticks: 1,
                burn_factor: 2.0,
            },
        ]);
        let mut dog = SloWatchdog::new(vec![spec]);
        for _ in 0..3 {
            calls.add(100);
            fb.add(1); // 1% — healthy
            assert!(dog.tick(&r).is_empty());
        }
        let mut fired = Vec::new();
        for _ in 0..3 {
            calls.add(100);
            fb.add(30); // 30% — burning 6× budget
            fired.extend(dog.tick(&r));
        }
        assert!(!fired.is_empty());
        assert_eq!(fired[0].kind, AlertKind::RateBreach);
        assert!(fired[0].observed > 0.05 * 2.0);
    }

    #[test]
    fn alert_serde_round_trips() {
        let a = PulseAlert {
            slo: "spmv p99".into(),
            kind: AlertKind::LatencyRegression,
            severity: AlertSeverity::Page,
            metric: "dispatch.spmv.latency_ns".into(),
            observed: 50_000.0,
            threshold: 10_000.0,
            window_ticks: 1,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: PulseAlert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
