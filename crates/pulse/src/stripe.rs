//! Per-thread striped atomics: the zero-contention recording primitive.
//!
//! Every recording thread is assigned a dense ordinal on first touch;
//! a [`StripedU64`] spreads its value across cache-line-padded atomic
//! cells indexed by that ordinal, so concurrent `add`s from different
//! threads land on different cache lines and never contend. Reads
//! ([`StripedU64::sum`]) fold the stripes — reads are rare (snapshots),
//! writes are the hot path.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One atomic padded out to two cache lines so adjacent stripes never
/// false-share (128 B covers the spatial prefetcher pairing lines on
/// common x86 parts).
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct PadCell(pub(crate) AtomicU64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Dense ordinal of the calling thread, assigned round-robin on first
/// use. Stripe selection masks this down to the stripe count, so with
/// at least as many stripes as recording threads every thread owns its
/// stripe exclusively.
#[inline]
pub(crate) fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|slot| {
        let v = slot.get();
        if v != usize::MAX {
            return v;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        slot.set(id);
        id
    })
}

/// A `u64` accumulator striped across padded atomic cells. `add` is a
/// single relaxed `fetch_add` on the caller's stripe — no lock, no
/// allocation; `sum` folds all stripes for snapshots.
#[derive(Debug)]
pub struct StripedU64 {
    cells: Box<[PadCell]>,
}

impl StripedU64 {
    /// A striped accumulator with `stripes` cells, rounded up to a
    /// power of two (minimum 1) so stripe selection is a mask.
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Self {
            cells: (0..n).map(|_| PadCell::default()).collect(),
        }
    }

    /// The calling thread's stripe cell.
    #[inline]
    pub(crate) fn cell(&self) -> &AtomicU64 {
        // Length is a power of two by construction.
        let mask = self.cells.len() - 1;
        &self.cells[thread_ordinal() & mask].0
    }

    /// Add `delta` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell().fetch_add(delta, Ordering::Relaxed);
    }

    /// Add 1 on the calling thread's stripe.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Fold all stripes into the total (wrapping on overflow, like any
    /// u64 counter).
    pub fn sum(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Number of stripes (power of two).
    pub fn stripes(&self) -> usize {
        self.cells.len()
    }
}

/// An `f64` stored in an `AtomicU64` by bit pattern. `set`/`get` are
/// single atomic ops; the CAS helpers serve sketch sum/min/max where
/// contention is already bounded by striping.
#[derive(Debug)]
pub(crate) struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub(crate) fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    #[inline]
    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Default stripe count: the machine's available parallelism rounded up
/// to a power of two, so by default no two hardware threads share a
/// stripe.
pub fn default_stripes() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_sum_counts_across_threads() {
        let c = std::sync::Arc::new(StripedU64::new(8));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.sum(), 4000);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(StripedU64::new(0).stripes(), 1);
        assert_eq!(StripedU64::new(3).stripes(), 4);
        assert_eq!(StripedU64::new(8).stripes(), 8);
    }

    #[test]
    fn atomic_f64_update_accumulates() {
        let a = AtomicF64::new(0.0);
        a.update(|v| v + 1.5);
        a.update(|v| v + 2.5);
        assert_eq!(a.get(), 4.0);
        a.set(-1.0);
        assert_eq!(a.get(), -1.0);
    }
}
