//! The pulse registry: named striped counters, gauges and concurrent
//! sketches behind cheap clonable handles.
//!
//! Registration (`counter`/`gauge`/`sketch`) takes a short lock and
//! happens once, at wiring time; the handles it returns record through
//! plain atomics with no lock and no allocation — that is the entire
//! point. Snapshots fold the stripes back into the ordinary
//! `nitro-trace` [`MetricsSnapshot`] schema (sketches export as sparse
//! log-bucket histograms), so every existing consumer — JSON artifacts,
//! `nitro-audit` analyzers, report binaries — reads pulse metrics
//! without change.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::sketch::{ConcurrentSketch, QuantileSketch, SketchConfig};
use crate::stripe::{default_stripes, AtomicF64, StripedU64};
use nitro_trace::MetricsSnapshot;

/// Handle to one striped counter. Clone freely; all clones add into the
/// same stripes.
#[derive(Debug, Clone)]
pub struct PulseCounter {
    cell: Arc<StripedU64>,
}

impl PulseCounter {
    /// Add 1 on the calling thread's stripe (lock-free, no allocation).
    #[inline]
    pub fn inc(&self) {
        self.cell.inc();
    }

    /// Add `delta` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell.add(delta);
    }

    /// Current folded total.
    pub fn value(&self) -> u64 {
        self.cell.sum()
    }
}

/// Handle to one gauge (last-write-wins absolute value).
#[derive(Debug, Clone)]
pub struct PulseGauge {
    cell: Arc<AtomicF64>,
}

impl PulseGauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.set(v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.cell.get()
    }
}

/// Handle to one concurrent quantile sketch.
#[derive(Debug, Clone)]
pub struct PulseSketch {
    cell: Arc<ConcurrentSketch>,
}

impl PulseSketch {
    /// Record one observation on the calling thread's stripe
    /// (lock-free, no allocation).
    #[inline]
    pub fn record(&self, v: f64) {
        self.cell.record(v);
    }

    /// Fold the stripes into one owned sketch.
    pub fn fuse(&self) -> QuantileSketch {
        self.cell.fuse()
    }

    /// The `q`-quantile of everything recorded so far.
    pub fn quantile(&self, q: f64) -> f64 {
        self.cell.fuse().quantile(q)
    }

    /// Observations that overflowed the top bucket.
    pub fn saturated(&self) -> u64 {
        self.cell.saturated()
    }
}

#[derive(Debug)]
struct Named<T> {
    entries: Vec<(String, Arc<T>)>,
}

impl<T> Default for Named<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
        }
    }
}

impl<T> Named<T> {
    fn get_or_insert(&mut self, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
        if let Some((_, v)) = self.entries.iter().find(|(k, _)| k == name) {
            return v.clone();
        }
        let v = Arc::new(make());
        self.entries.push((name.to_string(), v.clone()));
        v
    }

    fn get(&self, name: &str) -> Option<Arc<T>> {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }
}

#[derive(Debug)]
struct Inner {
    stripes: usize,
    counters: Mutex<Named<StripedU64>>,
    gauges: Mutex<Named<AtomicF64>>,
    sketches: Mutex<Named<ConcurrentSketch>>,
}

/// Thread-safe registry of named pulse metrics. Cheap to clone (one
/// `Arc`); clones share the same metrics.
#[derive(Debug, Clone)]
pub struct PulseRegistry {
    inner: Arc<Inner>,
}

impl Default for PulseRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PulseRegistry {
    /// A registry whose metrics stripe across [`default_stripes`] cells
    /// (the machine's available parallelism, rounded up to a power of
    /// two).
    pub fn new() -> Self {
        Self::with_stripes(default_stripes())
    }

    /// A registry with an explicit stripe count (rounded up to a power
    /// of two; fewer stripes than recording threads serializes some
    /// recording and is audited as `NITRO093`).
    pub fn with_stripes(stripes: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                stripes: stripes.max(1).next_power_of_two(),
                counters: Mutex::new(Named::default()),
                gauges: Mutex::new(Named::default()),
                sketches: Mutex::new(Named::default()),
            }),
        }
    }

    /// Stripe count used for new metrics.
    pub fn stripes(&self) -> usize {
        self.inner.stripes
    }

    /// Register (or look up) a counter and return its recording handle.
    pub fn counter(&self, name: &str) -> PulseCounter {
        let stripes = self.inner.stripes;
        PulseCounter {
            cell: self
                .inner
                .counters
                .lock()
                .get_or_insert(name, || StripedU64::new(stripes)),
        }
    }

    /// Register (or look up) a gauge and return its recording handle.
    pub fn gauge(&self, name: &str) -> PulseGauge {
        PulseGauge {
            cell: self
                .inner
                .gauges
                .lock()
                .get_or_insert(name, || AtomicF64::new(0.0)),
        }
    }

    /// Register (or look up) a sketch with the default nanosecond shape.
    pub fn sketch(&self, name: &str) -> PulseSketch {
        self.sketch_with(name, SketchConfig::default())
    }

    /// Register (or look up) a sketch; an existing sketch keeps its
    /// original shape.
    pub fn sketch_with(&self, name: &str, config: SketchConfig) -> PulseSketch {
        let stripes = self.inner.stripes;
        PulseSketch {
            cell: self
                .inner
                .sketches
                .lock()
                .get_or_insert(name, || ConcurrentSketch::new(config, stripes)),
        }
    }

    /// Current folded value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.counters.lock().get(name).map(|c| c.sum())
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.gauges.lock().get(name).map(|g| g.get())
    }

    /// Fused copy of a sketch, if registered.
    pub fn fused_sketch(&self, name: &str) -> Option<QuantileSketch> {
        self.inner.sketches.lock().get(name).map(|s| s.fuse())
    }

    /// The `q`-quantile of a registered sketch.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.fused_sketch(name).map(|s| s.quantile(q))
    }

    /// True when `name` is registered as a counter, gauge or sketch.
    pub fn has_metric(&self, name: &str) -> bool {
        self.inner.counters.lock().get(name).is_some()
            || self.inner.gauges.lock().get(name).is_some()
            || self.inner.sketches.lock().get(name).is_some()
    }

    /// Every registered metric name (counters, gauges, sketches).
    pub fn metric_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        out.extend(
            self.inner
                .counters
                .lock()
                .entries
                .iter()
                .map(|(k, _)| k.clone()),
        );
        out.extend(
            self.inner
                .gauges
                .lock()
                .entries
                .iter()
                .map(|(k, _)| k.clone()),
        );
        out.extend(
            self.inner
                .sketches
                .lock()
                .entries
                .iter()
                .map(|(k, _)| k.clone()),
        );
        out.sort();
        out
    }

    /// Per-sketch saturated-observation counts (the `NITRO091` signal).
    pub fn saturation(&self) -> Vec<(String, u64)> {
        self.inner
            .sketches
            .lock()
            .entries
            .iter()
            .map(|(k, s)| (k.clone(), s.saturated()))
            .collect()
    }

    /// Freeze the registry into the ordinary `nitro-trace` snapshot
    /// schema: counters fold their stripes, sketches export as sparse
    /// log-bucket histograms. Names are sorted, the JSON round-trips,
    /// and every existing snapshot consumer reads it unchanged.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .entries
                .iter()
                .map(|(k, c)| (k.clone(), c.sum()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .entries
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .sketches
                .lock()
                .entries
                .iter()
                .map(|(k, s)| (k.clone(), s.fuse().to_histogram_snapshot()))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_named_metric() {
        let r = PulseRegistry::with_stripes(4);
        let a = r.counter("dispatch.spmv.calls");
        let b = r.counter("dispatch.spmv.calls");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("dispatch.spmv.calls"), Some(3));
        assert_eq!(a.value(), 3);
    }

    #[test]
    fn snapshot_round_trips_through_trace_schema() {
        let r = PulseRegistry::with_stripes(2);
        r.counter("guard.spmv.fallback").add(7);
        r.gauge("tune.spmv.cache_hit_rate").set(0.75);
        let sk = r.sketch("dispatch.spmv.latency_ns");
        for v in [100.0, 200.0, 400.0, 1e5] {
            sk.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("guard.spmv.fallback"), Some(7));
        assert_eq!(snap.gauge("tune.spmv.cache_hit_rate"), Some(0.75));
        let h = snap.histogram("dispatch.spmv.latency_ns").unwrap();
        assert_eq!(h.count, 4);
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_recording_through_handles() {
        let r = PulseRegistry::with_stripes(8);
        let c = r.counter("hits");
        let s = r.sketch("lat");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        c.inc();
                        s.record(100.0 + i as f64);
                    }
                });
            }
        });
        assert_eq!(c.value(), 2000);
        assert_eq!(s.fuse().count(), 2000);
    }

    #[test]
    fn metric_names_cover_all_kinds() {
        let r = PulseRegistry::new();
        r.counter("b.counter");
        r.gauge("a.gauge");
        r.sketch("c.sketch");
        assert_eq!(r.metric_names(), vec!["a.gauge", "b.counter", "c.sketch"]);
        assert!(r.has_metric("a.gauge"));
        assert!(!r.has_metric("missing"));
    }
}
