//! Continuous dispatch profiling: sample every Kth call into
//! per-(function, variant, feature-regime) latency sketches.
//!
//! The profiler is built for always-on use: the sampling decision is
//! one relaxed `fetch_add` on the caller's stripe, and only the 1-in-K
//! sampled calls take the profile-map lock. Profiles export two ways —
//! a collapsed-stack text format (`frame;frame;frame weight` lines,
//! directly consumable by flamegraph tooling) and a JSON document with
//! per-cell sample counts and sketch quantiles.

use serde::{Deserialize, Serialize};

use parking_lot::Mutex;

use crate::sketch::{QuantileSketch, SketchConfig};
use crate::stripe::{default_stripes, StripedU64};

/// Feature-regime quantization used by default: the order of magnitude
/// of the first feature (most Nitro features lead with a size-like
/// signal), clamped to one digit so regime labels stay bounded.
pub fn feature_regime(features: &[f64]) -> u32 {
    let Some(&lead) = features.first() else {
        return 0;
    };
    let mag = lead.abs();
    if !mag.is_finite() || mag < 1.0 {
        return 0;
    }
    (mag.log10().floor() as u32).min(9) + 1
}

/// One profiled cell: a (function, variant, regime) combination.
#[derive(Debug)]
struct ProfileCell {
    function: String,
    variant: String,
    regime: u32,
    sketch: QuantileSketch,
}

/// A sampling latency profiler. Cheap to clone; clones share the
/// profile.
#[derive(Debug, Clone)]
pub struct PulseProfiler {
    inner: std::sync::Arc<ProfilerInner>,
}

#[derive(Debug)]
struct ProfilerInner {
    every: u64,
    config: SketchConfig,
    ticks: StripedU64,
    cells: Mutex<Vec<ProfileCell>>,
}

/// Serializable per-cell summary in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Tuned function name.
    pub function: String,
    /// Variant name.
    pub variant: String,
    /// Feature regime id (see [`feature_regime`]).
    pub regime: u32,
    /// Sampled calls in this cell.
    pub samples: u64,
    /// Latency quantiles of the sampled calls (ns).
    pub p50_ns: f64,
    /// 99th percentile (ns).
    pub p99_ns: f64,
    /// 99.9th percentile (ns).
    pub p999_ns: f64,
    /// Mean (ns).
    pub mean_ns: f64,
    /// Largest sampled latency (ns).
    pub max_ns: f64,
}

/// Serializable profile: sampling rate plus one entry per cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// The profiler sampled every `every`-th call per thread.
    pub every: u64,
    /// Per-cell summaries, sorted by (function, variant, regime).
    pub entries: Vec<ProfileEntry>,
}

impl PulseProfiler {
    /// A profiler sampling every `every`-th call per recording thread
    /// (`every` is clamped to at least 1; 1 samples everything).
    pub fn new(every: u64) -> Self {
        Self::with_config(every, SketchConfig::default())
    }

    /// A profiler with an explicit sketch shape for its latency cells.
    pub fn with_config(every: u64, config: SketchConfig) -> Self {
        Self {
            inner: std::sync::Arc::new(ProfilerInner {
                every: every.max(1),
                config,
                ticks: StripedU64::new(default_stripes()),
                cells: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The sampling period.
    pub fn every(&self) -> u64 {
        self.inner.every
    }

    /// Count one call and decide whether it is the Kth. Lock-free: a
    /// single relaxed `fetch_add` on the caller's stripe.
    #[inline]
    pub fn should_sample(&self) -> bool {
        let prev = self
            .inner
            .ticks
            .cell()
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        prev.is_multiple_of(self.inner.every)
    }

    /// Record a sampled call's latency. Takes the profile lock — call
    /// only for the 1-in-K calls [`should_sample`] selects.
    ///
    /// [`should_sample`]: PulseProfiler::should_sample
    pub fn record_sample(&self, function: &str, variant: &str, regime: u32, latency_ns: f64) {
        let mut cells = self.inner.cells.lock();
        let cell = match cells
            .iter_mut()
            .find(|c| c.function == function && c.variant == variant && c.regime == regime)
        {
            Some(c) => c,
            None => {
                cells.push(ProfileCell {
                    function: function.to_string(),
                    variant: variant.to_string(),
                    regime,
                    sketch: QuantileSketch::new(self.inner.config),
                });
                cells.last_mut().expect("just pushed")
            }
        };
        cell.sketch.record(latency_ns);
    }

    /// Convenience: count the call and, if selected, record it.
    /// Returns whether the call was sampled.
    #[inline]
    pub fn observe(&self, function: &str, variant: &str, regime: u32, latency_ns: f64) -> bool {
        if !self.should_sample() {
            return false;
        }
        self.record_sample(function, variant, regime, latency_ns);
        true
    }

    /// Total sampled calls across all cells.
    pub fn sampled(&self) -> u64 {
        self.inner
            .cells
            .lock()
            .iter()
            .map(|c| c.sketch.count())
            .sum()
    }

    /// Merge every cell of one function into a single latency sketch
    /// (the associative sketch merge across variants and regimes).
    pub fn fused(&self, function: &str) -> QuantileSketch {
        let cells = self.inner.cells.lock();
        let mut out = QuantileSketch::new(self.inner.config);
        for c in cells.iter().filter(|c| c.function == function) {
            out.merge(&c.sketch);
        }
        out
    }

    /// Collapsed-stack text export (flamegraph-compatible): one line
    /// per cell, `nitro;dispatch;<fn>;<variant>;regime_<r> <samples>`,
    /// sorted. Feed it to any `flamegraph.pl`-style folder.
    pub fn collapsed(&self) -> String {
        let cells = self.inner.cells.lock();
        let mut lines: Vec<String> = cells
            .iter()
            .filter(|c| c.sketch.count() > 0)
            .map(|c| {
                format!(
                    "nitro;dispatch;{};{};regime_{} {}",
                    c.function,
                    c.variant,
                    c.regime,
                    c.sketch.count()
                )
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Structured profile export.
    pub fn report(&self) -> ProfileReport {
        let cells = self.inner.cells.lock();
        let mut entries: Vec<ProfileEntry> = cells
            .iter()
            .filter(|c| c.sketch.count() > 0)
            .map(|c| ProfileEntry {
                function: c.function.clone(),
                variant: c.variant.clone(),
                regime: c.regime,
                samples: c.sketch.count(),
                p50_ns: c.sketch.quantile(0.5),
                p99_ns: c.sketch.quantile(0.99),
                p999_ns: c.sketch.quantile(0.999),
                mean_ns: c.sketch.mean(),
                max_ns: c.sketch.max(),
            })
            .collect();
        entries.sort_by(|a, b| {
            (&a.function, &a.variant, a.regime).cmp(&(&b.function, &b.variant, b.regime))
        });
        ProfileReport {
            every: self.inner.every,
            entries,
        }
    }

    /// The profile as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.report()).expect("profile reports always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_kth_call_per_thread() {
        let p = PulseProfiler::new(10);
        let mut sampled = 0;
        for i in 0..100 {
            if p.observe("spmv", "csr", 1, 1000.0 + i as f64) {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 10);
        assert_eq!(p.sampled(), 10);
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let p = PulseProfiler::new(1);
        p.observe("spmv", "csr", 2, 500.0);
        p.observe("spmv", "csr", 2, 600.0);
        p.observe("sort", "radix", 0, 100.0);
        let text = p.collapsed();
        assert!(
            text.contains("nitro;dispatch;spmv;csr;regime_2 2\n"),
            "{text}"
        );
        assert!(
            text.contains("nitro;dispatch;sort;radix;regime_0 1\n"),
            "{text}"
        );
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(stack.split(';').count() >= 2);
            weight.parse::<u64>().expect("numeric weight");
        }
    }

    #[test]
    fn report_json_round_trips() {
        let p = PulseProfiler::new(1);
        for i in 0..50 {
            p.observe("bfs", "fused", 3, 1000.0 * (i + 1) as f64);
        }
        let json = p.to_json();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p.report());
        assert_eq!(back.entries[0].samples, 50);
        assert!(back.entries[0].p99_ns >= back.entries[0].p50_ns);
    }

    #[test]
    fn fused_merges_across_variants_and_regimes() {
        let p = PulseProfiler::new(1);
        p.observe("spmv", "csr", 1, 100.0);
        p.observe("spmv", "ell", 2, 200.0);
        p.observe("sort", "radix", 1, 999.0);
        let fused = p.fused("spmv");
        assert_eq!(fused.count(), 2);
    }

    #[test]
    fn regime_quantizes_order_of_magnitude() {
        assert_eq!(feature_regime(&[]), 0);
        assert_eq!(feature_regime(&[0.5]), 0);
        assert_eq!(feature_regime(&[5.0]), 1);
        assert_eq!(feature_regime(&[5_000.0]), 4);
        assert_eq!(feature_regime(&[1e15]), 10);
    }
}
