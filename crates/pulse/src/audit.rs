//! Static analysis of pulse configurations: codes `NITRO090`–`NITRO093`.
//!
//! Like the guard and store analyzers, these live with the subsystem
//! they understand and emit codes registered centrally in
//! `nitro_core::diag::registry`. Two entry points: [`audit_slos`]
//! checks a watchdog's objectives against the registry they will watch
//! (unknown metrics, windows too short to ever hold more than one
//! observation), and [`audit_registry`] checks the registry's own
//! health (saturated sketches, under-striped recording).

use nitro_core::diag::registry::codes;
use nitro_core::Diagnostic;

use crate::registry::PulseRegistry;
use crate::slo::SloSpec;

/// How often a metric is expected to receive observations, for the
/// `NITRO092` window check.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCadence {
    /// The metric name as referenced by SLO specs.
    pub metric: String,
    /// Expected nanoseconds between observations.
    pub update_period_ns: u64,
}

/// Audit a set of SLO specs against the registry the watchdog will
/// read.
///
/// * `NITRO090` (error): a spec references a metric name the registry
///   has never registered — the objective would silently never
///   evaluate.
/// * `NITRO092` (error): a window spans less wall time than the
///   metric's update period (`window ticks × tick interval <
///   update period`), so it can hold at most one observation and its
///   quantiles/rates are statistically meaningless.
pub fn audit_slos(
    specs: &[SloSpec],
    registry: &PulseRegistry,
    tick_interval_ns: u64,
    cadences: &[MetricCadence],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for spec in specs {
        for metric in spec.referenced_metrics() {
            if !registry.has_metric(metric) {
                out.push(Diagnostic::error(
                    codes::NITRO090,
                    &spec.name,
                    format!(
                        "SLO '{}' references metric '{metric}', which is not registered \
                         in the pulse registry; the objective will never evaluate",
                        spec.name
                    ),
                ));
            }
            if let Some(c) = cadences.iter().find(|c| c.metric == metric) {
                for w in &spec.windows {
                    let window_ns = (w.ticks as u64).saturating_mul(tick_interval_ns);
                    if window_ns < c.update_period_ns {
                        out.push(Diagnostic::error(
                            codes::NITRO092,
                            &spec.name,
                            format!(
                                "SLO '{}' window of {} tick(s) spans {window_ns} ns but \
                                 metric '{metric}' updates every {} ns; the window can \
                                 hold at most one observation",
                                spec.name, w.ticks, c.update_period_ns
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Audit a pulse registry's own health.
///
/// * `NITRO091` (warning): a sketch has saturated observations — its
///   upper quantiles degrade to the observed max; widen `max_buckets`
///   or raise `min_value`.
/// * `NITRO093` (warning): the registry stripes metrics across fewer
///   cells than the machine has hardware threads, so concurrent
///   recorders will share stripes and contend.
pub fn audit_registry(registry: &PulseRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, saturated) in registry.saturation() {
        if saturated > 0 {
            out.push(Diagnostic::warning(
                codes::NITRO091,
                &name,
                format!(
                    "sketch '{name}' saturated {saturated} observation(s) above its top \
                     bucket; upper quantiles degrade to the observed max — widen \
                     max_buckets or raise min_value"
                ),
            ));
        }
    }
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if registry.stripes() < parallelism {
        out.push(Diagnostic::warning(
            codes::NITRO093,
            "pulse registry",
            format!(
                "registry stripes metrics across {} cell(s) but the machine exposes {} \
                 hardware thread(s); concurrent recorders will share stripes and contend",
                registry.stripes(),
                parallelism
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchConfig;
    use crate::slo::{SloSpec, WindowSpec};

    #[test]
    fn unknown_metric_fires_nitro090() {
        let r = PulseRegistry::with_stripes(2);
        r.sketch("dispatch.spmv.latency_ns");
        let specs = vec![
            SloSpec::p99_below("good", "dispatch.spmv.latency_ns", 1e6),
            SloSpec::p99_below("bad", "dispatch.spmv.latency", 1e6), // typo'd name
        ];
        let diags = audit_slos(&specs, &r, 1_000_000, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO090");
        assert_eq!(diags[0].subject, "bad");
    }

    #[test]
    fn rate_slo_checks_both_counters() {
        let r = PulseRegistry::with_stripes(2);
        r.counter("guard.spmv.fallback");
        let specs = vec![SloSpec::rate_below(
            "fb",
            "guard.spmv.fallback",
            "dispatch.spmv.calls", // never registered
            0.05,
        )];
        let diags = audit_slos(&specs, &r, 1_000_000, &[]);
        assert!(diags.iter().any(|d| d.code == "NITRO090"));
    }

    #[test]
    fn undersized_window_fires_nitro092() {
        let r = PulseRegistry::with_stripes(2);
        r.sketch("store.spmv.promotion_ns");
        let specs = vec![
            SloSpec::p99_below("promo", "store.spmv.promotion_ns", 1e6).with_windows(vec![
                WindowSpec {
                    ticks: 1,
                    burn_factor: 1.0,
                },
            ]),
        ];
        // Promotions land every 10 s; the watchdog ticks every 1 ms.
        let cadences = vec![MetricCadence {
            metric: "store.spmv.promotion_ns".into(),
            update_period_ns: 10_000_000_000,
        }];
        let diags = audit_slos(&specs, &r, 1_000_000, &cadences);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO092");
    }

    #[test]
    fn saturated_sketch_fires_nitro091() {
        let r = PulseRegistry::with_stripes(2);
        let s = r.sketch_with(
            "tiny",
            SketchConfig {
                alpha: 0.05,
                min_value: 1.0,
                max_buckets: 8,
            },
        );
        s.record(1e12);
        let diags = audit_registry(&r);
        assert!(diags.iter().any(|d| d.code == "NITRO091"), "{diags:?}");
    }

    #[test]
    fn healthy_registry_is_clean_except_possible_striping() {
        let r = PulseRegistry::new(); // default stripes >= parallelism
        r.sketch("ok").record(100.0);
        let diags = audit_registry(&r);
        assert!(diags.iter().all(|d| d.code != "NITRO091"));
        assert!(diags.iter().all(|d| d.code != "NITRO093"));
    }

    #[test]
    fn understriped_registry_fires_nitro093_when_parallel() {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if parallelism < 2 {
            return; // single-core machine: 1 stripe genuinely suffices
        }
        let r = PulseRegistry::with_stripes(1);
        let diags = audit_registry(&r);
        assert!(diags.iter().any(|d| d.code == "NITRO093"));
    }
}
