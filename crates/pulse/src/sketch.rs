//! Mergeable relative-error quantile sketches (DDSketch-style).
//!
//! A [`QuantileSketch`] buckets observations into logarithmically
//! spaced bins with ratio `γ = (1 + α) / (1 − α)`: bucket `i` covers
//! `(m·γ^(i−1), m·γ^i]` for base value `m` ([`SketchConfig::min_value`])
//! and every bucket's midpoint estimate is within relative error `α` of
//! any value in the bucket. Quantiles are therefore rank-exact and
//! value-accurate to `α` — unlike the decade histograms in
//! `nitro-trace`, a p99 read off a sketch is a real p99.
//!
//! Merging adds bucket counts elementwise, which is associative and
//! commutative, so per-stripe / per-shard / per-thread sketches combine
//! into one process-level sketch with no accuracy loss. The
//! [`ConcurrentSketch`] variant stripes atomic bucket arrays per thread
//! for lock-free, allocation-free recording on the dispatch hot path.

use serde::{Deserialize, Serialize};

use crate::stripe::{thread_ordinal, AtomicF64};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shape of a sketch: the relative-error bound and the bucket range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Relative-error bound `α`: every quantile estimate is within
    /// `α · true_value` of the value at the same rank, for values in
    /// `[min_value, min_value · γ^max_buckets]`.
    pub alpha: f64,
    /// Lower edge of the accurate range; values in `(0, min_value]`
    /// collapse into bucket 0. For nanosecond timings 1.0 is natural.
    pub min_value: f64,
    /// Number of log-spaced buckets. Values above the top bucket are
    /// counted as saturated ([`QuantileSketch::saturated`], audited as
    /// `NITRO091`) and estimated by the observed maximum.
    pub max_buckets: usize,
}

impl Default for SketchConfig {
    /// 1 % relative error from 1 ns to beyond 10 s: `γ ≈ 1.0202`,
    /// 1280 buckets cover `γ^1280 ≈ 1.7e11` ns.
    fn default() -> Self {
        Self {
            alpha: 0.01,
            min_value: 1.0,
            max_buckets: 1280,
        }
    }
}

impl SketchConfig {
    /// Bucket ratio `γ = (1 + α) / (1 − α)`.
    pub fn gamma(&self) -> f64 {
        (1.0 + self.alpha) / (1.0 - self.alpha)
    }

    /// Upper edge of the accurate range (`min_value · γ^max_buckets`).
    pub fn max_value(&self) -> f64 {
        self.min_value * self.gamma().powi(self.max_buckets as i32)
    }

    fn assert_valid(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "sketch alpha must be in (0, 1), got {}",
            self.alpha
        );
        assert!(
            self.min_value > 0.0 && self.min_value.is_finite(),
            "sketch min_value must be positive and finite, got {}",
            self.min_value
        );
        assert!(
            self.max_buckets >= 2,
            "sketch needs at least 2 buckets, got {}",
            self.max_buckets
        );
    }
}

/// Where one observation lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Non-positive (or non-finite) values: the zero bucket.
    Zero,
    /// A regular log bucket.
    Bucket(usize),
    /// Above the top bucket.
    Saturated,
}

#[inline]
fn slot_for(config: &SketchConfig, inv_ln_gamma: f64, v: f64) -> Slot {
    if !v.is_finite() || v <= 0.0 {
        return Slot::Zero;
    }
    if v <= config.min_value {
        return Slot::Bucket(0);
    }
    let i = ((v / config.min_value).ln() * inv_ln_gamma).ceil() as usize;
    if i >= config.max_buckets {
        Slot::Saturated
    } else {
        Slot::Bucket(i)
    }
}

/// A single-owner mergeable quantile sketch. `record` is `&mut self`;
/// for the shared lock-free variant see [`ConcurrentSketch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    config: SketchConfig,
    buckets: Vec<u64>,
    /// Non-positive observations (estimate 0).
    zeros: u64,
    /// Observations above the top bucket (estimate: observed max).
    saturated: u64,
    count: u64,
    sum: f64,
    /// Meaningful only when `count > 0` (0 when empty, for serde).
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(SketchConfig::default())
    }
}

impl QuantileSketch {
    /// An empty sketch with the given shape.
    pub fn new(config: SketchConfig) -> Self {
        config.assert_valid();
        Self {
            config,
            buckets: vec![0; config.max_buckets],
            zeros: 0,
            saturated: 0,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// The sketch's shape.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        match slot_for(&self.config, 1.0 / self.config.gamma().ln(), v) {
            Slot::Zero => self.zeros += 1,
            Slot::Bucket(i) => self.buckets[i] += 1,
            Slot::Saturated => self.saturated += 1,
        }
        self.count += 1;
        self.sum += v;
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Midpoint estimate for bucket `i`, within `α` relative error of
    /// every value the bucket covers.
    fn estimate(&self, i: usize) -> f64 {
        let gamma = self.config.gamma();
        self.config.min_value * gamma.powi(i as i32) * 2.0 / (1.0 + gamma)
    }

    /// The `q`-quantile estimate (`q` clamped to `[0, 1]`): the value at
    /// 0-indexed rank `⌊q · (count − 1)⌋`, accurate to the configured
    /// relative error for in-range observations. 0 on an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * (self.count - 1) as f64).floor() as u64;
        let mut cum = self.zeros;
        if target < cum {
            return 0.0;
        }
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if target < cum {
                return self.estimate(i);
            }
        }
        // Remaining ranks are saturated observations; the observed max
        // is the only honest estimate.
        self.max
    }

    /// Merge another sketch of the identical shape into this one.
    /// Bucket counts add elementwise, so merging is associative and
    /// commutative and quantiles of a merge equal quantiles of the
    /// concatenated stream.
    ///
    /// # Panics
    /// If the two configs differ (merging incompatible bucket layouts
    /// is a programming error, not a data condition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.config, other.config,
            "cannot merge quantile sketches of different shapes"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.saturated += other.saturated;
        self.sum += other.sum;
        match (self.count, other.count) {
            (_, 0) => {}
            (0, _) => {
                self.min = other.min;
                self.max = other.max;
            }
            _ => {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }

    /// The windowed difference `self − earlier` for two cumulative
    /// sketches of the same stream (counts are monotone, so elementwise
    /// saturating subtraction yields the sketch of the interval).
    /// Min/max are carried from `self` — they bound the interval but
    /// may be looser than the interval's true extrema.
    pub fn delta_since(&self, earlier: &QuantileSketch) -> QuantileSketch {
        assert_eq!(
            self.config, earlier.config,
            "cannot diff quantile sketches of different shapes"
        );
        QuantileSketch {
            config: self.config,
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            zeros: self.zeros.saturating_sub(earlier.zeros),
            saturated: self.saturated.saturating_sub(earlier.saturated),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
            min: self.min,
            max: self.max,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Observations that overflowed the top bucket (`NITRO091` signal).
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Non-positive observations.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Export as a `nitro-trace` histogram snapshot so sketch-backed
    /// metrics ride the existing `MetricsSnapshot` JSON schema. Only
    /// non-empty buckets are emitted (sparse bounds stay valid because
    /// skipped buckets hold no observations); zeros fold into the first
    /// bucket and saturated observations land in the overflow slot.
    pub fn to_histogram_snapshot(&self) -> nitro_trace::HistogramSnapshot {
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let gamma = self.config.gamma();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                bounds.push(self.config.min_value * gamma.powi(i as i32));
                counts.push(c);
            }
        }
        if self.zeros > 0 {
            if counts.is_empty() {
                bounds.push(self.config.min_value);
                counts.push(self.zeros);
            } else {
                counts[0] += self.zeros;
            }
        }
        counts.push(self.saturated); // overflow bucket
        nitro_trace::HistogramSnapshot {
            bounds,
            counts,
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// One stripe of a [`ConcurrentSketch`]: an atomic bucket array plus
/// its own count/sum/extrema so recording threads never share a line.
#[repr(align(128))]
#[derive(Debug)]
struct SketchStripe {
    buckets: Box<[AtomicU64]>,
    zeros: AtomicU64,
    saturated: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl SketchStripe {
    fn new(buckets: usize) -> Self {
        Self {
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            zeros: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }
}

/// A shared, lock-free quantile sketch: per-thread stripes of atomic
/// bucket arrays. `record` touches only the caller's stripe — no lock,
/// no allocation; [`ConcurrentSketch::fuse`] merges the stripes into a
/// plain [`QuantileSketch`] for reads.
#[derive(Debug)]
pub struct ConcurrentSketch {
    config: SketchConfig,
    inv_ln_gamma: f64,
    stripes: Box<[SketchStripe]>,
}

impl ConcurrentSketch {
    /// An empty concurrent sketch with `stripes` stripes (rounded up to
    /// a power of two).
    pub fn new(config: SketchConfig, stripes: usize) -> Self {
        config.assert_valid();
        let n = stripes.max(1).next_power_of_two();
        Self {
            config,
            inv_ln_gamma: 1.0 / config.gamma().ln(),
            stripes: (0..n)
                .map(|_| SketchStripe::new(config.max_buckets))
                .collect(),
        }
    }

    /// The sketch's shape.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Record one observation on the calling thread's stripe. The hot
    /// path is one bucket `fetch_add` plus the running-sum update; the
    /// observation count is derived from the buckets at fuse time, and
    /// the extrema are guarded by plain loads so the steady state (a
    /// value inside the seen range) never issues a CAS for them.
    #[inline]
    pub fn record(&self, v: f64) {
        let stripe = &self.stripes[thread_ordinal() & (self.stripes.len() - 1)];
        match slot_for(&self.config, self.inv_ln_gamma, v) {
            Slot::Zero => stripe.zeros.fetch_add(1, Ordering::Relaxed),
            Slot::Bucket(i) => stripe.buckets[i].fetch_add(1, Ordering::Relaxed),
            Slot::Saturated => stripe.saturated.fetch_add(1, Ordering::Relaxed),
        };
        stripe.sum.update(|s| s + v);
        if v < stripe.min.get() {
            stripe.min.update(|m| m.min(v));
        }
        if v > stripe.max.get() {
            stripe.max.update(|m| m.max(v));
        }
    }

    /// Merge all stripes into one owned sketch (the associative merge
    /// of the per-stripe sub-streams).
    pub fn fuse(&self) -> QuantileSketch {
        let mut out = QuantileSketch::new(self.config);
        for stripe in self.stripes.iter() {
            let buckets: Vec<u64> = stripe
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let zeros = stripe.zeros.load(Ordering::Relaxed);
            let saturated = stripe.saturated.load(Ordering::Relaxed);
            // The record path does not maintain a separate count — it is
            // the fold of the slot counts, reconstructed here off the
            // hot path.
            let count = buckets.iter().sum::<u64>() + zeros + saturated;
            if count == 0 {
                continue;
            }
            let part = QuantileSketch {
                config: self.config,
                buckets,
                zeros,
                saturated,
                count,
                sum: stripe.sum.get(),
                min: stripe.min.get(),
                max: stripe.max.get(),
            };
            out.merge(&part);
        }
        out
    }

    /// Saturated observations across all stripes (`NITRO091` signal)
    /// without materializing a fuse.
    pub fn saturated(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.saturated.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of stripes (power of two).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut s = QuantileSketch::default();
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 37.5).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = (q * (values.len() - 1) as f64).floor() as usize;
            let exact = values[rank];
            let got = s.quantile(q);
            assert!(
                (got - exact).abs() <= exact * (s.config().alpha * 1.0001 + 1e-12),
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        let mut all = QuantileSketch::default();
        for i in 0..500 {
            let v = 10.0 + (i as f64) * 13.7;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn saturation_is_counted_and_estimated_by_max() {
        let mut s = QuantileSketch::new(SketchConfig {
            alpha: 0.05,
            min_value: 1.0,
            max_buckets: 64, // covers up to ~γ^64 ≈ 6e2
        });
        s.record(5.0);
        s.record(1e9); // far above the top bucket
        assert_eq!(s.saturated(), 1);
        assert_eq!(s.quantile(1.0), 1e9);
    }

    #[test]
    fn zeros_and_negatives_hit_the_zero_bucket() {
        let mut s = QuantileSketch::default();
        s.record(0.0);
        s.record(-5.0);
        s.record(100.0);
        assert_eq!(s.zeros(), 2);
        assert_eq!(s.quantile(0.0), 0.0);
    }

    #[test]
    fn concurrent_sketch_fuses_to_the_serial_answer() {
        let c = std::sync::Arc::new(ConcurrentSketch::new(SketchConfig::default(), 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.record(((t * 1000 + i) as f64) + 1.0);
                    }
                });
            }
        });
        let fused = c.fuse();
        assert_eq!(fused.count(), 4000);
        let mut serial = QuantileSketch::default();
        for v in 1..=4000 {
            serial.record(v as f64);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(fused.quantile(q), serial.quantile(q));
        }
    }

    #[test]
    fn histogram_snapshot_export_is_sparse_and_consistent() {
        let mut s = QuantileSketch::default();
        for v in [0.0, 50.0, 50.0, 1e6] {
            s.record(v);
        }
        let h = s.to_histogram_snapshot();
        assert_eq!(h.count, 4);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
        assert_eq!(h.bounds.len() + 1, h.counts.len());
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        // Round-trips through the existing snapshot JSON schema.
        let m = nitro_trace::MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![("dispatch.spmv.latency_ns".into(), h)],
        };
        let back = nitro_trace::MetricsSnapshot::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = QuantileSketch::new(SketchConfig {
            alpha: 0.02,
            min_value: 1.0,
            max_buckets: 64,
        });
        for v in [1.0, 10.0, 100.0] {
            s.record(v);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
