//! Property tests: every histogram variant counts correctly on arbitrary
//! sample sets, and cost relationships hold.

use nitro_histogram::{run_variant, HistInput, Mapping, Method, N_BINS, VARIANTS};
use nitro_simt::DeviceConfig;
use proptest::prelude::*;

proptest! {
    /// All six variants produce exactly the reference histogram, and all
    /// counts sum to n.
    #[test]
    fn variants_count_correctly(data in prop::collection::vec(0.0f64..1.0, 1..6000)) {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let input = HistInput::new("prop", "prop", data.clone());
        let expect = input.reference();
        prop_assert_eq!(expect.iter().sum::<u64>(), data.len() as u64);
        for (m, g, name) in VARIANTS {
            let (counts, ns) = run_variant(m, g, &input, &cfg);
            prop_assert_eq!(&counts, &expect, "{}", name);
            prop_assert!(ns > 0.0);
        }
    }

    /// The subsample SD is non-negative and bounded by the full range.
    #[test]
    fn subsample_sd_bounds(data in prop::collection::vec(0.0f64..1.0, 4..5000)) {
        let input = HistInput::new("sd", "prop", data);
        let sd = input.subsample_sd(10_000);
        prop_assert!((0.0..=0.5).contains(&sd), "sd = {}", sd);
    }

    /// On concentrated data large enough to amortize the per-block
    /// reduction, shared atomics beat global atomics (which additionally
    /// pay device-wide hot-address contention). On tiny or uniform inputs
    /// the ordering can flip — that trade-off is the benchmark's point —
    /// so the property pins only the contended regime.
    #[test]
    fn shared_beats_global_under_contention(
        n in 8_192usize..40_000,
        hot in 0.0f64..1.0,
    ) {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let data = vec![hot; n];
        let input = HistInput::new("svg", "prop", data);
        let (_, shared) = run_variant(Method::SharedAtomic, Mapping::EvenShare, &input, &cfg);
        let (_, global) = run_variant(Method::GlobalAtomic, Mapping::EvenShare, &input, &cfg);
        prop_assert!(shared < global, "shared {} vs global {}", shared, global);
    }

    /// Binning maps every value to a valid bin.
    #[test]
    fn bins_in_range(v in 0.0f64..1.0) {
        let input = HistInput::new("b", "prop", vec![v]);
        prop_assert!(input.bin_of(v) < N_BINS);
    }
}
