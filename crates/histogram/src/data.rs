//! Histogram inputs and distribution generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Zipf};

/// Bin count used by all variants (CUB commonly benchmarks 256-bin
/// histograms; 256 keeps shared-memory histograms realistic).
pub const N_BINS: usize = 256;

/// One histogram problem instance: samples already mapped to `[0, 1)`.
#[derive(Debug, Clone)]
pub struct HistInput {
    /// Instance name (seeds simulation noise).
    pub name: String,
    /// Distribution family the instance was drawn from.
    pub group: String,
    /// Samples in `[0, 1)`.
    pub data: Vec<f64>,
    /// Noise seed derived from the name.
    pub gpu_seed: u64,
}

impl HistInput {
    /// Wrap a sample vector.
    pub fn new(name: impl Into<String>, group: impl Into<String>, data: Vec<f64>) -> Self {
        let name = name.into();
        let gpu_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
        });
        Self {
            name,
            group: group.into(),
            data,
            gpu_seed,
        }
    }

    /// The bin of one sample.
    #[inline]
    pub fn bin_of(&self, v: f64) -> usize {
        ((v.clamp(0.0, 1.0 - 1e-12)) * N_BINS as f64) as usize
    }

    /// Reference CPU histogram.
    pub fn reference(&self) -> Vec<u64> {
        let mut counts = vec![0u64; N_BINS];
        for &v in &self.data {
            counts[self.bin_of(v)] += 1;
        }
        counts
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Standard deviation of a deterministic subsample — the paper's
    /// `SubSampleSD` feature ("the default size for this is 25% of the
    /// size of the input sample, or 10,000 elements, whichever is lower").
    pub fn subsample_sd(&self, max_sample: usize) -> f64 {
        let k = (self.len() / 4).min(max_sample).max(1);
        let stride = (self.len() / k).max(1);
        let sample: Vec<f64> = self.data.iter().step_by(stride).take(k).copied().collect();
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        (sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
    }

    /// Fraction of adjacent pairs in ascending order within the same
    /// deterministic subsample as [`Self::subsample_sd`]. Near 1.0 for
    /// (nearly) sorted inputs, near 0.5 for unordered ones — sortedness
    /// controls per-block bin locality, which `SubSampleSD` cannot see
    /// (a strided subsample of sorted data has the same SD as shuffled
    /// data).
    pub fn subsample_sortedness(&self, max_sample: usize) -> f64 {
        let k = (self.len() / 4).min(max_sample).max(1);
        let stride = (self.len() / k).max(1);
        let sample: Vec<f64> = self.data.iter().step_by(stride).take(k).copied().collect();
        if sample.len() < 2 {
            return 1.0;
        }
        let ascending = sample.windows(2).filter(|w| w[0] <= w[1]).count();
        ascending as f64 / (sample.len() - 1) as f64
    }
}

/// Generate one instance of the named distribution family.
pub fn generate(family: &str, n: usize, seed: u64, name: &str) -> HistInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = match family {
        // Uniform over all bins: the atomic variants' best case.
        "uniform" => (0..n).map(|_| rng.random::<f64>()).collect(),
        // Gaussian bumps of varying width: moderate to heavy skew.
        "gaussian_wide" => normal_samples(&mut rng, n, 0.25),
        "gaussian_narrow" => normal_samples(&mut rng, n, 0.03),
        // Zipf over bins: a few very hot bins.
        "zipf" => {
            let z = Zipf::new(N_BINS as f64, 1.3).expect("valid zipf");
            (0..n)
                .map(|_| ((z.sample(&mut rng) - 1.0) + rng.random::<f64>()) / N_BINS as f64)
                .collect()
        }
        // 90% of mass on one value: worst-case contention. The hot value
        // sits mid-range (peaked real-world distributions are normalized
        // around their mode), which keeps the sample SD low — the signal
        // the paper's SubSampleSD feature relies on.
        "spike" => {
            let hot: f64 = rng.random_range(0.25..0.75);
            (0..n)
                .map(|_| {
                    if rng.random_bool(0.9) {
                        hot
                    } else {
                        rng.random()
                    }
                })
                .collect()
        }
        // Uniform values but sorted: per-block bin locality differs
        // wildly across blocks (the even-share vs dynamic contrast).
        "sorted_uniform" => {
            let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        }
        other => panic!("unknown histogram family '{other}'"),
    };
    HistInput::new(name, family, data)
}

fn normal_samples(rng: &mut StdRng, n: usize, sd: f64) -> Vec<f64> {
    let normal = Normal::new(0.5, sd).expect("valid normal");
    (0..n)
        .map(|_| normal.sample(rng).clamp(0.0, 1.0 - 1e-9))
        .collect()
}

/// Distribution families in the collection.
pub const FAMILIES: [&str; 6] = [
    "uniform",
    "gaussian_wide",
    "gaussian_narrow",
    "zipf",
    "spike",
    "sorted_uniform",
];

/// Training set: 200 instances (paper count).
pub fn hist_training_set(seed: u64) -> Vec<HistInput> {
    build_set("train", 200, 0, seed, 4_000..48_000)
}

/// Test set: 1291 instances (paper count).
pub fn hist_test_set(seed: u64) -> Vec<HistInput> {
    build_set("test", 1291, 10_000, seed, 4_000..48_000)
}

/// Small train/test pair for unit and integration tests.
pub fn hist_small_sets(seed: u64) -> (Vec<HistInput>, Vec<HistInput>) {
    (
        build_set("train", 24, 0, seed, 2_000..8_000),
        build_set("test", 30, 500, seed, 2_000..8_000),
    )
}

fn build_set(
    tag: &str,
    count: usize,
    idx_base: usize,
    seed: u64,
    sizes: std::ops::Range<usize>,
) -> Vec<HistInput> {
    (0..count)
        .map(|i| {
            let family = FAMILIES[i % FAMILIES.len()];
            let mut rng = StdRng::seed_from_u64(seed ^ ((idx_base + i) as u64) << 8);
            let n = rng.random_range(sizes.clone());
            generate(family, n, rng.random(), &format!("{tag}/{family}/{i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts_everything_once() {
        let inp = generate("uniform", 10_000, 3, "t");
        let counts = inp.reference();
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        assert_eq!(counts.len(), N_BINS);
    }

    #[test]
    fn subsample_sd_separates_uniform_from_spike() {
        let uniform = generate("uniform", 50_000, 5, "u");
        let spike = generate("spike", 50_000, 5, "s");
        assert!(uniform.subsample_sd(10_000) > 2.0 * spike.subsample_sd(10_000));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = generate("zipf", 1000, 9, "z");
        let b = generate("zipf", 1000, 9, "z");
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn set_sizes_match_paper() {
        // Sizes only — building the full sets is cheap enough to check.
        assert_eq!(hist_training_set(1).len(), 200);
        assert_eq!(hist_test_set(1).len(), 1291);
    }

    #[test]
    fn every_family_generates_valid_bins() {
        let mut inp;
        for f in FAMILIES {
            inp = generate(f, 1000, 2, "x");
            for &v in &inp.data {
                assert!((0.0..1.0).contains(&v) || v == 0.0, "{f} produced {v}");
            }
        }
    }
}
