//! # nitro-histogram — the Histogram benchmark
//!
//! The paper's fourth benchmark (Figure 4): six CUB-style histogram
//! variants — {sort-based, shared-memory atomic, global-memory atomic} ×
//! {even-share, dynamic} grid mapping — counting observations into bins.
//!
//! The decisive input property is distribution skew: atomic variants are
//! fast on uniform data but collapse when many concurrent updates hit the
//! same few bins ("the high latency of atomic-add operations … coupled
//! with the high number of concurrent threads trying to update a small
//! number of bins", §V-A), while the sort-based variants are
//! skew-oblivious. The `SubSampleSD` feature is what lets the model see
//! skew cheaply.

#![warn(missing_docs)]

pub mod data;
pub mod variants;

pub use data::{HistInput, N_BINS};
pub use variants::{build_code_variant, run_variant, Mapping, Method, VARIANTS};
