//! The six histogram code variants and their simulated costs.

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
use nitro_simt::block::AtomicSpace;
use nitro_simt::{DeviceConfig, Gpu, Schedule};

use crate::data::{HistInput, N_BINS};

/// Histogramming method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Radix-sort the samples, then run-length detect bin boundaries —
    /// skew-oblivious but pays full sorting bandwidth.
    Sort,
    /// Per-block shared-memory histograms merged at the end.
    SharedAtomic,
    /// One global histogram updated with global atomics.
    GlobalAtomic,
}

/// Grid-mapping strategy (paper: "Even-Share (ES) version assigns an even
/// share of inputs to thread blocks, dynamic uses a queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Static even split of the input range over blocks.
    EvenShare,
    /// Work-queue of tiles.
    Dynamic,
}

/// The six variants in registration order.
pub const VARIANTS: [(Method, Mapping, &str); 6] = [
    (Method::Sort, Mapping::EvenShare, "Sort-ES"),
    (Method::Sort, Mapping::Dynamic, "Sort-Dynamic"),
    (Method::SharedAtomic, Mapping::EvenShare, "SharedAtomic-ES"),
    (
        Method::SharedAtomic,
        Mapping::Dynamic,
        "SharedAtomic-Dynamic",
    ),
    (Method::GlobalAtomic, Mapping::EvenShare, "GlobalAtomic-ES"),
    (
        Method::GlobalAtomic,
        Mapping::Dynamic,
        "GlobalAtomic-Dynamic",
    ),
];

/// Samples processed per thread block.
const TILE: usize = 4096;

/// Run one variant: returns the (real) histogram and the simulated time.
pub fn run_variant(
    method: Method,
    mapping: Mapping,
    input: &HistInput,
    cfg: &DeviceConfig,
) -> (Vec<u64>, f64) {
    let salt = (method_index(method) as u64) << 4 | (mapping == Mapping::Dynamic) as u64;
    let gpu = Gpu::with_seed(cfg.clone(), input.gpu_seed ^ salt);
    let schedule = match mapping {
        Mapping::EvenShare => Schedule::EvenShare,
        Mapping::Dynamic => Schedule::Dynamic,
    };
    match method {
        Method::Sort => run_sort_based(input, &gpu, schedule),
        Method::SharedAtomic => run_atomic(input, &gpu, schedule, AtomicSpace::Shared),
        Method::GlobalAtomic => run_atomic(input, &gpu, schedule, AtomicSpace::Global),
    }
}

fn method_index(m: Method) -> usize {
    match m {
        Method::Sort => 0,
        Method::SharedAtomic => 1,
        Method::GlobalAtomic => 2,
    }
}

/// Atomic variants: one pass, binning every sample with atomics. The
/// shared flavour pays only intra-warp same-bin serialization; the global
/// flavour additionally pays device-wide hot-bin contention.
fn run_atomic(
    input: &HistInput,
    gpu: &Gpu,
    schedule: Schedule,
    space: AtomicSpace,
) -> (Vec<u64>, f64) {
    let n = input.len();
    let mut counts = vec![0u64; N_BINS];
    // Device-wide bin popularity drives the global-contention term; it is
    // exactly what the final histogram measures, so bin first.
    for &v in &input.data {
        counts[input.bin_of(v)] += 1;
    }
    let hot_share = if space == AtomicSpace::Global && n > 0 {
        *counts.iter().max().unwrap() as f64 / n as f64
    } else {
        0.0
    };

    let blocks = n.div_ceil(TILE).max(1);
    let kernel = if space == AtomicSpace::Shared {
        "hist_shared"
    } else {
        "hist_global"
    };
    let mut addrs: Vec<u64> = Vec::with_capacity(32);
    let stats = gpu.launch(kernel, blocks, schedule, |b, ctx| {
        let s0 = b * TILE;
        let s1 = (s0 + TILE).min(n);
        if s0 >= s1 {
            return;
        }
        // Stream the tile in.
        ctx.coalesced((s1 - s0) as u64, 8);
        ctx.charge_ops(3 * (s1 - s0) as u64);
        // Warp-by-warp atomic updates with the tile's real bin pattern.
        for w0 in (s0..s1).step_by(32) {
            let w1 = (w0 + 32).min(s1);
            addrs.clear();
            addrs.extend(
                input.data[w0..w1]
                    .iter()
                    .map(|&v| (input.bin_of(v) * 4) as u64),
            );
            ctx.warp_atomic(&addrs, space, hot_share);
        }
        if space == AtomicSpace::Shared {
            // Merge the block's shared histogram into the global one.
            ctx.bulk_atomic(N_BINS as f64, AtomicSpace::Global, 1.0);
            ctx.charge_ops(N_BINS as u64);
        }
    });
    (counts, stats.elapsed_ns)
}

/// Sort-based variants: radix passes over the keys, then run-length
/// detection of bin boundaries. Cost is skew-independent.
fn run_sort_based(input: &HistInput, gpu: &Gpu, schedule: Schedule) -> (Vec<u64>, f64) {
    let n = input.len();
    // Functional result: counting sort over bins (equivalent output).
    let counts = input.reference();

    // 256 bins = one 8-bit radix pass... but CUB's sort-based histogram
    // sorts the full keys; model two 8-bit passes over packed bin keys
    // plus the run-length pass.
    let passes = 2.0;
    let blocks = n.div_ceil(TILE).max(1);
    let stats = gpu.launch("hist_sort", blocks, schedule, |b, ctx| {
        let s0 = b * TILE;
        let s1 = (s0 + TILE).min(n);
        if s0 >= s1 {
            return;
        }
        let tile = (s1 - s0) as f64;
        // Each radix pass reads and scatters the keys; scatter coalescing
        // is imperfect (≈ 8-way).
        ctx.bulk_read(tile * 4.0 * passes, 1.0);
        ctx.bulk_write(tile * 4.0 * passes, 0.5);
        ctx.bulk_ops(tile * passes, 4.0);
        // Run-length detection pass.
        ctx.bulk_read(tile * 4.0, 1.0);
        ctx.bulk_ops(tile, 2.0);
    });
    (counts, stats.elapsed_ns)
}

/// Assemble the Histogram `code_variant`: 6 variants + the 3 features of
/// Figure 4 (`N`, `N/#bins`, `SubSampleSD`) plus a sortedness probe over
/// the same subsample. Default: Sort-ES (always safe).
pub fn build_code_variant(ctx: &Context, cfg: &DeviceConfig) -> CodeVariant<HistInput> {
    build_code_variant_with_subsample(ctx, cfg, 10_000)
}

/// Like [`build_code_variant`], with an explicit `SubSampleSD` sample cap
/// — the knob the paper turns in §V-C to trade feature accuracy against
/// evaluation overhead.
pub fn build_code_variant_with_subsample(
    ctx: &Context,
    cfg: &DeviceConfig,
    max_subsample: usize,
) -> CodeVariant<HistInput> {
    let mut cv = CodeVariant::new("histogram", ctx);
    for (method, mapping, name) in VARIANTS {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new(name, move |inp: &HistInput| {
            run_variant(method, mapping, inp, &cfg).1
        }));
    }
    cv.set_default(0); // Sort-ES

    cv.add_input_feature(FnFeature::with_cost(
        "N",
        |i: &HistInput| i.len() as f64,
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "N_per_bin",
        |i: &HistInput| i.len() as f64 / N_BINS as f64,
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "SubSampleSD",
        move |i: &HistInput| i.subsample_sd(max_subsample),
        move |i: &HistInput| {
            // Proportional to the elements actually sampled.
            8.0 + ((i.len() / 4).min(max_subsample)) as f64 * 0.8
        },
    ));
    // Beyond the paper's Figure 4 inventory: sorted and shuffled inputs
    // have identical `SubSampleSD` but opposite grid-mapping preferences
    // (per-block bin locality), so a sortedness probe over the same
    // subsample is needed to tell them apart.
    cv.add_input_feature(FnFeature::with_cost(
        "SubSampleSortedness",
        move |i: &HistInput| i.subsample_sortedness(max_subsample),
        move |i: &HistInput| 8.0 + ((i.len() / 4).min(max_subsample)) as f64 * 0.4,
    ));
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050().noiseless()
    }

    #[test]
    fn all_variants_count_correctly() {
        let inp = generate("gaussian_wide", 20_000, 7, "t");
        let expect = inp.reference();
        for (m, g, name) in VARIANTS {
            let (counts, ns) = run_variant(m, g, &inp, &cfg());
            assert_eq!(counts, expect, "{name}");
            assert!(ns > 0.0);
        }
    }

    #[test]
    fn atomics_win_on_uniform_data() {
        let inp = generate("uniform", 100_000, 3, "u");
        let (_, sort_ns) = run_variant(Method::Sort, Mapping::EvenShare, &inp, &cfg());
        let (_, shared_ns) = run_variant(Method::SharedAtomic, Mapping::EvenShare, &inp, &cfg());
        assert!(shared_ns < sort_ns, "shared {shared_ns} vs sort {sort_ns}");
    }

    #[test]
    fn atomics_collapse_on_spiked_data() {
        let inp = generate("spike", 100_000, 3, "s");
        let (_, sort_ns) = run_variant(Method::Sort, Mapping::EvenShare, &inp, &cfg());
        let (_, global_ns) = run_variant(Method::GlobalAtomic, Mapping::EvenShare, &inp, &cfg());
        let (_, shared_ns) = run_variant(Method::SharedAtomic, Mapping::EvenShare, &inp, &cfg());
        assert!(
            global_ns > 3.0 * sort_ns,
            "global atomic {global_ns} should collapse vs sort {sort_ns}"
        );
        assert!(global_ns > shared_ns, "global should hurt more than shared");
    }

    #[test]
    fn global_atomic_degrades_more_than_shared_with_skew() {
        let uniform = generate("uniform", 80_000, 5, "u");
        let narrow = generate("gaussian_narrow", 80_000, 5, "g");
        let ratio = |inp: &HistInput, m| {
            let (_, ns) = run_variant(m, Mapping::EvenShare, inp, &cfg());
            ns
        };
        let global_slowdown =
            ratio(&narrow, Method::GlobalAtomic) / ratio(&uniform, Method::GlobalAtomic);
        let shared_slowdown =
            ratio(&narrow, Method::SharedAtomic) / ratio(&uniform, Method::SharedAtomic);
        assert!(
            global_slowdown > shared_slowdown,
            "global slowdown {global_slowdown} vs shared {shared_slowdown}"
        );
    }

    #[test]
    fn sort_cost_is_skew_independent() {
        let uniform = generate("uniform", 60_000, 9, "u");
        let spike = generate("spike", 60_000, 9, "s");
        let (_, a) = run_variant(Method::Sort, Mapping::EvenShare, &uniform, &cfg());
        let (_, b) = run_variant(Method::Sort, Mapping::EvenShare, &spike, &cfg());
        assert!(
            (a / b - 1.0).abs() < 0.05,
            "sort times {a} vs {b} should match"
        );
    }

    #[test]
    fn code_variant_matches_paper_inventory() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &cfg());
        assert_eq!(cv.n_variants(), 6);
        assert_eq!(cv.n_features(), 4);
        assert_eq!(
            cv.feature_names(),
            vec!["N", "N_per_bin", "SubSampleSD", "SubSampleSortedness"]
        );
    }

    #[test]
    fn smaller_subsample_reduces_feature_cost() {
        let ctx = Context::new();
        let big = build_code_variant_with_subsample(&ctx, &cfg(), 10_000);
        let small = build_code_variant_with_subsample(&ctx, &cfg(), 500);
        let inp = generate("uniform", 100_000, 1, "c");
        let (_, cost_big) = big.evaluate_features(&inp);
        let (_, cost_small) = small.evaluate_features(&inp);
        assert!(cost_small < cost_big / 5.0);
    }
}
