//! The tuning journal: an append-only, checksummed JSONL write-ahead log
//! of exhaustive-profiling work.
//!
//! Profiling is the expensive phase of tuning (hours on the paper's
//! C2050); a crash mid-tune used to lose every profiled cell. The
//! journal makes tuning *resumable*: every per-`(input × variant)`
//! profile cell and every phase transition is appended as one JSONL
//! line, `Autotuner::tune_durable` replays the journal on restart and
//! re-profiles only the cells the log does not already hold, and the
//! final artifact is bit-identical to an uninterrupted run (profiling
//! and training are deterministic; the journal only changes *where* the
//! cells come from).
//!
//! ## Line format
//!
//! ```text
//! {"crc":<u32>,"body":<record JSON>}\n
//! ```
//!
//! The CRC-32 ([`nitro_core::crc32`]) covers the exact `body` bytes as
//! written. On open, the journal validates every line in order and
//! truncates at the first invalid one:
//!
//! * a structurally broken tail (crash mid-append) is a **torn journal**
//!   — recovered by truncation, reported as a `NITRO070` warning;
//! * a structurally intact line whose body fails its checksum (bit rot)
//!   is a **checksum mismatch** — everything from that line on is
//!   untrusted and truncated, reported as a `NITRO071` warning.
//!
//! Either way the surviving prefix is a consistent log and resume
//! proceeds; lost cells are simply re-profiled.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nitro_core::{
    crc32, Diagnostic, FsFault, FsOp, FsPolicy, NitroError, Objective, Result, RetryPolicy,
};
use serde::{Deserialize, Serialize};

use crate::audit::{diag_journal_checksum, diag_retry_exhausted, diag_torn_journal};
use crate::store::path_salt;

/// Journal format version written by this build. A journal recorded by
/// a *newer* format refuses to replay (forward compatibility is not
/// attempted for a write-ahead log).
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Identity of the tuning run a journal belongs to. Replaying a journal
/// into a different registration (renamed variants, changed feature
/// set, different input corpus) would silently corrupt the training
/// set, so [`TuningJournal::begin`] compares every field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version ([`JOURNAL_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Name of the tuned function.
    pub function: String,
    /// Variant names, in registration order, at journal time.
    pub variant_names: Vec<String>,
    /// Active feature names, in vector order, at journal time.
    pub feature_names: Vec<String>,
    /// Objective direction the costs are recorded under.
    pub objective: Objective,
    /// Number of training inputs in the corpus.
    pub n_inputs: u64,
    /// CRC-32 of the serialized tuning policy (classifier choice,
    /// incremental criterion…) — a changed policy invalidates resume.
    pub policy_crc: u32,
}

impl JournalHeader {
    /// Explain the first mismatch against another header, if any.
    pub fn mismatch(&self, other: &JournalHeader) -> Option<String> {
        if self.format_version != other.format_version {
            return Some(format!(
                "journal format {} vs this build's {}",
                self.format_version, other.format_version
            ));
        }
        if self.function != other.function {
            return Some(format!(
                "journal is for '{}', not '{}'",
                self.function, other.function
            ));
        }
        if self.variant_names != other.variant_names {
            return Some(format!(
                "variant lists differ: journaled {:?} vs registered {:?}",
                self.variant_names, other.variant_names
            ));
        }
        if self.feature_names != other.feature_names {
            return Some(format!(
                "feature lists differ: journaled {:?} vs registered {:?}",
                self.feature_names, other.feature_names
            ));
        }
        if self.objective != other.objective {
            return Some("objective direction differs".into());
        }
        if self.n_inputs != other.n_inputs {
            return Some(format!(
                "training corpus size differs: journaled {} vs supplied {}",
                self.n_inputs, other.n_inputs
            ));
        }
        if self.policy_crc != other.policy_crc {
            return Some(format!(
                "tuning policy changed since the journal was recorded (crc {:08x} vs {:08x})",
                self.policy_crc, other.policy_crc
            ));
        }
        None
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// First record of every journal: the run's identity.
    Begin {
        /// The run identity this journal records.
        header: JournalHeader,
    },
    /// The feature vector of one training input (written once, before
    /// that input's first cell).
    Features {
        /// Index of the input in the training corpus.
        input: u64,
        /// Active feature vector.
        features: Vec<f64>,
        /// Simulated feature-evaluation cost (ns).
        feature_cost_ns: f64,
    },
    /// One profiled `(input × variant)` cell.
    Cell {
        /// Index of the input in the training corpus.
        input: u64,
        /// Variant index.
        variant: u64,
        /// Objective value; `None` when the variant was constraint-vetoed
        /// or failed (JSON cannot carry the `objective.worst()` infinity
        /// — replay reconstructs it from the header's objective).
        cost: Option<f64>,
        /// Whether the variant actually executed and produced a finite
        /// objective.
        allowed: bool,
    },
    /// A phase transition marker (e.g. `profiling_complete`), fsynced on
    /// write so resume can trust phase boundaries.
    Phase {
        /// Phase name.
        name: String,
    },
}

/// One replayed cell: `(cost, allowed)` with `cost = None` encoding the
/// objective's worst value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellValue {
    /// Finite objective value, or `None` for vetoed/failed cells.
    pub cost: Option<f64>,
    /// Whether the variant executed successfully.
    pub allowed: bool,
}

/// Everything a journal's valid prefix said, indexed for replay.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// The run identity, when a `Begin` record survived.
    pub header: Option<JournalHeader>,
    features: HashMap<u64, (Vec<f64>, f64)>,
    cells: HashMap<(u64, u64), CellValue>,
    /// Phase markers, in log order.
    pub phases: Vec<String>,
    /// Valid records replayed.
    pub records: u64,
}

impl JournalReplay {
    fn absorb(&mut self, record: JournalRecord) {
        self.records += 1;
        match record {
            JournalRecord::Begin { header } => self.header = Some(header),
            JournalRecord::Features {
                input,
                features,
                feature_cost_ns,
            } => {
                self.features.insert(input, (features, feature_cost_ns));
            }
            JournalRecord::Cell {
                input,
                variant,
                cost,
                allowed,
            } => {
                self.cells
                    .insert((input, variant), CellValue { cost, allowed });
            }
            JournalRecord::Phase { name } => self.phases.push(name),
        }
    }

    /// The journaled feature vector of one input, if present.
    pub fn features(&self, input: usize) -> Option<&(Vec<f64>, f64)> {
        self.features.get(&(input as u64))
    }

    /// One journaled cell, if present.
    pub fn cell(&self, input: usize, variant: usize) -> Option<CellValue> {
        self.cells.get(&(input as u64, variant as u64)).copied()
    }

    /// Number of journaled cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// True when `input` has features plus all `n_variants` cells.
    pub fn input_complete(&self, input: usize, n_variants: usize) -> bool {
        self.features(input).is_some() && (0..n_variants).all(|v| self.cell(input, v).is_some())
    }

    /// True when a phase marker with this name was journaled.
    pub fn has_phase(&self, name: &str) -> bool {
        self.phases.iter().any(|p| p == name)
    }
}

/// Encode one record as a checksummed JSONL line (without the newline).
fn encode_line(record: &JournalRecord) -> Result<String> {
    let body = serde_json::to_string(record)?;
    Ok(format!(
        "{{\"crc\":{},\"body\":{body}}}",
        crc32(body.as_bytes())
    ))
}

/// Why a line failed to decode.
enum LineError {
    /// Structurally broken: not our line shape (torn write).
    Torn(&'static str),
    /// Structurally intact but the body fails its checksum (bit rot).
    Checksum { stored: u32, actual: u32 },
}

/// Decode one line; the body's checksum must match.
fn decode_line(line: &str) -> std::result::Result<JournalRecord, LineError> {
    const PREFIX: &str = "{\"crc\":";
    const BODY: &str = ",\"body\":";
    let rest = line.strip_prefix(PREFIX).ok_or(LineError::Torn("prefix"))?;
    let comma = rest.find(BODY).ok_or(LineError::Torn("no body key"))?;
    let stored: u32 = rest[..comma]
        .parse()
        .map_err(|_| LineError::Torn("bad crc digits"))?;
    let body = &rest[comma + BODY.len()..];
    let body = body
        .strip_suffix('}')
        .ok_or(LineError::Torn("no closing brace"))?;
    let actual = crc32(body.as_bytes());
    if actual != stored {
        return Err(LineError::Checksum { stored, actual });
    }
    serde_json::from_str(body).map_err(|_| LineError::Torn("unparseable body"))
}

/// An open tuning journal: replayed state plus an append handle.
pub struct TuningJournal {
    path: PathBuf,
    file: File,
    replay: JournalReplay,
    recovery: Vec<Diagnostic>,
    appends: u64,
    kill_after_appends: Option<u64>,
    fs_policy: Option<Arc<dyn FsPolicy>>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for TuningJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningJournal")
            .field("path", &self.path)
            .field("records", &self.replay.records)
            .field("cells", &self.replay.n_cells())
            .field("recovery", &self.recovery)
            .finish_non_exhaustive()
    }
}

impl TuningJournal {
    /// Open (or create) a journal at `path`, validating and replaying
    /// its contents. An invalid suffix — torn tail or checksum failure —
    /// is physically truncated so appends continue from a consistent
    /// prefix; the recovery is reported via
    /// [`TuningJournal::recovery_diagnostics`], never an error.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(NitroError::Io(e)),
        };

        let mut replay = JournalReplay::default();
        let mut recovery = Vec::new();
        let mut valid_len = 0usize;
        let mut offset = 0usize;
        let subject = path.display().to_string();
        while offset < bytes.len() {
            let nl = bytes[offset..].iter().position(|&b| b == b'\n');
            let Some(nl) = nl else {
                // No newline before EOF: a torn final append.
                recovery.push(diag_torn_journal(
                    &subject,
                    offset,
                    "final line has no newline (crash mid-append)",
                ));
                break;
            };
            let line = &bytes[offset..offset + nl];
            let decoded = std::str::from_utf8(line)
                .map_err(|_| LineError::Torn("not UTF-8"))
                .and_then(decode_line);
            match decoded {
                Ok(record) => {
                    replay.absorb(record);
                    offset += nl + 1;
                    valid_len = offset;
                }
                Err(LineError::Torn(reason)) => {
                    recovery.push(diag_torn_journal(&subject, offset, reason));
                    break;
                }
                Err(LineError::Checksum { stored, actual }) => {
                    recovery.push(diag_journal_checksum(&subject, offset, stored, actual));
                    break;
                }
            }
        }
        if valid_len < bytes.len() {
            // Truncate the invalid suffix so the on-disk log matches the
            // replayed prefix and future appends extend a consistent file.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }

        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            file,
            replay,
            recovery,
            appends: 0,
            kill_after_appends: None,
            fs_policy: None,
            retry: RetryPolicy::default(),
        })
    }

    /// Install (or clear) the fault-injection seam consulted before
    /// every append. Open/replay itself is never faulted — attach the
    /// policy after opening, the way a chaos harness wraps a healthy
    /// journal.
    pub fn set_fs_policy(&mut self, policy: Option<Arc<dyn FsPolicy>>) {
        self.fs_policy = policy;
    }

    /// Replace the bounded retry/backoff policy used when an injected
    /// transient fault (e.g. `ENOSPC`) blocks an append.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The replayed state of the journal's valid prefix.
    pub fn replay(&self) -> &JournalReplay {
        &self.replay
    }

    /// Diagnostics from open-time recovery: `NITRO070` for a torn tail,
    /// `NITRO071` for a mid-journal checksum failure. Empty when the
    /// journal was fully intact.
    pub fn recovery_diagnostics(&self) -> &[Diagnostic] {
        &self.recovery
    }

    /// Crash-test hook: after `n` more successful appends, the next
    /// append writes only a *partial* line (a torn tail, exactly what a
    /// kill mid-`write` leaves behind) and fails with an interrupted-IO
    /// error. Chaos harnesses use this to kill `tune_durable` at an
    /// arbitrary journal offset.
    pub fn kill_after_appends(&mut self, n: u64) {
        self.kill_after_appends = Some(self.appends + n);
    }

    /// Validate this journal against the run identity `header`, writing
    /// a `Begin` record on a fresh journal. Returns
    /// [`NitroError::ModelMismatch`] when the journal belongs to a
    /// different run (function, registration, corpus or policy).
    pub fn begin(&mut self, header: &JournalHeader) -> Result<()> {
        match &self.replay.header {
            Some(existing) => match existing.mismatch(header) {
                Some(detail) => Err(NitroError::ModelMismatch {
                    detail: format!(
                        "journal {} cannot resume this run: {detail}",
                        self.path.display()
                    ),
                }),
                None => Ok(()),
            },
            None => {
                if self.replay.records > 0 {
                    return Err(NitroError::ModelMismatch {
                        detail: format!(
                            "journal {} has records but no Begin header",
                            self.path.display()
                        ),
                    });
                }
                self.append(&JournalRecord::Begin {
                    header: header.clone(),
                })?;
                self.sync()
            }
        }
    }

    /// Append one record (buffered write + flush). Honors the
    /// [`TuningJournal::kill_after_appends`] crash hook and consults the
    /// fault policy, if any:
    ///
    /// * an injected [`FsFault::TornWrite`] lands a *partial* line (no
    ///   newline) and fails with `ErrorKind::Interrupted` — **never
    ///   retried**, because a retry would append a complete line after
    ///   the partial bytes and merge the two into one invalid record.
    ///   Reopening truncates the torn tail (`NITRO070`) and resumes.
    /// * transient faults (`ENOSPC`-shaped) land no bytes and are
    ///   retried with deterministic jitter up to the retry budget;
    ///   exhaustion is typed as `NITRO113`.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        let line = encode_line(record)?;
        if self.kill_after_appends == Some(self.appends) {
            // Simulated crash: leave a torn tail (half a line, no
            // newline) exactly as a kill mid-write would.
            let torn = &line.as_bytes()[..line.len() / 2];
            self.file.write_all(torn)?;
            self.file.flush()?;
            return Err(NitroError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("simulated crash after {} append(s)", self.appends),
            )));
        }
        if let Some(policy) = self.fs_policy.clone() {
            let max = self.retry.max_attempts.max(1);
            let mut attempt = 0;
            loop {
                attempt += 1;
                match policy.fault(FsOp::Write, &self.path) {
                    None => break,
                    Some(FsFault::TornWrite) => {
                        let torn = &line.as_bytes()[..line.len() / 2];
                        self.file.write_all(torn)?;
                        self.file.flush()?;
                        return Err(NitroError::Io(FsFault::TornWrite.to_error(&self.path)));
                    }
                    Some(fault) => {
                        if attempt >= max {
                            return Err(NitroError::Audit {
                                diagnostics: vec![diag_retry_exhausted(
                                    &self.path.display().to_string(),
                                    "journal append",
                                    attempt,
                                    &fault.to_error(&self.path).to_string(),
                                )],
                            });
                        }
                        let pause = self.retry.backoff_ns(path_salt(&self.path), attempt);
                        if pause > 0 {
                            std::thread::sleep(std::time::Duration::from_nanos(pause));
                        }
                    }
                }
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.appends += 1;
        self.replay.absorb(record.clone());
        Ok(())
    }

    /// Append a phase marker and fsync — phase boundaries are durable.
    pub fn append_phase(&mut self, name: &str) -> Result<()> {
        self.append(&JournalRecord::Phase { name: name.into() })?;
        self.sync()
    }

    /// fsync the journal file.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Appends performed through this handle (not counting replayed
    /// records).
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::context::temp_model_dir;

    fn header(n_inputs: u64) -> JournalHeader {
        JournalHeader {
            format_version: JOURNAL_FORMAT_VERSION,
            function: "toy".into(),
            variant_names: vec!["a".into(), "b".into()],
            feature_names: vec!["x".into()],
            objective: Objective::Minimize,
            n_inputs,
            policy_crc: 0xDEAD_BEEF,
        }
    }

    fn cell(input: u64, variant: u64, cost: f64) -> JournalRecord {
        JournalRecord::Cell {
            input,
            variant,
            cost: Some(cost),
            allowed: true,
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_model_dir("journal-rt").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(2)).unwrap();
            j.append(&JournalRecord::Features {
                input: 0,
                features: vec![1.5],
                feature_cost_ns: 10.0,
            })
            .unwrap();
            j.append(&cell(0, 0, 2.5)).unwrap();
            j.append(&JournalRecord::Cell {
                input: 0,
                variant: 1,
                cost: None,
                allowed: false,
            })
            .unwrap();
            j.append_phase("profiling_complete").unwrap();
        }
        let j = TuningJournal::open(&path).unwrap();
        assert!(j.recovery_diagnostics().is_empty());
        let r = j.replay();
        assert_eq!(r.header.as_ref().unwrap().function, "toy");
        assert_eq!(r.features(0), Some(&(vec![1.5], 10.0)));
        assert_eq!(r.cell(0, 0).unwrap().cost, Some(2.5));
        assert_eq!(r.cell(0, 1).unwrap().cost, None);
        assert!(!r.cell(0, 1).unwrap().allowed);
        assert!(r.input_complete(0, 2));
        assert!(!r.input_complete(1, 2));
        assert!(r.has_phase("profiling_complete"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_model_dir("journal-torn").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(4)).unwrap();
            j.append(&cell(0, 0, 1.0)).unwrap();
        }
        // Simulate a crash mid-append: half a line, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        let intact_len = bytes.len();
        let torn = encode_line(&cell(1, 0, 2.0)).unwrap();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let j = TuningJournal::open(&path).unwrap();
        assert_eq!(j.recovery_diagnostics().len(), 1);
        assert_eq!(j.recovery_diagnostics()[0].code, "NITRO070");
        assert_eq!(j.replay().cell(0, 0).unwrap().cost, Some(1.0));
        assert!(j.replay().cell(1, 0).is_none());
        // The file was physically truncated back to the valid prefix.
        assert_eq!(std::fs::read(&path).unwrap().len(), intact_len);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mid_journal_bit_flip_is_a_checksum_diagnostic() {
        let dir = temp_model_dir("journal-flip").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(4)).unwrap();
            j.append(&cell(0, 0, 1.0)).unwrap();
            j.append(&cell(0, 1, 2.0)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the *second* record's body (a digit of its
        // cost), leaving line structure intact.
        let target = bytes.len() - 10;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let j = TuningJournal::open(&path).unwrap();
        let diags = j.recovery_diagnostics();
        assert!(diags.iter().any(|d| d.code == "NITRO071"), "{diags:?}");
        // The corrupt record and everything after it are gone; the
        // prefix survives.
        assert!(j.replay().cell(0, 0).is_some());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn begin_refuses_a_mismatched_run() {
        let dir = temp_model_dir("journal-mismatch").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(4)).unwrap();
        }
        let mut j = TuningJournal::open(&path).unwrap();
        let mut other = header(4);
        other.variant_names.push("c".into());
        let err = j.begin(&other).unwrap_err();
        assert!(err.to_string().contains("variant lists differ"), "{err}");
        // The matching header resumes fine.
        j.begin(&header(4)).unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn kill_hook_leaves_a_recoverable_torn_tail() {
        let dir = temp_model_dir("journal-kill").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(4)).unwrap();
            j.kill_after_appends(1);
            j.append(&cell(0, 0, 1.0)).unwrap();
            let err = j.append(&cell(0, 1, 2.0)).unwrap_err();
            assert!(err.to_string().contains("simulated crash"), "{err}");
        }
        let j = TuningJournal::open(&path).unwrap();
        assert_eq!(j.recovery_diagnostics().len(), 1);
        assert!(j.replay().cell(0, 0).is_some());
        assert!(j.replay().cell(0, 1).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn injected_torn_append_is_never_retried_and_recovers_on_reopen() {
        use nitro_core::ChaosFs;
        let dir = temp_model_dir("journal-chaos-torn").unwrap();
        let path = dir.join("toy.journal.jsonl");
        {
            let mut j = TuningJournal::open(&path).unwrap();
            j.begin(&header(4)).unwrap();
            j.append(&cell(0, 0, 1.0)).unwrap();
            // Probability-1 torn writes: the very next append tears.
            j.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(9, 1.0, 0.0, 0.0, 0.0))));
            let err = j.append(&cell(0, 1, 2.0)).unwrap_err();
            let NitroError::Io(io) = &err else {
                panic!("torn append must surface as Io, got {err}");
            };
            assert_eq!(io.kind(), std::io::ErrorKind::Interrupted, "{io}");
        }
        // Reopen: the torn tail is truncated (NITRO070), the durable
        // prefix survives bit-identically, and appends continue.
        let mut j = TuningJournal::open(&path).unwrap();
        assert_eq!(j.recovery_diagnostics().len(), 1);
        assert_eq!(j.recovery_diagnostics()[0].code, "NITRO070");
        assert_eq!(j.replay().cell(0, 0).unwrap().cost, Some(1.0));
        assert!(j.replay().cell(0, 1).is_none());
        j.append(&cell(0, 1, 2.0)).unwrap();
        let j = TuningJournal::open(&path).unwrap();
        assert!(j.recovery_diagnostics().is_empty());
        assert_eq!(j.replay().cell(0, 1).unwrap().cost, Some(2.0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn transient_append_faults_are_retried_and_exhaustion_is_typed() {
        use nitro_core::{ChaosFs, RetryPolicy};
        let dir = temp_model_dir("journal-chaos-enospc").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let mut j = TuningJournal::open(&path).unwrap();
        j.begin(&header(4)).unwrap();
        j.set_retry(RetryPolicy {
            max_attempts: 10,
            backoff_base_ns: 10,
            ..RetryPolicy::default()
        });
        // Flaky ENOSPC: the bounded retry rides it out.
        j.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(11, 0.0, 0.5, 0.0, 0.0))));
        j.append(&cell(0, 0, 1.0)).unwrap();
        // Permanent ENOSPC: budget exhausts and surfaces as NITRO113.
        j.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(11, 0.0, 1.0, 0.0, 0.0))));
        let err = j.append(&cell(0, 1, 2.0)).unwrap_err();
        assert!(err.to_string().contains("NITRO113"), "{err}");
        // Nothing landed for the failed append; the journal stays valid.
        let j = TuningJournal::open(&path).unwrap();
        assert!(j.recovery_diagnostics().is_empty());
        assert!(j.replay().cell(0, 0).is_some());
        assert!(j.replay().cell(0, 1).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_and_missing_journals_open_clean() {
        let dir = temp_model_dir("journal-empty").unwrap();
        let path = dir.join("fresh.journal.jsonl");
        let j = TuningJournal::open(&path).unwrap();
        assert!(j.recovery_diagnostics().is_empty());
        assert_eq!(j.replay().records, 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
