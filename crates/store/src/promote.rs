//! Staged model promotion with automatic rollback.
//!
//! Retrained models never replace the serving model directly. They
//! enter as **candidates** that *shadow-predict*: on every observed
//! call both the incumbent and the candidate predict, both predictions
//! are scored against the full per-variant cost vector (via
//! [`nitro_trace::RegretLedger`]), and only after a configurable shadow
//! window shows the candidate **no worse** than the incumbent is it
//! promoted. A promotion opens a **probation** window during which the
//! *prior* incumbent keeps shadow-predicting; if the promoted model
//! regresses past tolerance, the promotion is automatically rolled back
//! (instantly — the prior artifact is still in memory and the store's
//! `latest` pointer moves back) with a `NITRO074` finding and a
//! `deploy.<fn>.rollback` metric. Repeated auto-rollbacks trip a storm
//! breaker (`NITRO075`): further promotions are held until an operator
//! calls [`StagedPromotion::release_hold`].
//!
//! ```text
//!             stage_candidate           window no-worse
//!  (none) ────────────────▶ CANDIDATE ────────────────▶ PROBATION ──▶ (none)
//!                              │  stale / worse            │  passed
//!                              ▼                           ▼ regressed
//!                           demoted (NITRO073)       rollback (NITRO074)
//!                           cooldown by content crc   ×N → held (NITRO075)
//! ```

use nitro_core::{crc32, Diagnostic, ModelArtifact, NitroError, Result};
use nitro_pulse::{PulseAlert, PulseRegistry, PulseSketch};
use nitro_trace::RegretLedger;

use crate::audit::{diag_rollback, diag_rollback_storm, diag_stale_candidate};
use crate::store::ArtifactStore;

/// Knobs of the promotion state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionPolicy {
    /// Shadow observations required before a candidate is judged.
    pub shadow_window: u64,
    /// Promotion bar: candidate mean chosen cost must be at most
    /// `(1 + tolerance) ×` the incumbent's over the shadow window.
    pub tolerance: f64,
    /// Observations after promotion before probation is judged.
    pub probation_window: u64,
    /// Rollback bar: the promoted model regresses when its probation
    /// mean exceeds `(1 + probation_tolerance) ×` the prior model's.
    pub probation_tolerance: f64,
    /// A candidate whose shadow window has not filled after this many
    /// total observations is demoted as stale (`NITRO073`).
    pub max_candidate_age: u64,
    /// A demoted candidate's content checksum is refused for this many
    /// observations (prevents an unchanged retrain from thrashing).
    pub demotion_cooldown: u64,
    /// Auto-rollbacks before the storm breaker holds promotions.
    pub storm_threshold: u64,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        Self {
            shadow_window: 20,
            tolerance: 0.05,
            probation_window: 30,
            probation_tolerance: 0.10,
            max_candidate_age: 200,
            demotion_cooldown: 50,
            storm_threshold: 3,
        }
    }
}

/// A staged model shadow-predicting alongside the incumbent.
#[derive(Debug)]
struct Candidate {
    artifact: ModelArtifact,
    crc: u32,
    staged_at: u64,
    incumbent_ledger: RegretLedger,
    candidate_ledger: RegretLedger,
}

/// A freshly promoted model under watch, with its predecessor shadowing.
#[derive(Debug)]
struct Probation {
    prior: ModelArtifact,
    prior_version: Option<u64>,
    promoted_crc: u32,
    prior_ledger: RegretLedger,
    current_ledger: RegretLedger,
}

/// What [`StagedPromotion::observe`] (and friends) did.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// A candidate entered the shadow stage.
    Staged {
        /// Content checksum of the candidate artifact.
        crc: u32,
    },
    /// A candidate (or operator override) became the incumbent.
    Promoted {
        /// Store version it was published as, when a store was attached.
        version: Option<u64>,
    },
    /// The promoted model survived probation; the promotion is final.
    ProbationPassed,
    /// A candidate was removed without promotion.
    Demoted {
        /// Why (`"shadow window shows it worse"`, `"stale"`, …).
        reason: String,
        /// The `NITRO073` finding, when staleness was the cause.
        diagnostic: Option<Diagnostic>,
    },
    /// A staging request was refused outright (hold active, cooldown,
    /// probation in progress).
    Rejected {
        /// Why.
        reason: String,
    },
    /// The promoted model regressed; the prior incumbent is back.
    RolledBack {
        /// Store version now serving, when a store was attached.
        to: Option<u64>,
        /// The `NITRO074` finding.
        diagnostic: Diagnostic,
    },
    /// The storm breaker tripped; promotions are held (`NITRO075`).
    Held {
        /// The `NITRO075` finding.
        diagnostic: Diagnostic,
    },
}

/// Where the state machine currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionStage {
    /// Just the incumbent; nothing staged.
    Steady,
    /// A candidate is shadow-predicting.
    Shadowing,
    /// A recent promotion is under probation.
    Probation,
    /// The storm breaker is holding promotions.
    Held,
}

/// The staged-promotion state machine for one tuned function.
#[derive(Debug)]
pub struct StagedPromotion {
    function: String,
    policy: PromotionPolicy,
    incumbent: ModelArtifact,
    incumbent_version: Option<u64>,
    candidate: Option<Candidate>,
    probation: Option<Probation>,
    observations: u64,
    rollbacks: u64,
    held: bool,
    /// `(content crc, observation count at demotion)` of recent demotions.
    demoted: Vec<(u32, u64)>,
    tracer: Option<nitro_trace::Tracer>,
    promotion_ns: Option<PulseSketch>,
}

fn artifact_crc(artifact: &ModelArtifact) -> Result<u32> {
    Ok(crc32(artifact.to_json()?.as_bytes()))
}

impl StagedPromotion {
    /// A state machine serving `incumbent`, with no staged candidate.
    pub fn new(incumbent: ModelArtifact, policy: PromotionPolicy) -> Self {
        Self {
            function: incumbent.function.clone(),
            policy,
            incumbent,
            incumbent_version: None,
            candidate: None,
            probation: None,
            observations: 0,
            rollbacks: 0,
            held: false,
            demoted: Vec::new(),
            tracer: None,
            promotion_ns: None,
        }
    }

    /// Record which store version the incumbent corresponds to, so
    /// promotions publish successors and rollbacks move the store's
    /// `latest` pointer.
    pub fn set_incumbent_version(&mut self, version: Option<u64>) {
        self.incumbent_version = version;
    }

    /// Emit `deploy.<fn>.*` counters and `deploy:<fn>` instants through
    /// a tracer.
    pub fn attach_tracer(&mut self, tracer: nitro_trace::Tracer) {
        let m = tracer.metrics();
        for suffix in ["stage", "promote", "demote", "rollback", "hold"] {
            m.declare_counter(&format!("deploy.{}.{suffix}", self.function));
        }
        self.tracer = Some(tracer);
    }

    /// Register `store.<fn>.promotion_ns` in a pulse registry and time
    /// every subsequent [`observe`](Self::observe) into it, so the
    /// promotion machinery's own overhead shows up in the same
    /// quantile-sketch telemetry as dispatch latency.
    pub fn attach_pulse(&mut self, registry: &PulseRegistry) {
        self.promotion_ns = Some(registry.sketch(&format!("store.{}.promotion_ns", self.function)));
    }

    fn note(&self, kind: &str, detail: &str) {
        if let Some(t) = &self.tracer {
            t.metrics()
                .add(&format!("deploy.{}.{kind}", self.function), 1);
            t.instant(
                &format!("deploy:{}", self.function),
                "deploy",
                vec![
                    nitro_trace::arg("event", kind),
                    nitro_trace::arg("detail", detail),
                ],
            );
        }
    }

    /// The function this machine manages.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The serving model.
    pub fn current(&self) -> &ModelArtifact {
        &self.incumbent
    }

    /// The store version of the serving model, when known.
    pub fn current_version(&self) -> Option<u64> {
        self.incumbent_version
    }

    /// Predict with the serving model (what dispatch should execute).
    pub fn predict(&self, features: &[f64]) -> usize {
        self.incumbent.model.predict(features)
    }

    /// Current stage of the state machine.
    pub fn stage(&self) -> PromotionStage {
        if self.held {
            PromotionStage::Held
        } else if self.candidate.is_some() {
            PromotionStage::Shadowing
        } else if self.probation.is_some() {
            PromotionStage::Probation
        } else {
            PromotionStage::Steady
        }
    }

    /// Auto-rollbacks so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Whether the storm breaker is holding promotions.
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Operator override: release the storm hold and reset the rollback
    /// count.
    pub fn release_hold(&mut self) {
        self.held = false;
        self.rollbacks = 0;
    }

    /// Observations recorded so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Stage a retrained artifact as a shadow candidate.
    ///
    /// Refusals come back as [`LifecycleEvent::Rejected`], not errors:
    /// the storm hold, the demotion cooldown (same content checksum as
    /// a recently demoted candidate) and an active probation all refuse.
    /// A mismatched function is a hard error.
    pub fn stage_candidate(&mut self, artifact: ModelArtifact) -> Result<Vec<LifecycleEvent>> {
        if artifact.function != self.function {
            return Err(NitroError::ModelMismatch {
                detail: format!(
                    "candidate is for '{}', promotion manages '{}'",
                    artifact.function, self.function
                ),
            });
        }
        if self.held {
            return Ok(vec![LifecycleEvent::Rejected {
                reason: "rollback storm hold is active (release_hold() to clear)".into(),
            }]);
        }
        if self.probation.is_some() {
            return Ok(vec![LifecycleEvent::Rejected {
                reason: "a promotion is still under probation".into(),
            }]);
        }
        let crc = artifact_crc(&artifact)?;
        if let Some((_, at)) = self.demoted.iter().find(|(c, _)| *c == crc) {
            if self.observations.saturating_sub(*at) < self.policy.demotion_cooldown {
                return Ok(vec![LifecycleEvent::Rejected {
                    reason: format!(
                        "content crc {crc:08x} was demoted {} observation(s) ago (cooldown {})",
                        self.observations - at,
                        self.policy.demotion_cooldown
                    ),
                }]);
            }
        }
        self.candidate = Some(Candidate {
            artifact,
            crc,
            staged_at: self.observations,
            incumbent_ledger: RegretLedger::default(),
            candidate_ledger: RegretLedger::default(),
        });
        self.note("stage", &format!("crc {crc:08x}"));
        Ok(vec![LifecycleEvent::Staged { crc }])
    }

    fn demote(&mut self, reason: String, diagnostic: Option<Diagnostic>) -> LifecycleEvent {
        if let Some(c) = self.candidate.take() {
            self.demoted.push((c.crc, self.observations));
            // Keep the cooldown list bounded.
            if self.demoted.len() > 32 {
                self.demoted.remove(0);
            }
        }
        self.note("demote", &reason);
        LifecycleEvent::Demoted { reason, diagnostic }
    }

    fn promote(&mut self, store: Option<&mut ArtifactStore>, note: &str) -> Result<LifecycleEvent> {
        let candidate = self.candidate.take().expect("promote requires a candidate");
        let version = match store {
            Some(s) => Some(s.publish(&candidate.artifact, note)?),
            None => None,
        };
        let prior = std::mem::replace(&mut self.incumbent, candidate.artifact);
        let prior_version = std::mem::replace(&mut self.incumbent_version, version);
        self.probation = Some(Probation {
            prior,
            prior_version,
            promoted_crc: candidate.crc,
            prior_ledger: RegretLedger::default(),
            current_ledger: RegretLedger::default(),
        });
        self.note("promote", note);
        Ok(LifecycleEvent::Promoted { version })
    }

    /// Operator override: promote the staged candidate immediately,
    /// skipping the rest of the shadow window (probation still applies —
    /// this is how chaos harnesses force a synthetic regression).
    pub fn promote_now(
        &mut self,
        store: Option<&mut ArtifactStore>,
    ) -> Result<Vec<LifecycleEvent>> {
        if self.held {
            return Ok(vec![LifecycleEvent::Rejected {
                reason: "rollback storm hold is active".into(),
            }]);
        }
        if self.candidate.is_none() {
            return Ok(vec![LifecycleEvent::Rejected {
                reason: "no candidate is staged".into(),
            }]);
        }
        Ok(vec![self.promote(store, "promote_now override")?])
    }

    /// Feed one observed call: the input's `label`, its feature vector
    /// and the full per-variant cost vector (ground truth). Advances
    /// shadow windows, probation, promotion, demotion and rollback;
    /// returns whatever happened.
    ///
    /// Cost vectors that are empty or non-finite are ignored by the
    /// ledgers, so fault-injected calls cannot poison a comparison.
    pub fn observe(
        &mut self,
        label: &str,
        features: &[f64],
        costs: &[f64],
        mut store: Option<&mut ArtifactStore>,
    ) -> Result<Vec<LifecycleEvent>> {
        let pulse_start = self
            .promotion_ns
            .as_ref()
            .map(|_| std::time::Instant::now());
        self.observations += 1;
        let mut events = Vec::new();

        if let Some(c) = &mut self.candidate {
            let inc_choice = self.incumbent.model.predict(features);
            let cand_choice = c.artifact.model.predict(features);
            c.incumbent_ledger.record(label, inc_choice, costs);
            c.candidate_ledger.record(label, cand_choice, costs);

            let observed = c.candidate_ledger.count;
            let age = self.observations - c.staged_at;
            if observed >= self.policy.shadow_window {
                let cand_mean = c.candidate_ledger.mean_chosen_cost();
                let inc_mean = c.incumbent_ledger.mean_chosen_cost();
                if cand_mean <= inc_mean * (1.0 + self.policy.tolerance) {
                    events.push(self.promote(
                        store.as_deref_mut(),
                        &format!("shadow window passed ({cand_mean:.4} vs {inc_mean:.4})"),
                    )?);
                } else {
                    events.push(self.demote(
                        format!(
                            "shadow window shows it worse ({cand_mean:.4} vs {inc_mean:.4}, tolerance {:.1}%)",
                            self.policy.tolerance * 100.0
                        ),
                        None,
                    ));
                }
            } else if age >= self.policy.max_candidate_age {
                let diag =
                    diag_stale_candidate(&self.function, observed, self.policy.shadow_window, age);
                events.push(self.demote("stale candidate".into(), Some(diag)));
            }
        } else if let Some(p) = &mut self.probation {
            let cur_choice = self.incumbent.model.predict(features);
            let prior_choice = p.prior.model.predict(features);
            p.current_ledger.record(label, cur_choice, costs);
            p.prior_ledger.record(label, prior_choice, costs);

            if p.current_ledger.count >= self.policy.probation_window {
                let cur_mean = p.current_ledger.mean_chosen_cost();
                let prior_mean = p.prior_ledger.mean_chosen_cost();
                if cur_mean > prior_mean * (1.0 + self.policy.probation_tolerance) {
                    events.extend(self.roll_back(cur_mean, prior_mean, store)?);
                } else {
                    self.probation = None;
                    events.push(LifecycleEvent::ProbationPassed);
                }
            }
        }
        if let (Some(sk), Some(start)) = (&self.promotion_ns, pulse_start) {
            sk.record(start.elapsed().as_nanos() as f64);
        }
        Ok(events)
    }

    /// Consume a pulse alert as an out-of-band regression signal,
    /// closing the observe→act loop.
    ///
    /// A paging [`nitro_pulse::AlertKind::LatencyRegression`] whose metric belongs to
    /// this function acts immediately, without waiting for a ledger
    /// window to fill:
    ///
    /// * under **probation**, the promotion is rolled back (`NITRO074`,
    ///   storm accounting included) — the watchdog saw the regression
    ///   before the regret ledger did;
    /// * while **shadowing**, the candidate is demoted — a function
    ///   already missing its latency SLO is no place to promote into.
    ///
    /// Warnings, rate breaches, other functions' alerts and the
    /// `Steady`/`Held` stages are ignored (empty event list).
    pub fn ingest_alert(
        &mut self,
        alert: &PulseAlert,
        store: Option<&mut ArtifactStore>,
    ) -> Result<Vec<LifecycleEvent>> {
        if !alert.is_page_latency_for(&self.function) {
            return Ok(Vec::new());
        }
        if let Some(p) = &self.probation {
            // Prefer the probation ledgers' means for the NITRO074
            // message; fall back to the alert's observed/threshold when
            // the window is still empty.
            let (cur, prior) = if p.current_ledger.count > 0 && p.prior_ledger.count > 0 {
                (
                    p.current_ledger.mean_chosen_cost(),
                    p.prior_ledger.mean_chosen_cost(),
                )
            } else {
                (alert.observed, alert.threshold)
            };
            return self.roll_back(cur, prior, store);
        }
        if self.candidate.is_some() {
            return Ok(vec![self.demote(
                format!(
                    "latency SLO '{}' paged on {}: {:.0} ns over threshold {:.0} ns",
                    alert.slo, alert.metric, alert.observed, alert.threshold
                ),
                None,
            )]);
        }
        Ok(Vec::new())
    }

    fn roll_back(
        &mut self,
        cur_mean: f64,
        prior_mean: f64,
        store: Option<&mut ArtifactStore>,
    ) -> Result<Vec<LifecycleEvent>> {
        let p = self.probation.take().expect("rollback requires probation");
        let diag = diag_rollback(
            &self.function,
            cur_mean,
            prior_mean,
            self.policy.probation_tolerance,
        );
        // Instant in-memory revert; the store pointer follows.
        self.incumbent = p.prior;
        self.incumbent_version = p.prior_version;
        if let (Some(s), Some(v)) = (store, p.prior_version) {
            s.rollback(v)?;
        }
        self.demoted.push((p.promoted_crc, self.observations));
        self.rollbacks += 1;
        self.note("rollback", &diag.message);
        let mut events = vec![LifecycleEvent::RolledBack {
            to: p.prior_version,
            diagnostic: diag,
        }];
        if self.rollbacks >= self.policy.storm_threshold {
            self.held = true;
            let diag =
                diag_rollback_storm(&self.function, self.rollbacks, self.policy.storm_threshold);
            self.note("hold", &diag.message);
            events.push(LifecycleEvent::Held { diagnostic: diag });
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::context::temp_model_dir;
    use nitro_core::{TuningPolicy, MODEL_SCHEMA_VERSION};
    use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};

    /// A model that (given the 1-feature toy data) predicts class 0
    /// below `split` and class 1 above it.
    fn split_model(function: &str, split: f64) -> ModelArtifact {
        let data = Dataset::from_parts(
            vec![
                vec![split - 2.0],
                vec![split - 1.0],
                vec![split + 1.0],
                vec![split + 2.0],
            ],
            vec![0, 0, 1, 1],
        );
        let model = TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data);
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: function.into(),
            variant_names: vec!["a".into(), "b".into()],
            feature_names: vec!["x".into()],
            policy: TuningPolicy::default(),
            model,
        }
    }

    fn quick_policy() -> PromotionPolicy {
        PromotionPolicy {
            shadow_window: 4,
            tolerance: 0.05,
            probation_window: 4,
            probation_tolerance: 0.10,
            max_candidate_age: 10,
            demotion_cooldown: 5,
            storm_threshold: 2,
        }
    }

    /// Cost vectors where variant 0 is always cheapest: a model that
    /// predicts 0 everywhere is "good", one that predicts 1 is "bad".
    const COSTS: [f64; 2] = [1.0, 2.0];

    /// good model: split far right, every feature below it → class 0.
    fn good(function: &str) -> ModelArtifact {
        split_model(function, 100.0)
    }

    /// bad model: split far left, every feature above it → class 1.
    fn bad(function: &str) -> ModelArtifact {
        split_model(function, -100.0)
    }

    fn drive(
        sp: &mut StagedPromotion,
        n: u64,
        store: Option<&mut ArtifactStore>,
    ) -> Vec<LifecycleEvent> {
        let mut store = store;
        let mut all = Vec::new();
        for i in 0..n {
            let evs = sp
                .observe(&format!("obs{i}"), &[0.0], &COSTS, store.as_deref_mut())
                .unwrap();
            all.extend(evs);
        }
        all
    }

    #[test]
    fn no_worse_candidate_is_promoted_and_passes_probation() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        let evs = sp.stage_candidate(good("toy")).unwrap();
        assert!(matches!(evs[0], LifecycleEvent::Staged { .. }));
        assert_eq!(sp.stage(), PromotionStage::Shadowing);
        let evs = drive(&mut sp, 4, None);
        assert!(
            matches!(evs[0], LifecycleEvent::Promoted { version: None }),
            "{evs:?}"
        );
        assert_eq!(sp.stage(), PromotionStage::Probation);
        let evs = drive(&mut sp, 4, None);
        assert!(evs.contains(&LifecycleEvent::ProbationPassed), "{evs:?}");
        assert_eq!(sp.stage(), PromotionStage::Steady);
        assert_eq!(sp.rollbacks(), 0);
    }

    #[test]
    fn worse_candidate_is_demoted_and_cooldown_blocks_restaging() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.stage_candidate(bad("toy")).unwrap();
        let evs = drive(&mut sp, 4, None);
        assert!(
            matches!(&evs[0], LifecycleEvent::Demoted { reason, .. } if reason.contains("worse")),
            "{evs:?}"
        );
        // The incumbent never changed.
        assert_eq!(sp.predict(&[0.0]), 0);
        // Restaging the identical artifact inside the cooldown is refused.
        let evs = sp.stage_candidate(bad("toy")).unwrap();
        assert!(
            matches!(&evs[0], LifecycleEvent::Rejected { reason } if reason.contains("demoted"))
        );
        // A *different* artifact stages fine.
        let evs = sp.stage_candidate(good("toy")).unwrap();
        assert!(matches!(evs[0], LifecycleEvent::Staged { .. }));
    }

    #[test]
    fn stale_candidate_gets_nitro073() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.stage_candidate(good("toy")).unwrap();
        // Feed only unusable cost vectors: ledgers never fill, age grows.
        let mut evs = Vec::new();
        for i in 0..10 {
            evs.extend(sp.observe(&format!("o{i}"), &[0.0], &[], None).unwrap());
        }
        let demoted = evs
            .iter()
            .find_map(|e| match e {
                LifecycleEvent::Demoted { diagnostic, .. } => diagnostic.as_ref(),
                _ => None,
            })
            .expect("stale demotion");
        assert_eq!(demoted.code, "NITRO073");
        assert_eq!(sp.stage(), PromotionStage::Steady);
    }

    #[test]
    fn regression_rolls_back_automatically_with_store() {
        let root = temp_model_dir("promote-rollback").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        let v1 = store.publish(&good("toy"), "tune").unwrap();
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.set_incumbent_version(Some(v1));

        sp.stage_candidate(bad("toy")).unwrap();
        // Operator override pushes the bad model straight in — the shadow
        // window would (correctly) have blocked it.
        let evs = sp.promote_now(Some(&mut store)).unwrap();
        assert!(
            matches!(evs[0], LifecycleEvent::Promoted { version: Some(2) }),
            "{evs:?}"
        );
        assert_eq!(store.latest(), Some(2));
        assert_eq!(sp.predict(&[0.0]), 1, "bad model is serving");

        let evs = drive(&mut sp, 4, Some(&mut store));
        let rb = evs
            .iter()
            .find_map(|e| match e {
                LifecycleEvent::RolledBack { to, diagnostic } => Some((to, diagnostic)),
                _ => None,
            })
            .expect("auto-rollback");
        assert_eq!(*rb.0, Some(v1));
        assert_eq!(rb.1.code, "NITRO074");
        assert_eq!(store.latest(), Some(v1), "store pointer moved back");
        assert_eq!(sp.predict(&[0.0]), 0, "prior incumbent restored");
        assert_eq!(sp.rollbacks(), 1);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn rollback_storm_holds_promotions_until_released() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        let mut held = Vec::new();
        for round in 0..2 {
            // Vary the artifact each round so the cooldown doesn't block
            // restaging (split position changes the serialized bytes).
            sp.stage_candidate(split_model("toy", -100.0 - round as f64))
                .unwrap();
            sp.promote_now(None).unwrap();
            held.extend(drive(&mut sp, 4, None));
        }
        assert_eq!(sp.rollbacks(), 2);
        assert!(sp.is_held());
        let storm = held
            .iter()
            .find_map(|e| match e {
                LifecycleEvent::Held { diagnostic } => Some(diagnostic),
                _ => None,
            })
            .expect("storm breaker");
        assert_eq!(storm.code, "NITRO075");
        // Held: staging is refused.
        let evs = sp.stage_candidate(good("toy")).unwrap();
        assert!(matches!(&evs[0], LifecycleEvent::Rejected { reason } if reason.contains("storm")));
        sp.release_hold();
        assert_eq!(sp.rollbacks(), 0);
        let evs = sp.stage_candidate(good("toy")).unwrap();
        assert!(matches!(evs[0], LifecycleEvent::Staged { .. }));
    }

    #[test]
    fn staging_during_probation_is_rejected_and_metrics_flow() {
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(64));
        let tracer = nitro_trace::Tracer::new(sink);
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.attach_tracer(tracer.clone());
        sp.stage_candidate(good("toy")).unwrap();
        drive(&mut sp, 4, None); // promoted, probation opens
        let evs = sp.stage_candidate(good("toy")).unwrap();
        assert!(
            matches!(&evs[0], LifecycleEvent::Rejected { reason } if reason.contains("probation"))
        );
        let m = tracer.metrics();
        assert_eq!(m.counter("deploy.toy.stage"), Some(1));
        assert_eq!(m.counter("deploy.toy.promote"), Some(1));
        assert_eq!(m.counter("deploy.toy.rollback"), Some(0));
    }

    #[test]
    fn mismatched_function_is_a_hard_error() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        assert!(sp.stage_candidate(good("other")).is_err());
    }

    fn page_alert(function: &str) -> nitro_pulse::PulseAlert {
        nitro_pulse::PulseAlert {
            slo: format!("{function}-dispatch-p99"),
            kind: nitro_pulse::AlertKind::LatencyRegression,
            severity: nitro_pulse::AlertSeverity::Page,
            metric: format!("dispatch.{function}.latency_ns"),
            observed: 5.0e6,
            threshold: 1.0e6,
            window_ticks: 4,
        }
    }

    #[test]
    fn latency_alert_rolls_back_probation_immediately() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.stage_candidate(good("toy")).unwrap();
        drive(&mut sp, 4, None); // promoted, probation opens
        assert_eq!(sp.stage(), PromotionStage::Probation);
        // The watchdog pages before the probation window fills.
        let evs = sp.ingest_alert(&page_alert("toy"), None).unwrap();
        assert!(
            matches!(&evs[0], LifecycleEvent::RolledBack { diagnostic, .. }
                if diagnostic.code == "NITRO074"),
            "{evs:?}"
        );
        assert_eq!(sp.stage(), PromotionStage::Steady);
        assert_eq!(sp.rollbacks(), 1);
    }

    #[test]
    fn latency_alert_demotes_a_shadowing_candidate() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.stage_candidate(good("toy")).unwrap();
        assert_eq!(sp.stage(), PromotionStage::Shadowing);
        let evs = sp.ingest_alert(&page_alert("toy"), None).unwrap();
        assert!(
            matches!(&evs[0], LifecycleEvent::Demoted { reason, .. } if reason.contains("SLO")),
            "{evs:?}"
        );
        assert_eq!(sp.stage(), PromotionStage::Steady);
    }

    #[test]
    fn irrelevant_alerts_are_ignored() {
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.stage_candidate(good("toy")).unwrap();

        // Another function's regression.
        assert!(sp
            .ingest_alert(&page_alert("other"), None)
            .unwrap()
            .is_empty());
        // A warning-severity alert.
        let mut warn = page_alert("toy");
        warn.severity = nitro_pulse::AlertSeverity::Warn;
        assert!(sp.ingest_alert(&warn, None).unwrap().is_empty());
        // A rate breach.
        let mut rate = page_alert("toy");
        rate.kind = nitro_pulse::AlertKind::RateBreach;
        assert!(sp.ingest_alert(&rate, None).unwrap().is_empty());

        assert_eq!(sp.stage(), PromotionStage::Shadowing, "candidate untouched");
    }

    #[test]
    fn attach_pulse_times_observations_into_a_sketch() {
        let registry = nitro_pulse::PulseRegistry::with_stripes(2);
        let mut sp = StagedPromotion::new(good("toy"), quick_policy());
        sp.attach_pulse(&registry);
        sp.stage_candidate(good("toy")).unwrap();
        drive(&mut sp, 3, None);
        let sk = registry
            .fused_sketch("store.toy.promotion_ns")
            .expect("sketch registered");
        assert_eq!(sk.count(), 3);
        assert!(sk.max() >= 0.0);
    }
}
