//! The versioned artifact store: monotonic model versions, checksummed
//! loads, atomic installs, explicit rollback and retention GC.
//!
//! Layout on disk, per tuned function under a store root:
//!
//! ```text
//! <root>/<function>/manifest.json      # atomic, the source of truth
//! <root>/<function>/v000001.model.json # immutable once published
//! <root>/<function>/v000002.model.json
//! ```
//!
//! Every write is temp-file + fsync + rename ([`nitro_core::atomic_write`]),
//! so a reader never observes a torn manifest or artifact. The manifest
//! records each version's CRC-32; loads verify it and a mismatch is a
//! `NITRO071` **error** — a corrupt version is reported and skipped,
//! never installed. Versions are monotonic; the `latest` pointer moves
//! forward on publish and backward only through an explicit (or
//! automatic, see [`crate::promote`]) [`ArtifactStore::rollback`].

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nitro_core::{
    atomic_write_with, crc32, fs_read, mix64, Diagnostic, FsPolicy, ModelArtifact, NitroError,
    Result, RetryPolicy,
};
use serde::{Deserialize, Serialize};

use crate::audit::{diag_retry_exhausted, diag_version_checksum, diag_version_gap};

/// Deterministic per-path retry-jitter salt: different files decorrelate
/// their backoff schedules, the same file replays the same one.
pub(crate) fn path_salt(path: &Path) -> u64 {
    let mut h = 0xA57F_5A17u64;
    for b in path.as_os_str().as_encoded_bytes() {
        h = mix64(h ^ u64::from(*b));
    }
    h
}

/// One published version's manifest entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredVersion {
    /// Monotonic version number (starts at 1).
    pub version: u64,
    /// CRC-32 of the artifact file's exact bytes.
    pub crc: u32,
    /// Artifact file size in bytes.
    pub bytes: u64,
    /// Free-form provenance note (`"tune"`, `"retrain #3"`, …).
    pub note: String,
}

/// One lifecycle event in the manifest's append-only history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreEvent {
    /// Logical sequence number (the store has no clock: deterministic).
    pub seq: u64,
    /// Event kind: `publish`, `rollback`, `gc`.
    pub kind: String,
    /// Version the event concerns, when applicable.
    pub version: Option<u64>,
    /// Human-readable detail.
    pub detail: String,
}

/// The per-function manifest: source of truth for the store directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Function this store tracks.
    pub function: String,
    /// Version currently installed-by-default (what
    /// [`ArtifactStore::load_latest`] loads). `None` before the first
    /// publish.
    pub latest: Option<u64>,
    /// Next version number a publish will receive.
    pub next_version: u64,
    /// Logical event clock.
    pub seq: u64,
    /// Published versions still retained, ascending by version.
    pub versions: Vec<StoredVersion>,
    /// Append-only event history.
    pub events: Vec<StoreEvent>,
}

impl Manifest {
    fn new(function: &str) -> Self {
        Self {
            function: function.to_string(),
            latest: None,
            next_version: 1,
            seq: 0,
            versions: Vec::new(),
            events: Vec::new(),
        }
    }

    fn entry(&self, version: u64) -> Option<&StoredVersion> {
        self.versions.iter().find(|v| v.version == version)
    }

    fn push_event(&mut self, kind: &str, version: Option<u64>, detail: String) {
        self.seq += 1;
        self.events.push(StoreEvent {
            seq: self.seq,
            kind: kind.to_string(),
            version,
            detail,
        });
    }
}

/// A versioned, checksummed store of [`ModelArtifact`]s for one function.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    manifest: Manifest,
    tracer: Option<nitro_trace::Tracer>,
    fs_policy: Option<Arc<dyn FsPolicy>>,
    retry: RetryPolicy,
}

impl ArtifactStore {
    /// Open (or create) the store for `function` under `root`.
    ///
    /// The manifest, if present, is loaded; it is the source of truth,
    /// so orphan version files (a crash between artifact write and
    /// manifest write) are invisible and get overwritten by the next
    /// publish of that number.
    pub fn open(root: impl AsRef<Path>, function: &str) -> Result<Self> {
        let dir = root.as_ref().join(function);
        std::fs::create_dir_all(&dir)?;
        let manifest_path = dir.join("manifest.json");
        let manifest = match std::fs::read_to_string(&manifest_path) {
            Ok(s) => {
                let m: Manifest = serde_json::from_str(&s)?;
                if m.function != function {
                    return Err(NitroError::ModelMismatch {
                        detail: format!(
                            "store at {} belongs to '{}', not '{function}'",
                            dir.display(),
                            m.function
                        ),
                    });
                }
                m
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::new(function),
            Err(e) => return Err(NitroError::Io(e)),
        };
        Ok(Self {
            dir,
            manifest,
            tracer: None,
            fs_policy: None,
            retry: RetryPolicy::default(),
        })
    }

    /// Install (or clear) the fault-injection seam every subsequent
    /// store read and write consults. `open` itself is never faulted —
    /// attach the policy after opening, the way a chaos harness wraps a
    /// healthy store.
    pub fn set_fs_policy(&mut self, policy: Option<Arc<dyn FsPolicy>>) {
        self.fs_policy = policy;
    }

    /// Replace the bounded retry/backoff policy used for transient I/O
    /// faults ([`RetryPolicy::none`] disables retries entirely).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Atomic write through the policy seam with bounded retry.
    /// Transient faults are retried with deterministic jitter; an
    /// exhausted budget is typed (`NITRO113`) rather than looped on,
    /// and non-retryable errors surface as plain I/O.
    fn retried_write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let policy = self.fs_policy.as_deref();
        // retry_torn: an injected tear lands in the invisible temp file,
        // never the target, so re-attempting an *atomic* write is safe.
        let (result, attempts) = self.retry.run(path_salt(path), true, || {
            atomic_write_with(path, bytes, policy).map_err(|e| match e {
                NitroError::Io(io) => io,
                other => std::io::Error::other(other.to_string()),
            })
        });
        match result {
            Ok(()) => Ok(()),
            Err(e) if attempts > 1 || nitro_core::is_retryable(&e) => Err(NitroError::Audit {
                diagnostics: vec![diag_retry_exhausted(
                    &path.display().to_string(),
                    "atomic write",
                    attempts,
                    &e.to_string(),
                )],
            }),
            Err(e) => Err(NitroError::Io(e)),
        }
    }

    /// Emit `store.<fn>.*` counters and `store:<fn>` instants through a
    /// tracer. Counters are pre-declared so reports show zeros.
    pub fn attach_tracer(&mut self, tracer: nitro_trace::Tracer) {
        let m = tracer.metrics();
        for suffix in ["publish", "rollback", "gc", "corrupt"] {
            m.declare_counter(&format!("store.{}.{suffix}", self.manifest.function));
        }
        self.tracer = Some(tracer);
    }

    fn note_event(&self, kind: &str, version: Option<u64>) {
        if let Some(t) = &self.tracer {
            let f = &self.manifest.function;
            t.metrics().add(&format!("store.{f}.{kind}"), 1);
            t.instant(
                &format!("store:{f}"),
                "store",
                vec![
                    nitro_trace::arg("event", kind),
                    nitro_trace::arg("version", &version),
                ],
            );
        }
    }

    /// The function this store tracks.
    pub fn function(&self) -> &str {
        &self.manifest.function
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest (versions, events, pointers).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The currently installed version, if any.
    pub fn latest(&self) -> Option<u64> {
        self.manifest.latest
    }

    /// Retained versions, ascending.
    pub fn versions(&self) -> &[StoredVersion] {
        &self.manifest.versions
    }

    fn version_path(&self, version: u64) -> PathBuf {
        self.dir.join(format!("v{version:06}.model.json"))
    }

    fn save_manifest(&self) -> Result<()> {
        let json = serde_json::to_string_pretty(&self.manifest)?;
        self.retried_write(&self.dir.join("manifest.json"), json.as_bytes())
    }

    /// Publish an artifact as the next version and move `latest` to it.
    /// The artifact file lands atomically *before* the manifest points
    /// at it, so a crash in between leaves the store on the prior
    /// version with an invisible orphan file.
    pub fn publish(&mut self, artifact: &ModelArtifact, note: &str) -> Result<u64> {
        if artifact.function != self.manifest.function {
            return Err(NitroError::ModelMismatch {
                detail: format!(
                    "artifact is for '{}', store is for '{}'",
                    artifact.function, self.manifest.function
                ),
            });
        }
        let version = self.manifest.next_version;
        let json = artifact.to_json()?;
        let bytes = json.as_bytes();
        self.retried_write(&self.version_path(version), bytes)?;
        // Mutate the in-memory manifest only after the artifact landed,
        // and restore the snapshot if persisting the manifest fails —
        // otherwise a failed publish leaves `latest` pointing at a
        // version the on-disk manifest never adopted.
        let snapshot = self.manifest.clone();
        self.manifest.versions.push(StoredVersion {
            version,
            crc: crc32(bytes),
            bytes: bytes.len() as u64,
            note: note.to_string(),
        });
        self.manifest.next_version += 1;
        self.manifest.latest = Some(version);
        self.manifest
            .push_event("publish", Some(version), note.to_string());
        if let Err(e) = self.save_manifest() {
            self.manifest = snapshot;
            return Err(e);
        }
        self.note_event("publish", Some(version));
        Ok(version)
    }

    /// Read and verify one version's bytes. Checksum failures and
    /// missing files come back as `Err` diagnostics — the caller never
    /// sees corrupt bytes.
    fn read_verified(&self, version: u64) -> std::result::Result<String, Diagnostic> {
        let f = &self.manifest.function;
        let Some(entry) = self.manifest.entry(version) else {
            return Err(diag_version_gap(f, version, "is not in the manifest"));
        };
        let path = self.version_path(version);
        let policy = self.fs_policy.as_deref();
        let (read, attempts) = self
            .retry
            .run(path_salt(&path), false, || fs_read(&path, policy));
        let bytes = read.map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                diag_version_gap(f, version, &format!("file is missing ({e})"))
            } else {
                diag_retry_exhausted(
                    &path.display().to_string(),
                    "read",
                    attempts,
                    &e.to_string(),
                )
            }
        })?;
        let actual = crc32(&bytes);
        if actual != entry.crc {
            return Err(diag_version_checksum(f, version, entry.crc, actual));
        }
        String::from_utf8(bytes).map_err(|_| diag_version_checksum(f, version, entry.crc, actual))
    }

    /// Load one version, verifying its checksum. A corrupt or missing
    /// version is [`NitroError::Audit`] with the `NITRO071`/`NITRO072`
    /// finding — it is never parsed, let alone installed.
    pub fn load(&self, version: u64) -> Result<ModelArtifact> {
        match self.read_verified(version) {
            Ok(json) => ModelArtifact::from_json(&json),
            Err(diag) => {
                self.note_event("corrupt", Some(version));
                Err(NitroError::Audit {
                    diagnostics: vec![diag],
                })
            }
        }
    }

    /// Load the `latest` version (`Ok(None)` on an empty store).
    pub fn load_latest(&self) -> Result<Option<ModelArtifact>> {
        match self.manifest.latest {
            None => Ok(None),
            Some(v) => self.load(v).map(Some),
        }
    }

    /// Load the newest *intact* version at or below `latest`, walking
    /// back past corrupt or missing ones. Returns the loaded pair plus
    /// the findings for every broken version skipped on the way — so a
    /// degraded host can keep serving the best surviving model while
    /// the damage is reported.
    pub fn load_latest_intact(&self) -> (Option<(u64, ModelArtifact)>, Vec<Diagnostic>) {
        let mut diagnostics = Vec::new();
        let Some(latest) = self.manifest.latest else {
            return (None, diagnostics);
        };
        let mut candidates: Vec<u64> = self
            .manifest
            .versions
            .iter()
            .map(|v| v.version)
            .filter(|&v| v <= latest)
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for version in candidates {
            match self.read_verified(version) {
                Ok(json) => match ModelArtifact::from_json(&json) {
                    Ok(artifact) => return (Some((version, artifact)), diagnostics),
                    Err(e) => diagnostics.push(diag_version_gap(
                        &self.manifest.function,
                        version,
                        &format!("passes its checksum but does not parse ({e})"),
                    )),
                },
                Err(diag) => {
                    self.note_event("corrupt", Some(version));
                    diagnostics.push(diag);
                }
            }
        }
        (None, diagnostics)
    }

    /// Move `latest` back (or forward) to an existing *intact* version.
    /// Refuses to point at a corrupt one.
    pub fn rollback(&mut self, to: u64) -> Result<()> {
        if let Err(diag) = self.read_verified(to) {
            return Err(NitroError::Audit {
                diagnostics: vec![diag],
            });
        }
        let from = self.manifest.latest;
        let snapshot = self.manifest.clone();
        self.manifest.latest = Some(to);
        self.manifest.push_event(
            "rollback",
            Some(to),
            format!(
                "latest {} -> v{to}",
                from.map_or_else(|| "(none)".into(), |v| format!("v{v}"))
            ),
        );
        if let Err(e) = self.save_manifest() {
            self.manifest = snapshot;
            return Err(e);
        }
        self.note_event("rollback", Some(to));
        Ok(())
    }

    /// Retention GC: drop the oldest versions beyond the newest `keep`,
    /// never dropping `latest`. Returns the versions removed.
    pub fn gc(&mut self, keep: usize) -> Result<Vec<u64>> {
        let keep = keep.max(1);
        if self.manifest.versions.len() <= keep {
            return Ok(Vec::new());
        }
        let cut = self.manifest.versions.len() - keep;
        let latest = self.manifest.latest;
        let snapshot = self.manifest.clone();
        let mut removed = Vec::new();
        let mut kept = Vec::new();
        for (i, v) in self.manifest.versions.drain(..).enumerate() {
            if i < cut && Some(v.version) != latest {
                removed.push(v.version);
            } else {
                kept.push(v);
            }
        }
        self.manifest.versions = kept;
        if !removed.is_empty() {
            let detail = format!(
                "removed {}",
                removed
                    .iter()
                    .map(|v| format!("v{v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            self.manifest.push_event("gc", None, detail);
            // Persist the shrunk manifest *before* deleting any file: a
            // failure here must not leave the manifest listing versions
            // whose files are gone.
            if let Err(e) = self.save_manifest() {
                self.manifest = snapshot;
                return Err(e);
            }
            for &version in &removed {
                std::fs::remove_file(self.version_path(version)).ok();
            }
            self.note_event("gc", None);
        }
        Ok(removed)
    }

    /// Verify every retained version against the manifest: missing
    /// files are `NITRO072`, checksum failures `NITRO071`, a dangling
    /// `latest` pointer `NITRO072`. Empty means the store is intact.
    pub fn verify(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for v in &self.manifest.versions {
            if let Err(diag) = self.read_verified(v.version) {
                out.push(diag);
            }
        }
        if let Some(latest) = self.manifest.latest {
            if self.manifest.entry(latest).is_none() {
                out.push(diag_version_gap(
                    &self.manifest.function,
                    latest,
                    "is the latest pointer but was GC'd or never published",
                ));
            }
        }
        out
    }

    /// Lower every readable retained version into tuning-graph
    /// [`nitro_audit::VersionNode`]s for the whole-configuration
    /// cross-version compatibility analysis (`NITRO085`). Versions that
    /// fail to load are skipped here — [`ArtifactStore::verify`] already
    /// reports them as `NITRO071`/`NITRO072` integrity findings.
    pub fn version_nodes(&self) -> Vec<nitro_audit::VersionNode> {
        self.manifest
            .versions
            .iter()
            .filter_map(|v| {
                let artifact = self.load(v.version).ok()?;
                Some(nitro_audit::VersionNode {
                    version: v.version,
                    is_latest: self.manifest.latest == Some(v.version),
                    function: artifact.function,
                    schema_version: artifact.schema_version,
                    variant_names: artifact.variant_names,
                    feature_names: artifact.feature_names,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::context::temp_model_dir;
    use nitro_core::{ModelArtifact, TuningPolicy, MODEL_SCHEMA_VERSION};
    use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};

    fn artifact(function: &str, shift: f64) -> ModelArtifact {
        let data = Dataset::from_parts(
            vec![
                vec![0.0 + shift],
                vec![1.0 + shift],
                vec![2.0 + shift],
                vec![3.0 + shift],
            ],
            vec![0, 0, 1, 1],
        );
        let model = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(1.0),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: function.into(),
            variant_names: vec!["a".into(), "b".into()],
            feature_names: vec!["x".into()],
            policy: TuningPolicy::default(),
            model,
        }
    }

    #[test]
    fn version_nodes_lower_the_manifest_for_the_deep_pass() {
        let root = temp_model_dir("store-vn").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        assert!(store.version_nodes().is_empty());
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        let mut second = artifact("toy", 1.0);
        second.feature_names = vec!["x".into(), "extra".into()];
        store.publish(&second, "retrain").unwrap();

        let nodes = store.version_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].version, 1);
        assert!(!nodes[0].is_latest);
        assert_eq!(nodes[0].feature_names, vec!["x".to_string()]);
        assert_eq!(nodes[1].version, 2);
        assert!(nodes[1].is_latest);
        assert_eq!(nodes[1].function, "toy");
        assert_eq!(nodes[1].schema_version, MODEL_SCHEMA_VERSION);
        assert_eq!(nodes[1].feature_names.len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn publish_load_and_latest_round_trip() {
        let root = temp_model_dir("store-rt").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let v1 = store.publish(&artifact("toy", 0.0), "tune").unwrap();
        let v2 = store.publish(&artifact("toy", 1.0), "retrain").unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(store.latest(), Some(2));
        assert_eq!(store.load(1).unwrap(), artifact("toy", 0.0));
        assert_eq!(store.load_latest().unwrap().unwrap(), artifact("toy", 1.0));
        // Reopen: the manifest persists everything.
        let store = ArtifactStore::open(&root, "toy").unwrap();
        assert_eq!(store.latest(), Some(2));
        assert_eq!(store.versions().len(), 2);
        assert!(store.verify().is_empty());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn wrong_function_is_rejected() {
        let root = temp_model_dir("store-wrongfn").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        assert!(store.publish(&artifact("other", 0.0), "tune").is_err());
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        // Reopening under the right name works.
        assert!(ArtifactStore::open(&root, "toy").is_ok());
        // A directory whose manifest names a different function is
        // refused rather than silently adopted.
        std::fs::create_dir_all(root.join("evil")).unwrap();
        std::fs::copy(
            root.join("toy").join("manifest.json"),
            root.join("evil").join("manifest.json"),
        )
        .unwrap();
        assert!(ArtifactStore::open(&root, "evil").is_err());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn corrupt_version_is_detected_and_never_loaded() {
        let root = temp_model_dir("store-corrupt").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        store.publish(&artifact("toy", 1.0), "retrain").unwrap();
        // Flip one bit in v2's file.
        let path = store.version_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = store.load(2).unwrap_err();
        assert!(err.to_string().contains("NITRO071"), "{err}");
        let diags = store.verify();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO071");
        // load_latest_intact falls back to v1 and reports the damage.
        let (loaded, diags) = store.load_latest_intact();
        let (version, art) = loaded.unwrap();
        assert_eq!(version, 1);
        assert_eq!(art, artifact("toy", 0.0));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "NITRO071");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn truncated_version_is_detected() {
        let root = temp_model_dir("store-trunc").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        let path = store.version_path(1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = store.load(1).unwrap_err();
        assert!(err.to_string().contains("NITRO071"), "{err}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn missing_version_file_is_a_gap() {
        let root = temp_model_dir("store-gap").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        std::fs::remove_file(store.version_path(1)).unwrap();
        let err = store.load(1).unwrap_err();
        assert!(err.to_string().contains("NITRO072"), "{err}");
        assert_eq!(store.verify()[0].code, "NITRO072");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn rollback_moves_latest_and_refuses_corrupt_targets() {
        let root = temp_model_dir("store-rollback").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        store.publish(&artifact("toy", 1.0), "retrain").unwrap();
        store.rollback(1).unwrap();
        assert_eq!(store.latest(), Some(1));
        assert_eq!(store.load_latest().unwrap().unwrap(), artifact("toy", 0.0));
        assert!(store.rollback(7).is_err());
        // Corrupt v2, then refuse to roll "back" onto it.
        let path = store.version_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.rollback(2).is_err());
        assert_eq!(store.latest(), Some(1));
        let kinds: Vec<&str> = store
            .manifest()
            .events
            .iter()
            .map(|e| e.kind.as_str())
            .collect();
        assert_eq!(kinds, vec!["publish", "publish", "rollback"]);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_keeps_newest_and_latest() {
        let root = temp_model_dir("store-gc").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        for i in 0..5 {
            store.publish(&artifact("toy", i as f64), "tune").unwrap();
        }
        store.rollback(1).unwrap(); // latest = v1, the oldest
        let removed = store.gc(2).unwrap();
        assert_eq!(removed, vec![2, 3]);
        let kept: Vec<u64> = store.versions().iter().map(|v| v.version).collect();
        assert_eq!(kept, vec![1, 4, 5]);
        assert!(store.load(1).is_ok(), "latest must survive gc");
        assert!(store.load(2).is_err());
        assert!(store.verify().is_empty());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn publish_rides_out_transient_faults_and_stays_intact() {
        use nitro_core::{ChaosFs, RetryPolicy};
        let root = temp_model_dir("store-chaos-flaky").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.set_retry(RetryPolicy {
            max_attempts: 16,
            backoff_base_ns: 10,
            ..RetryPolicy::default()
        });
        // A mix of torn writes, ENOSPC and failed renames, none
        // permanent: every publish eventually lands, and nothing a
        // reader can observe is ever torn.
        store.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(3, 0.2, 0.2, 0.1, 0.2))));
        for i in 0..4u32 {
            let v = store
                .publish(&artifact("toy", f64::from(i)), "tune")
                .unwrap();
            assert_eq!(v, u64::from(i) + 1);
        }
        assert_eq!(store.latest(), Some(4));
        // Verification reads also pass through the (flaky) seam.
        assert!(store.verify().is_empty());
        // The store reopens clean with no policy attached.
        let clean = ArtifactStore::open(&root, "toy").unwrap();
        assert!(clean.verify().is_empty());
        assert_eq!(clean.load_latest().unwrap().unwrap(), artifact("toy", 3.0));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn exhausted_publish_is_typed_and_leaves_the_store_consistent() {
        use nitro_core::{ChaosFs, RetryPolicy};
        let root = temp_model_dir("store-chaos-bricked").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        store.set_retry(RetryPolicy {
            max_attempts: 3,
            backoff_base_ns: 0,
            ..RetryPolicy::default()
        });
        // Probability-1 ENOSPC: the budget exhausts, typed as NITRO113,
        // and the in-memory manifest snaps back to the published state.
        store.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(7, 0.0, 1.0, 0.0, 0.0))));
        let err = store.publish(&artifact("toy", 1.0), "retrain").unwrap_err();
        assert!(err.to_string().contains("NITRO113"), "{err}");
        assert_eq!(store.latest(), Some(1));
        assert_eq!(store.versions().len(), 1);
        store.set_fs_policy(None);
        assert!(store.verify().is_empty());
        assert_eq!(store.load_latest().unwrap().unwrap(), artifact("toy", 0.0));
        // On-disk state agrees: reopening sees only the first publish.
        let reopened = ArtifactStore::open(&root, "toy").unwrap();
        assert_eq!(reopened.latest(), Some(1));
        assert_eq!(reopened.versions().len(), 1);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn permanent_read_faults_surface_as_retry_exhaustion() {
        use nitro_core::{ChaosFs, RetryPolicy};
        let root = temp_model_dir("store-chaos-read").unwrap();
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        store.set_retry(RetryPolicy {
            max_attempts: 3,
            backoff_base_ns: 0,
            ..RetryPolicy::default()
        });
        store.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(5, 0.0, 0.0, 1.0, 0.0))));
        let err = store.load(1).unwrap_err();
        assert!(err.to_string().contains("NITRO113"), "{err}");
        // load_latest_intact degrades gracefully: nothing intact under a
        // total read outage, and the damage is reported, not hidden.
        let (loaded, diags) = store.load_latest_intact();
        assert!(loaded.is_none());
        assert!(diags.iter().any(|d| d.code == "NITRO113"), "{diags:?}");
        // Clearing the policy restores the store untouched.
        store.set_fs_policy(None);
        assert!(store.verify().is_empty());
        assert_eq!(store.load_latest().unwrap().unwrap(), artifact("toy", 0.0));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn store_metrics_reach_the_tracer() {
        let root = temp_model_dir("store-metrics").unwrap();
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(64));
        let tracer = nitro_trace::Tracer::new(sink);
        let mut store = ArtifactStore::open(&root, "toy").unwrap();
        store.attach_tracer(tracer.clone());
        store.publish(&artifact("toy", 0.0), "tune").unwrap();
        store.publish(&artifact("toy", 1.0), "retrain").unwrap();
        store.rollback(1).unwrap();
        let m = tracer.metrics();
        assert_eq!(m.counter("store.toy.publish"), Some(2));
        assert_eq!(m.counter("store.toy.rollback"), Some(1));
        assert_eq!(m.counter("store.toy.gc"), Some(0));
        std::fs::remove_dir_all(root).ok();
    }
}
