//! Durability and lifecycle diagnostics (`NITRO070`–`NITRO075`).
//!
//! Like the guard's `NITRO05x` resilience analyzers, these live above
//! `nitro-audit` in the crate graph: the constructors are here, next to
//! the subsystems that detect the conditions, and the codes are
//! documented centrally in `nitro_core::diag`.
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | `NITRO070` | warning | torn tuning journal (crash mid-append); recovered by truncating to the last valid record |
//! | `NITRO071` | warning/error | checksum mismatch — journal line (warning, truncated) or stored artifact version (error, never installed) |
//! | `NITRO072` | error | artifact-store version gap: a manifest-listed version's file is missing |
//! | `NITRO073` | warning | stale candidate: shadow window did not fill before `max_candidate_age` observations; candidate demoted |
//! | `NITRO074` | warning | post-promotion regression: probation window regressed, promotion auto-rolled back |
//! | `NITRO075` | error | rollback storm: repeated auto-rollbacks; promotions held until an operator intervenes |
//! | `NITRO113` | error | filesystem retry budget exhausted: a transient-looking fault persisted and is surfaced as permanent |

use nitro_core::diag::registry::codes;
use nitro_core::Diagnostic;

/// `NITRO070`: a torn journal tail, recovered by truncation.
pub fn diag_torn_journal(journal: &str, offset: usize, reason: &str) -> Diagnostic {
    Diagnostic::warning(
        codes::NITRO070,
        journal,
        format!("torn journal at byte {offset} ({reason}); truncated to last valid record"),
    )
}

/// `NITRO071` (journal form): a structurally intact journal line whose
/// body fails its CRC-32. The line and everything after it are
/// truncated.
pub fn diag_journal_checksum(journal: &str, offset: usize, stored: u32, actual: u32) -> Diagnostic {
    Diagnostic::warning(
        codes::NITRO071,
        journal,
        format!(
            "journal line at byte {offset} fails its checksum (stored {stored:08x}, computed {actual:08x}); truncated from there"
        ),
    )
}

/// `NITRO071` (store form): a stored artifact version whose bytes fail
/// the manifest's CRC-32. The version is never loaded or installed.
pub fn diag_version_checksum(function: &str, version: u64, stored: u32, actual: u32) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO071,
        function,
        format!(
            "stored version v{version} fails its checksum (manifest {stored:08x}, computed {actual:08x}); refusing to load it"
        ),
    )
}

/// `NITRO072`: a version the manifest lists has no file on disk (or the
/// `latest` pointer dangles).
pub fn diag_version_gap(function: &str, version: u64, detail: &str) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO072,
        function,
        format!("version gap: v{version} {detail}"),
    )
}

/// `NITRO073`: a candidate aged out before its shadow window filled.
pub fn diag_stale_candidate(function: &str, observed: u64, needed: u64, age: u64) -> Diagnostic {
    Diagnostic::warning(
        codes::NITRO073,
        function,
        format!(
            "stale candidate: only {observed}/{needed} shadow observations after {age} calls; demoting it"
        ),
    )
}

/// `NITRO074`: a promoted model regressed during probation and was
/// automatically rolled back.
pub fn diag_rollback(function: &str, promoted: f64, incumbent: f64, tolerance: f64) -> Diagnostic {
    Diagnostic::warning(
        codes::NITRO074,
        function,
        format!(
            "post-promotion regression: mean chosen cost {promoted:.4} vs prior {incumbent:.4} (tolerance {:.1}%); rolled back",
            tolerance * 100.0
        ),
    )
}

/// `NITRO075`: repeated auto-rollbacks tripped the storm breaker;
/// promotions are held.
pub fn diag_rollback_storm(function: &str, rollbacks: u64, threshold: u64) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO075,
        function,
        format!(
            "rollback storm: {rollbacks} auto-rollbacks (threshold {threshold}); holding all promotions until release_hold()"
        ),
    )
}

/// `NITRO113`: a bounded retry rode out as many transient I/O faults as
/// its budget allowed and the fault persisted — surfaced as permanent
/// instead of looping forever.
pub fn diag_retry_exhausted(
    subject: &str,
    op: &str,
    attempts: u32,
    last_error: &str,
) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO113,
        subject,
        format!(
            "filesystem retry budget exhausted: {op} still failing after {attempts} attempt(s); last error: {last_error}"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::Severity;

    #[test]
    fn codes_and_severities_match_the_table() {
        assert_eq!(diag_torn_journal("j", 0, "r").code, "NITRO070");
        assert_eq!(diag_torn_journal("j", 0, "r").severity, Severity::Warning);
        assert_eq!(diag_journal_checksum("j", 0, 1, 2).code, "NITRO071");
        assert_eq!(
            diag_journal_checksum("j", 0, 1, 2).severity,
            Severity::Warning
        );
        assert_eq!(diag_version_checksum("f", 1, 1, 2).code, "NITRO071");
        assert_eq!(
            diag_version_checksum("f", 1, 1, 2).severity,
            Severity::Error
        );
        assert_eq!(diag_version_gap("f", 1, "x").code, "NITRO072");
        assert_eq!(diag_version_gap("f", 1, "x").severity, Severity::Error);
        assert_eq!(diag_stale_candidate("f", 1, 2, 3).code, "NITRO073");
        assert_eq!(diag_rollback("f", 1.0, 1.0, 0.05).code, "NITRO074");
        assert_eq!(diag_rollback_storm("f", 3, 3).code, "NITRO075");
        assert_eq!(diag_rollback_storm("f", 3, 3).severity, Severity::Error);
        assert_eq!(diag_retry_exhausted("p", "o", 4, "e").code, "NITRO113");
        assert_eq!(
            diag_retry_exhausted("p", "o", 4, "e").severity,
            Severity::Error
        );
    }

    #[test]
    fn messages_carry_the_load_bearing_numbers() {
        let d = diag_version_checksum("spmv", 4, 0xAABBCCDD, 0x11223344);
        assert!(d.message.contains("v4"));
        assert!(d.message.contains("aabbccdd"));
        assert!(d.message.contains("11223344"));
        let s = diag_rollback_storm("spmv", 5, 3);
        assert!(s.message.contains('5'));
        assert!(s.message.contains('3'));
    }
}
