//! # nitro-store — durability and model lifecycle for Nitro
//!
//! The paper's workflow is offline: tune once, emit a model, use it
//! forever. This crate adds the operational layer a production tuner
//! needs, in three parts:
//!
//! * **[`TuningJournal`]** — an append-only, CRC-checksummed JSONL
//!   write-ahead log of profiling work. `Autotuner::tune_durable` (in
//!   `nitro-tuner`) appends every per-`(input × variant)` cell as it is
//!   measured; after a crash it replays the journal, re-profiles only
//!   the missing cells and produces an artifact **bit-identical** to an
//!   uninterrupted run. Torn tails are truncated (`NITRO070`), bit rot
//!   is caught by checksum (`NITRO071`).
//!
//! * **[`ArtifactStore`]** — monotonic, checksummed model versions with
//!   atomic installs. Every load verifies the manifest's CRC-32; a
//!   corrupt or truncated version is reported (`NITRO071`/`NITRO072`)
//!   and never installed, and [`ArtifactStore::load_latest_intact`]
//!   serves the newest surviving version instead. `latest` moves back
//!   only through an explicit [`ArtifactStore::rollback`]; retention GC
//!   never collects the serving version.
//!
//! * **[`StagedPromotion`]** — retrained models shadow-predict against
//!   the incumbent over a configurable window and are promoted only
//!   when no worse ([`RegretLedger`](nitro_trace::RegretLedger)-scored);
//!   a post-promotion probation window auto-rolls back regressions
//!   (`NITRO074`) and repeated rollbacks trip a storm breaker
//!   (`NITRO075`).
//!
//! Diagnostics `NITRO070`–`NITRO075` are defined in [`mod@audit`]; the
//! code ranges are documented centrally in `nitro_core::diag`.

#![warn(missing_docs)]

pub mod audit;
pub mod journal;
pub mod promote;
pub mod store;

pub use journal::{
    CellValue, JournalHeader, JournalRecord, JournalReplay, TuningJournal, JOURNAL_FORMAT_VERSION,
};
pub use promote::{LifecycleEvent, PromotionPolicy, PromotionStage, StagedPromotion};
pub use store::{ArtifactStore, Manifest, StoreEvent, StoredVersion};
