//! Matrix features: the meta-information SpMV and the solvers tune on.
//!
//! SpMV uses 5 features (paper Figure 4): average nonzeros per row, the
//! row-length standard deviation, the deviation of the longest row from
//! the average, and the DIA / ELL fill-in estimates. The Solvers
//! benchmark uses 8 numerical features after Bhowmick et al.: NNZ, NRows,
//! Trace, DiagAvg, DiagVar, DiagDominance, LBw (left bandwidth) and
//! Norm1.

use crate::csr::CsrMatrix;

/// Average nonzeros per row (`AvgNZPerRow`).
pub fn avg_nz_per_row(m: &CsrMatrix) -> f64 {
    if m.n_rows == 0 {
        return 0.0;
    }
    m.nnz() as f64 / m.n_rows as f64
}

/// Standard deviation of row lengths (`RL-SD`).
pub fn row_length_sd(m: &CsrMatrix) -> f64 {
    if m.n_rows == 0 {
        return 0.0;
    }
    let avg = avg_nz_per_row(m);
    let var = (0..m.n_rows)
        .map(|r| {
            let d = m.row_len(r) as f64 - avg;
            d * d
        })
        .sum::<f64>()
        / m.n_rows as f64;
    var.sqrt()
}

/// Deviation of the longest row from the average row length
/// (`MaxDeviation`).
pub fn max_row_deviation(m: &CsrMatrix) -> f64 {
    let max = (0..m.n_rows).map(|r| m.row_len(r)).max().unwrap_or(0);
    (max as f64 - avg_nz_per_row(m)).max(0.0)
}

/// DIA storage fill-in estimate (`DIA-Fill`): `n_diags × n_rows / nnz`.
pub fn dia_fill(m: &CsrMatrix) -> f64 {
    if m.nnz() == 0 {
        return f64::INFINITY;
    }
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..m.n_rows {
        let (cols, _) = m.row(r);
        for &c in cols {
            seen.insert(c as i64 - r as i64);
        }
    }
    (seen.len() * m.n_rows) as f64 / m.nnz() as f64
}

/// ELL storage fill-in estimate (`ELL-Fillin`): `max_row_len × n_rows / nnz`.
pub fn ell_fill(m: &CsrMatrix) -> f64 {
    if m.nnz() == 0 {
        return f64::INFINITY;
    }
    let max = (0..m.n_rows).map(|r| m.row_len(r)).max().unwrap_or(0);
    (max * m.n_rows) as f64 / m.nnz() as f64
}

/// Matrix trace (`Trace`).
pub fn trace(m: &CsrMatrix) -> f64 {
    (0..m.n_rows.min(m.n_cols)).map(|r| m.diag(r)).sum()
}

/// Mean absolute diagonal entry (`DiagAvg`).
pub fn diag_avg(m: &CsrMatrix) -> f64 {
    let n = m.n_rows.min(m.n_cols);
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|r| m.diag(r).abs()).sum::<f64>() / n as f64
}

/// Variance of the diagonal entries (`DiagVar`).
pub fn diag_var(m: &CsrMatrix) -> f64 {
    let n = m.n_rows.min(m.n_cols);
    if n == 0 {
        return 0.0;
    }
    let mean = (0..n).map(|r| m.diag(r)).sum::<f64>() / n as f64;
    (0..n)
        .map(|r| {
            let d = m.diag(r) - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64
}

/// Fraction of rows that are diagonally dominant (`DiagDominance`):
/// `|a_rr| ≥ Σ_{c≠r} |a_rc|`.
pub fn diag_dominance(m: &CsrMatrix) -> f64 {
    if m.n_rows == 0 {
        return 0.0;
    }
    let dominant = (0..m.n_rows)
        .filter(|&r| {
            let (cols, vals) = m.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            diag >= off
        })
        .count();
    dominant as f64 / m.n_rows as f64
}

/// Left bandwidth (`LBw`): the largest `row − col` over stored entries.
pub fn left_bandwidth(m: &CsrMatrix) -> f64 {
    let mut bw = 0i64;
    for r in 0..m.n_rows {
        let (cols, _) = m.row(r);
        if let Some(&c) = cols.first() {
            bw = bw.max(r as i64 - c as i64);
        }
    }
    bw.max(0) as f64
}

/// Matrix 1-norm (`Norm1`): maximum absolute column sum.
pub fn norm1(m: &CsrMatrix) -> f64 {
    let mut col_sums = vec![0.0f64; m.n_cols];
    for r in 0..m.n_rows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            col_sums[c as usize] += v.abs();
        }
    }
    col_sums.into_iter().fold(0.0, f64::max)
}

/// Simulated feature-evaluation cost models (nanoseconds on the variant
/// clock), used by the Figure-8 overhead analysis. Cheap O(1) features
/// read metadata; expensive ones scan rows or every nonzero.
pub mod cost {
    use crate::csr::CsrMatrix;

    /// Per-element scan cost in ns (a CPU-side pass over the data).
    const SCAN_NS_PER_ELEM: f64 = 0.8;

    /// O(1): reads stored sizes only.
    pub fn constant(_m: &CsrMatrix) -> f64 {
        8.0
    }

    /// O(n_rows): row-pointer scan.
    pub fn per_row(m: &CsrMatrix) -> f64 {
        8.0 + m.n_rows as f64 * SCAN_NS_PER_ELEM
    }

    /// O(nnz): full nonzero scan.
    pub fn per_nnz(m: &CsrMatrix) -> f64 {
        8.0 + m.nnz() as f64 * SCAN_NS_PER_ELEM
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn matrix() -> CsrMatrix {
        // [ 2 -1  0  0]
        // [-1  2 -1  0]
        // [ 0 -1  2 -1]
        // [ 9  0 -1  2]   (entry (3,0) breaks the band)
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < 4 {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.push(3, 0, 9.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn row_statistics() {
        let m = matrix();
        assert!((avg_nz_per_row(&m) - 11.0 / 4.0).abs() < 1e-12);
        assert!(row_length_sd(&m) > 0.0);
        // Longest row has 3 entries.
        assert!((max_row_deviation(&m) - (3.0 - 2.75)).abs() < 1e-12);
    }

    #[test]
    fn fills_detect_band_break() {
        let m = matrix();
        // Offsets: -3 (the stray), -1, 0, +1 → 4 diags.
        assert!((dia_fill(&m) - 16.0 / 11.0).abs() < 1e-12);
        assert!((ell_fill(&m) - 12.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn numerical_features() {
        let m = matrix();
        assert_eq!(trace(&m), 8.0);
        assert_eq!(diag_avg(&m), 2.0);
        assert_eq!(diag_var(&m), 0.0);
        // Row 3: diag 2 < 9 + 1 = 10 → not dominant; others are.
        assert_eq!(diag_dominance(&m), 0.75);
        assert_eq!(left_bandwidth(&m), 3.0);
        // Column 0 sums |2| + |-1| + |9| = 12.
        assert_eq!(norm1(&m), 12.0);
    }

    #[test]
    fn empty_matrix_features_are_finite_or_flagged() {
        let m = CsrMatrix::from_coo(&CooMatrix::new(0, 0));
        assert_eq!(avg_nz_per_row(&m), 0.0);
        assert_eq!(row_length_sd(&m), 0.0);
        assert_eq!(diag_dominance(&m), 0.0);
        assert!(dia_fill(&m).is_infinite());
    }

    #[test]
    fn cost_models_scale_with_size() {
        let m = matrix();
        assert!(cost::constant(&m) < cost::per_row(&m));
        assert!(cost::per_row(&m) < cost::per_nnz(&m));
    }
}
