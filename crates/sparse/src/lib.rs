//! # nitro-sparse — sparse matrix substrate and the SpMV benchmark
//!
//! Everything the paper's SpMV experiment needs, built from scratch:
//!
//! * Formats: [`coo::CooMatrix`], [`csr::CsrMatrix`], [`dia::DiaMatrix`],
//!   [`ell::EllMatrix`] with verified conversions (the CUSP formats the
//!   paper tunes across).
//! * Kernels: [`spmv::spmv_csr_vector`], [`spmv::spmv_dia`],
//!   [`spmv::spmv_ell`] — each functionally correct on the CPU while
//!   charging a simulated Fermi-class GPU, in plain and texture-cached
//!   flavours (6 variants total, Figure 4).
//! * Features: the paper's five SpMV features and the eight solver
//!   features ([`features`]).
//! * Data: deterministic generators ([`gen`]), paper-sized train/test
//!   collections ([`collection`]) standing in for the UFL Sparse Matrix
//!   collection, and Matrix Market `.mtx` I/O ([`io`]) so external
//!   matrices can be tuned exactly as the paper's Figure-3 script does.
//! * The assembled tuned function: [`spmv::build_code_variant`] — the
//!   Rust analog of the paper's Figure 2 `MySparse` example.

#![warn(missing_docs)]

pub mod collection;
pub mod coo;
pub mod csr;
pub mod dia;
pub mod ell;
pub mod features;
pub mod gen;
pub mod io;
pub mod spmv;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use spmv::{build_code_variant, SpmvInput};
