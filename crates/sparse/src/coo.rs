//! Coordinate (COO) sparse matrix format.
//!
//! The paper's §II opens with the COO representation — one `(row, col,
//! value)` triple per nonzero — as the general-but-slow baseline whose
//! shortcomings motivate format-specialized SpMV variants.

/// A sparse matrix in coordinate (triplet) form.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Row index of each nonzero.
    pub rows: Vec<u32>,
    /// Column index of each nonzero.
    pub cols: Vec<u32>,
    /// Value of each nonzero.
    pub vals: Vec<f64>,
}

impl CooMatrix {
    /// Create an empty matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "entry ({row},{col}) out of bounds"
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Number of stored entries (may include duplicates until
    /// [`CooMatrix::sort_and_combine`]).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sort entries by (row, col) and sum duplicates.
    pub fn sort_and_combine(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals: Vec<f64> = Vec::with_capacity(self.nnz());
        for &i in &order {
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == self.rows[i] && lc == self.cols[i] {
                    *vals.last_mut().expect("parallel arrays") += self.vals[i];
                    continue;
                }
            }
            rows.push(self.rows[i]);
            cols.push(self.cols[i]);
            vals.push(self.vals[i]);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Reference SpMV: `y = A x`, the paper's introductory COO loop.
    ///
    /// # Panics
    /// Panics if `x` is shorter than `n_cols`.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols, "x too short");
        let mut y = vec![0.0; self.n_rows];
        for i in 0..self.nnz() {
            y[self.rows[i] as usize] += self.vals[i] * x[self.cols[i] as usize];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_spmv() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 1, 3.0);
        let y = m.spmv_reference(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn sort_and_combine_merges_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 3.0);
        m.sort_and_combine();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.rows, vec![0, 1]);
        assert_eq!(m.vals, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_checks_bounds() {
        CooMatrix::new(1, 1).push(0, 1, 1.0);
    }
}
