//! ELLPACK (ELL) format: fixed-width rows, column-major storage.
//!
//! ELL pads every row to the longest row's length; reads are perfectly
//! coalesced (thread-per-row marches down columns of the padded array) but
//! a single long row wastes storage and bandwidth for everyone — the
//! paper's `ELL-Fillin` feature quantifies that risk.

use crate::csr::CsrMatrix;

/// Sentinel column index for padding slots.
pub const ELL_PAD: u32 = u32::MAX;

/// A sparse matrix in ELL form.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Entries stored per row (the maximum CSR row length).
    pub width: usize,
    /// `cols[k * n_rows + r]`: column of row `r`'s `k`-th entry, or
    /// [`ELL_PAD`].
    pub cols: Vec<u32>,
    /// Values, same layout as `cols` (0 in padding slots).
    pub vals: Vec<f64>,
}

impl EllMatrix {
    /// Convert from CSR. Returns `None` when the padded storage would
    /// exceed `max_fill` times the true nonzero count.
    pub fn from_csr(csr: &CsrMatrix, max_fill: f64) -> Option<Self> {
        let width = (0..csr.n_rows).map(|r| csr.row_len(r)).max().unwrap_or(0);
        let cells = width * csr.n_rows;
        if csr.nnz() > 0 && cells as f64 > max_fill * csr.nnz() as f64 {
            return None;
        }
        let mut cols = vec![ELL_PAD; cells];
        let mut vals = vec![0.0; cells];
        for r in 0..csr.n_rows {
            let (rc, rv) = csr.row(r);
            for (k, (&c, &v)) in rc.iter().zip(rv).enumerate() {
                cols[k * csr.n_rows + r] = c;
                vals[k * csr.n_rows + r] = v;
            }
        }
        Some(Self {
            n_rows: csr.n_rows,
            n_cols: csr.n_cols,
            width,
            cols,
            vals,
        })
    }

    /// Fill ratio: padded cells over true nonzeros.
    pub fn fill_ratio(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            return f64::INFINITY;
        }
        (self.width * self.n_rows) as f64 / nnz as f64
    }

    /// Reference CPU SpMV: `y = A x`.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols, "x too short");
        let mut y = vec![0.0; self.n_rows];
        for k in 0..self.width {
            let base = k * self.n_rows;
            #[allow(clippy::needless_range_loop)] // r also offsets the diagonal arithmetic
            for r in 0..self.n_rows {
                let c = self.cols[base + r];
                if c != ELL_PAD {
                    y[r] += self.vals[base + r] * x[c as usize];
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn irregular() -> CsrMatrix {
        // Row lengths 1, 3, 2.
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(1, 3, 4.0);
        coo.push(2, 0, 5.0);
        coo.push(2, 3, 6.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn width_is_longest_row() {
        let e = EllMatrix::from_csr(&irregular(), 10.0).unwrap();
        assert_eq!(e.width, 3);
        assert!((e.fill_ratio(6) - 9.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = irregular();
        let ell = EllMatrix::from_csr(&csr, 10.0).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(csr.spmv_reference(&x), ell.spmv_reference(&x));
    }

    #[test]
    fn excessive_fill_rejected() {
        // One long row among many short ones.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for c in 0..n {
            coo.push(0, c, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        assert!(EllMatrix::from_csr(&csr, 2.0).is_none());
        assert!(EllMatrix::from_csr(&csr, 100.0).is_some());
    }

    #[test]
    fn column_major_layout() {
        let e = EllMatrix::from_csr(&irregular(), 10.0).unwrap();
        // k = 0 entries of each row occupy the first n_rows slots.
        assert_eq!(&e.cols[0..3], &[1, 0, 0]);
        assert_eq!(e.cols[3], ELL_PAD); // row 0 has no 2nd entry
    }
}
