//! Synthetic matrix collections standing in for the UFL Sparse Matrix
//! collection (paper §IV: 54 training and 100 test matrices, the test set
//! drawn as ~10 matrices from each of 9 groups plus 13 stencil matrices).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrMatrix;
use crate::gen;
use crate::spmv::SpmvInput;

/// The nine structural "groups" the synthetic collection spans.
pub const GROUPS: [&str; 9] = [
    "banded",
    "stencil2d",
    "stencil3d",
    "uniform",
    "power_law",
    "random",
    "clustered",
    "block_diag",
    "mixed",
];

/// Generate the `idx`-th matrix of a group, deterministically.
pub fn group_matrix(group: &str, idx: usize, seed: u64) -> CsrMatrix {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9) ^ hash(group));
    let n = rng.random_range(3_000..12_000);
    match group {
        "banded" => gen::banded(
            n,
            rng.random_range(2..8),
            rng.random_range(0.6..1.0),
            rng.random(),
        ),
        "stencil2d" => {
            let side = rng.random_range(55..110);
            gen::stencil_2d(side, side, rng.random_bool(0.5))
        }
        "stencil3d" => {
            let side = rng.random_range(14..22);
            gen::stencil_3d(side, side, side)
        }
        "uniform" => {
            let window = if rng.random_bool(0.5) {
                n
            } else {
                rng.random_range(64..512)
            };
            gen::uniform_rows(n, rng.random_range(4..24), window, rng.random())
        }
        "power_law" => gen::power_law(
            n,
            rng.random_range(4.0..16.0),
            rng.random_range(1.3..2.2),
            rng.random(),
        ),
        "random" => gen::random_uniform(n, rng.random_range(3..20), rng.random()),
        "clustered" => gen::clustered(
            n,
            rng.random_range(6..28),
            rng.random_range(32..128),
            rng.random(),
        ),
        "block_diag" => gen::block_diag(
            n,
            rng.random_range(8..48),
            rng.random_range(0.3..0.9),
            rng.random(),
        ),
        "mixed" => {
            // A banded core plus scattered noise: between the regimes.
            let base = gen::banded(n, rng.random_range(1..4), 1.0, rng.random());
            let noise = gen::power_law(n, rng.random_range(1.0..4.0), 1.8, rng.random());
            add(&base, &noise)
        }
        other => panic!("unknown group '{other}'"),
    }
}

/// Entrywise sum of two equally sized matrices.
fn add(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!((a.n_rows, a.n_cols), (b.n_rows, b.n_cols));
    let mut coo = crate::coo::CooMatrix::new(a.n_rows, a.n_cols);
    for m in [a, b] {
        for r in 0..m.n_rows {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c as usize, v);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// The SpMV training collection: 54 matrices, 6 per group (paper: 54
/// UFL training matrices chosen so every variant is well represented).
pub fn spmv_training_set(seed: u64) -> Vec<SpmvInput> {
    let mut out = Vec::with_capacity(54);
    for group in GROUPS {
        for idx in 0..6 {
            let m = group_matrix(group, idx, seed);
            out.push(SpmvInput::new(format!("train/{group}/{idx}"), group, m));
        }
    }
    out
}

/// The SpMV test collection: 100 matrices — ~10 per group minus a short
/// "williams"-style group, plus 13 stencil instances (paper §IV). Uses an
/// index offset so test instances never collide with training ones.
pub fn spmv_test_set(seed: u64) -> Vec<SpmvInput> {
    let mut out = Vec::with_capacity(100);
    for (g, group) in GROUPS.iter().enumerate() {
        // 10 each from 8 groups, 7 from the last ("williams has only 7").
        let count = if g == GROUPS.len() - 1 { 7 } else { 10 };
        for idx in 0..count {
            let m = group_matrix(group, 100 + idx, seed);
            out.push(SpmvInput::new(format!("test/{group}/{idx}"), *group, m));
        }
    }
    // 13 stencil-related matrices.
    for idx in 0..13 {
        let m = if idx % 2 == 0 {
            let side = 50 + idx * 7;
            gen::stencil_2d(side, side, idx % 4 == 0)
        } else {
            let side = 13 + idx;
            gen::stencil_3d(side, side, side)
        };
        out.push(SpmvInput::new(
            format!("test/stencil/{idx}"),
            "stencil_extra",
            m,
        ));
    }
    out
}

/// A miniature train/test pair for unit and integration tests: same group
/// structure, much smaller matrices.
pub fn spmv_small_sets(seed: u64) -> (Vec<SpmvInput>, Vec<SpmvInput>) {
    let groups = ["banded", "uniform", "power_law", "clustered"];
    let make = |tag: &str, idx_base: usize, count: usize| -> Vec<SpmvInput> {
        let mut v = Vec::new();
        for group in groups {
            for idx in 0..count {
                let mut rng = StdRng::seed_from_u64(seed ^ hash(group) ^ (idx_base + idx) as u64);
                // Large enough that format choice matters (launch overhead
                // dominates tiny matrices and collapses the labels).
                let n = rng.random_range(2_500..6_000);
                let m = match group {
                    "banded" => gen::banded(n, 4, 0.9, rng.random()),
                    "uniform" => gen::uniform_rows(n, 8, n, rng.random()),
                    "power_law" => gen::power_law(n, 8.0, 1.6, rng.random()),
                    _ => gen::clustered(n, 12, 48, rng.random()),
                };
                v.push(SpmvInput::new(format!("{tag}/{group}/{idx}"), group, m));
            }
        }
        v
    };
    (make("train", 0, 4), make("test", 50, 5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_has_paper_count() {
        let t = spmv_training_set(42);
        assert_eq!(t.len(), 54);
        // 6 per group.
        let banded = t.iter().filter(|i| i.group == "banded").count();
        assert_eq!(banded, 6);
    }

    #[test]
    fn test_set_has_paper_count() {
        let t = spmv_test_set(42);
        assert_eq!(t.len(), 100);
        let stencil_extra = t.iter().filter(|i| i.group == "stencil_extra").count();
        assert_eq!(stencil_extra, 13);
    }

    #[test]
    fn collections_are_deterministic() {
        let a = spmv_training_set(7);
        let b = spmv_training_set(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.csr, y.csr);
        }
    }

    #[test]
    fn train_and_test_do_not_collide() {
        let train = spmv_training_set(7);
        let test = spmv_test_set(7);
        for tr in &train {
            for te in &test {
                assert_ne!(tr.name, te.name);
            }
        }
        // Same group, different index space → different matrices.
        assert_ne!(train[0].csr, test[0].csr);
    }

    #[test]
    fn every_group_generates_valid_matrices() {
        for group in GROUPS {
            let m = group_matrix(group, 0, 1);
            assert!(m.n_rows > 0);
            assert!(m.nnz() > 0, "group {group} generated an empty matrix");
            // CSR invariant: sorted columns in each row.
            for r in 0..m.n_rows.min(50) {
                let (cols, _) = m.row(r);
                assert!(
                    cols.windows(2).all(|w| w[0] < w[1]),
                    "unsorted row in {group}"
                );
            }
        }
    }

    #[test]
    fn small_sets_are_small() {
        let (train, test) = spmv_small_sets(3);
        assert_eq!(train.len(), 16);
        assert_eq!(test.len(), 20);
        assert!(train.iter().all(|i| i.csr.n_rows < 6000));
    }
}
