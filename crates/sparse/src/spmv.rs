//! SpMV code variants on the simulated GPU.
//!
//! Six variants, mirroring the paper's CUSP set (Figure 4): CSR-Vector,
//! DIA and ELL kernels, each in a plain and a texture-cached ("Tx")
//! flavour that routes the `x`-vector gathers through the simulated
//! texture cache. Every kernel computes the *real* product `y = A x` on
//! the CPU while charging its memory traffic and divergence to the
//! [`nitro_simt`] device, so functional tests and cost behaviour come
//! from the same code.

use std::sync::OnceLock;

use nitro_core::{CodeVariant, Context, FnConstraint, FnFeature, FnVariant, Predicate};
use nitro_simt::{DeviceConfig, Gpu, Schedule};

use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::features;

/// DIA is vetoed when its storage would exceed this multiple of nnz
/// (the paper's `__dia_cutoff` constraint).
pub const DIA_FILL_CUTOFF: f64 = 12.0;
/// Hard cap on stored diagonals, independent of fill.
pub const MAX_DIAGS: usize = 512;
/// ELL is vetoed when padding exceeds this multiple of nnz.
pub const ELL_FILL_CUTOFF: f64 = 8.0;

/// One SpMV problem instance: a matrix, a dense vector, and lazily built
/// alternative formats.
#[derive(Debug)]
pub struct SpmvInput {
    /// Instance name (deterministic, used to seed simulation noise).
    pub name: String,
    /// Collection group the instance belongs to (mirrors UFL groups).
    pub group: String,
    /// The matrix in CSR form (the canonical representation).
    pub csr: CsrMatrix,
    /// The dense input vector.
    pub x: Vec<f64>,
    /// Seed for the simulated device's measurement noise.
    pub gpu_seed: u64,
    dia: OnceLock<Option<DiaMatrix>>,
    ell: OnceLock<Option<EllMatrix>>,
    dia_fill: OnceLock<f64>,
    ell_fill: OnceLock<f64>,
}

impl SpmvInput {
    /// Wrap a matrix as a named instance; `x` is derived deterministically
    /// from the name.
    pub fn new(name: impl Into<String>, group: impl Into<String>, csr: CsrMatrix) -> Self {
        let name = name.into();
        let gpu_seed = fnv1a(name.as_bytes());
        let mut state = gpu_seed | 1;
        let x = (0..csr.n_cols)
            .map(|_| {
                // xorshift64* — cheap deterministic fill.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                0.1 + (state % 1000) as f64 / 1000.0
            })
            .collect();
        Self {
            name,
            group: group.into(),
            csr,
            x,
            gpu_seed,
            dia: OnceLock::new(),
            ell: OnceLock::new(),
            dia_fill: OnceLock::new(),
            ell_fill: OnceLock::new(),
        }
    }

    /// The DIA form, if the matrix converts under [`MAX_DIAGS`].
    pub fn dia(&self) -> Option<&DiaMatrix> {
        self.dia
            .get_or_init(|| DiaMatrix::from_csr(&self.csr, MAX_DIAGS))
            .as_ref()
    }

    /// The ELL form, if padding stays under [`ELL_FILL_CUTOFF`].
    pub fn ell(&self) -> Option<&EllMatrix> {
        self.ell
            .get_or_init(|| EllMatrix::from_csr(&self.csr, ELL_FILL_CUTOFF))
            .as_ref()
    }

    /// Cached DIA fill-in feature.
    pub fn dia_fill(&self) -> f64 {
        *self.dia_fill.get_or_init(|| features::dia_fill(&self.csr))
    }

    /// Cached ELL fill-in feature.
    pub fn ell_fill(&self) -> f64 {
        *self.ell_fill.get_or_init(|| features::ell_fill(&self.csr))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// CSR-Vector SpMV: one warp per row (CUSP's `csr_vector`). Returns the
/// product and the full launch statistics (time, energy, traffic).
pub fn spmv_csr_vector(
    m: &CsrMatrix,
    x: &[f64],
    gpu: &Gpu,
    textured: bool,
) -> (Vec<f64>, nitro_simt::LaunchStats) {
    let mut y = vec![0.0; m.n_rows];
    let mut addrs: Vec<u64> = Vec::new();
    let name = if textured {
        "spmv_csr_vector_tx"
    } else {
        "spmv_csr_vector"
    };
    let stats = gpu.launch(name, m.n_rows, Schedule::EvenShare, |r, ctx| {
        let (cols, vals) = m.row(r);
        let len = cols.len() as u64;
        // Streaming reads of the row's values and column indices.
        ctx.coalesced(len, 8);
        ctx.coalesced(len, 4);
        // Gather x[col] — the access whose locality the Tx variant exploits.
        addrs.clear();
        addrs.extend(cols.iter().map(|&c| c as u64 * 8));
        if textured {
            ctx.tex_gather(&addrs);
        } else {
            ctx.warp_gather(&addrs, 8);
        }
        // Multiply-accumulate, intra-warp reduction and loop overhead.
        let iters = len.div_ceil(32).max(1);
        ctx.charge_ops(2 * len + 5 + 4 * iters);
        // Write y[r].
        ctx.coalesced(1, 8);
        // Functional result.
        y[r] = cols
            .iter()
            .zip(vals)
            .map(|(&c, &v)| v * x[c as usize])
            .sum();
    });
    (y, stats)
}

/// Thread blocks use 256 threads for the thread-per-row kernels.
const ROWS_PER_BLOCK: usize = 256;

/// DIA SpMV: one thread per row marching across stored diagonals.
pub fn spmv_dia(
    m: &DiaMatrix,
    x: &[f64],
    gpu: &Gpu,
    textured: bool,
) -> (Vec<f64>, nitro_simt::LaunchStats) {
    let mut y = vec![0.0; m.n_rows];
    let blocks = m.n_rows.div_ceil(ROWS_PER_BLOCK);
    let name = if textured { "spmv_dia_tx" } else { "spmv_dia" };
    let mut addrs: Vec<u64> = Vec::new();
    let stats = gpu.launch(name, blocks, Schedule::EvenShare, |b, ctx| {
        let r0 = b * ROWS_PER_BLOCK;
        let r1 = (r0 + ROWS_PER_BLOCK).min(m.n_rows);
        let rows = (r1 - r0) as u64;
        for (d, &off) in m.offsets.iter().enumerate() {
            // Diagonal data is stored column-major: perfectly coalesced.
            ctx.coalesced(rows, 8);
            // x[r + off] is consecutive across threads: also coalesced —
            // DIA needs no gather at all, its defining advantage.
            if textured {
                addrs.clear();
                for r in r0..r1 {
                    let c = r as i64 + off;
                    if c >= 0 && (c as usize) < m.n_cols {
                        addrs.push(c as u64 * 8);
                    }
                }
                ctx.tex_gather(&addrs);
            } else {
                ctx.coalesced(rows, 8);
            }
            ctx.charge_ops(2 * rows);
            // Functional result for this block's slice of the diagonal.
            let base = d * m.n_rows;
            #[allow(clippy::needless_range_loop)] // r drives c = r + off too
            for r in r0..r1 {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < m.n_cols {
                    y[r] += m.data[base + r] * x[c as usize];
                }
            }
        }
        // Write y for the block.
        ctx.coalesced(rows, 8);
    });
    (y, stats)
}

/// ELL SpMV: one thread per row, column-major padded storage.
pub fn spmv_ell(
    m: &EllMatrix,
    x: &[f64],
    gpu: &Gpu,
    textured: bool,
) -> (Vec<f64>, nitro_simt::LaunchStats) {
    let mut y = vec![0.0; m.n_rows];
    let blocks = m.n_rows.div_ceil(ROWS_PER_BLOCK);
    let name = if textured { "spmv_ell_tx" } else { "spmv_ell" };
    let mut addrs: Vec<u64> = Vec::new();
    let stats = gpu.launch(name, blocks, Schedule::EvenShare, |b, ctx| {
        let r0 = b * ROWS_PER_BLOCK;
        let r1 = (r0 + ROWS_PER_BLOCK).min(m.n_rows);
        let rows = (r1 - r0) as u64;
        for k in 0..m.width {
            let base = k * m.n_rows;
            // Column indices and values, column-major: coalesced streams
            // (padding slots are read too — ELL's fill-in cost).
            ctx.coalesced(rows, 4);
            ctx.coalesced(rows, 8);
            // Gather x for the non-padding lanes, one warp at a time.
            for w0 in (r0..r1).step_by(32) {
                let w1 = (w0 + 32).min(r1);
                addrs.clear();
                for r in w0..w1 {
                    let c = m.cols[base + r];
                    if c != ELL_PAD {
                        addrs.push(c as u64 * 8);
                    }
                }
                if addrs.is_empty() {
                    continue;
                }
                if textured {
                    ctx.tex_gather(&addrs);
                } else {
                    ctx.warp_gather(&addrs, 8);
                }
            }
            ctx.charge_ops(2 * rows);
            // Functional result.
            #[allow(clippy::needless_range_loop)] // r indexes two parallel arrays
            for r in r0..r1 {
                let c = m.cols[base + r];
                if c != ELL_PAD {
                    y[r] += m.vals[base + r] * x[c as usize];
                }
            }
        }
        ctx.coalesced(rows, 8);
    });
    (y, stats)
}

/// Names of the six SpMV variants, in registration order.
pub const VARIANT_NAMES: [&str; 6] = ["CSR-Vec", "DIA", "ELL", "CSR-Vec-Tx", "DIA-Tx", "ELL-Tx"];

/// Which scalar a variant reports as its objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvMetric {
    /// Simulated elapsed nanoseconds (the default, as in the paper).
    Time,
    /// Estimated nanojoules — the paper's "other optimization criteria,
    /// for example, energy usage" (§II-B).
    Energy,
}

impl SpmvMetric {
    fn of(self, stats: &nitro_simt::LaunchStats) -> f64 {
        match self {
            SpmvMetric::Time => stats.elapsed_ns,
            SpmvMetric::Energy => stats.energy_nj,
        }
    }
}

/// Assemble the paper's SpMV `code_variant`: 6 variants, 5 features and
/// the DIA/ELL cutoff constraints, with CSR-Vector as the default.
///
/// This is the Rust analog of the `MySparse::SparseMatVec` setup code in
/// the paper's Figure 2.
pub fn build_code_variant(ctx: &Context, cfg: &DeviceConfig) -> CodeVariant<SpmvInput> {
    build_code_variant_metric(ctx, cfg, SpmvMetric::Time)
}

/// Like [`build_code_variant`], selecting which metric the variants
/// report. Energy-objective tuning uses `SpmvMetric::Energy`.
pub fn build_code_variant_metric(
    ctx: &Context,
    cfg: &DeviceConfig,
    metric: SpmvMetric,
) -> CodeVariant<SpmvInput> {
    let mut cv = CodeVariant::new("spmv", ctx);

    let gpu_for = |cfg: &DeviceConfig, inp: &SpmvInput, salt: u64| {
        Gpu::with_seed(cfg.clone(), inp.gpu_seed ^ salt)
    };

    let c = cfg.clone();
    cv.add_variant(FnVariant::new("CSR-Vec", move |inp: &SpmvInput| {
        metric.of(&spmv_csr_vector(&inp.csr, &inp.x, &gpu_for(&c, inp, 0x01), false).1)
    }));
    let c = cfg.clone();
    let dia_idx = cv.add_variant(FnVariant::new("DIA", move |inp: &SpmvInput| {
        match inp.dia() {
            Some(d) => metric.of(&spmv_dia(d, &inp.x, &gpu_for(&c, inp, 0x02), false).1),
            None => f64::INFINITY,
        }
    }));
    let c = cfg.clone();
    let ell_idx = cv.add_variant(FnVariant::new("ELL", move |inp: &SpmvInput| {
        match inp.ell() {
            Some(e) => metric.of(&spmv_ell(e, &inp.x, &gpu_for(&c, inp, 0x03), false).1),
            None => f64::INFINITY,
        }
    }));
    let c = cfg.clone();
    cv.add_variant(FnVariant::new("CSR-Vec-Tx", move |inp: &SpmvInput| {
        metric.of(&spmv_csr_vector(&inp.csr, &inp.x, &gpu_for(&c, inp, 0x04), true).1)
    }));
    let c = cfg.clone();
    let dia_tx_idx = cv.add_variant(FnVariant::new("DIA-Tx", move |inp: &SpmvInput| {
        match inp.dia() {
            Some(d) => metric.of(&spmv_dia(d, &inp.x, &gpu_for(&c, inp, 0x05), true).1),
            None => f64::INFINITY,
        }
    }));
    let c = cfg.clone();
    let ell_tx_idx = cv.add_variant(FnVariant::new("ELL-Tx", move |inp: &SpmvInput| {
        match inp.ell() {
            Some(e) => metric.of(&spmv_ell(e, &inp.x, &gpu_for(&c, inp, 0x06), true).1),
            None => f64::INFINITY,
        }
    }));

    cv.set_default(0); // CSR-Vec handles anything

    // The 5 features of Figure 4, with simulated evaluation costs.
    cv.add_input_feature(FnFeature::with_cost(
        "AvgNZPerRow",
        |i: &SpmvInput| features::avg_nz_per_row(&i.csr),
        |i: &SpmvInput| features::cost::constant(&i.csr),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "RL-SD",
        |i: &SpmvInput| features::row_length_sd(&i.csr),
        |i: &SpmvInput| features::cost::per_row(&i.csr),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "MaxDeviation",
        |i: &SpmvInput| features::max_row_deviation(&i.csr),
        |i: &SpmvInput| features::cost::per_row(&i.csr),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "DIA-Fill",
        |i: &SpmvInput| i.dia_fill().min(1e6),
        |i: &SpmvInput| features::cost::per_nnz(&i.csr),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "ELL-Fill",
        |i: &SpmvInput| i.ell_fill().min(1e6),
        |i: &SpmvInput| features::cost::per_row(&i.csr),
    ));

    // The paper's `__dia_cutoff`-style constraints, declared over the
    // registered features (DIA-Fill = 3, ELL-Fill = 4) so the
    // whole-configuration analyses can reason about them. The fill
    // cutoffs sit far below the feature's 1e6 clamp, so the predicate
    // over the clamped feature is equivalent to the raw bound.
    // Representability (a matrix can exceed MAX_DIAGS or the ELL width
    // cap with an in-cutoff fill estimate) depends on input shape, not
    // on any registered feature, and stays an opaque escape-hatch
    // constraint.
    cv.add_predicate_constraint(dia_idx, "dia_cutoff", Predicate::le(3, DIA_FILL_CUTOFF))
        .expect("DIA cutoff registers");
    cv.add_predicate_constraint(
        dia_tx_idx,
        "dia_cutoff_tx",
        Predicate::le(3, DIA_FILL_CUTOFF),
    )
    .expect("DIA-Tx cutoff registers");
    cv.add_predicate_constraint(ell_idx, "ell_cutoff", Predicate::le(4, ELL_FILL_CUTOFF))
        .expect("ELL cutoff registers");
    cv.add_predicate_constraint(
        ell_tx_idx,
        "ell_cutoff_tx",
        Predicate::le(4, ELL_FILL_CUTOFF),
    )
    .expect("ELL-Tx cutoff registers");
    let dia_ok = |i: &SpmvInput| i.dia().is_some();
    cv.add_constraint(dia_idx, FnConstraint::new("dia_representable", dia_ok))
        .expect("DIA representability registers");
    cv.add_constraint(
        dia_tx_idx,
        FnConstraint::new("dia_representable_tx", dia_ok),
    )
    .expect("DIA-Tx representability registers");
    let ell_ok = |i: &SpmvInput| i.ell().is_some();
    cv.add_constraint(ell_idx, FnConstraint::new("ell_representable", ell_ok))
        .expect("ELL representability registers");
    cv.add_constraint(
        ell_tx_idx,
        FnConstraint::new("ell_representable_tx", ell_ok),
    )
    .expect("ELL-Tx representability registers");

    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn quiet() -> Gpu {
        Gpu::new(DeviceConfig::fermi_c2050().noiseless())
    }

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn all_kernels_compute_the_same_product() {
        let csr = gen::banded(300, 3, 1.0, 5);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
        let reference = csr.spmv_reference(&x);
        let gpu = quiet();

        for textured in [false, true] {
            let (y, _) = spmv_csr_vector(&csr, &x, &gpu, textured);
            close(&reference, &y);
            let dia = DiaMatrix::from_csr(&csr, MAX_DIAGS).unwrap();
            let (y, _) = spmv_dia(&dia, &x, &gpu, textured);
            close(&reference, &y);
            let ell = EllMatrix::from_csr(&csr, ELL_FILL_CUTOFF).unwrap();
            let (y, _) = spmv_ell(&ell, &x, &gpu, textured);
            close(&reference, &y);
        }
    }

    #[test]
    fn dia_wins_on_banded_matrices() {
        let inp = SpmvInput::new("banded", "banded", gen::banded(6000, 4, 1.0, 7));
        let gpu = quiet();
        let (_, t_csr) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, false);
        let (_, t_dia) = spmv_dia(inp.dia().unwrap(), &inp.x, &gpu, false);
        assert!(t_dia.elapsed_ns < t_csr.elapsed_ns, "DIA vs CSR");
    }

    #[test]
    fn ell_beats_csr_on_uniform_rows() {
        let inp = SpmvInput::new("uni", "uniform", gen::uniform_rows(6000, 8, 6000, 9));
        let gpu = quiet();
        let (_, t_csr) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, false);
        let (_, t_ell) = spmv_ell(inp.ell().unwrap(), &inp.x, &gpu, false);
        assert!(t_ell.elapsed_ns < t_csr.elapsed_ns, "ELL vs CSR");
    }

    #[test]
    fn texture_helps_clustered_gathers() {
        let inp = SpmvInput::new("clu", "clustered", gen::clustered(8000, 16, 48, 11));
        let gpu = quiet();
        let (_, plain) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, false);
        let (_, tx) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, true);
        assert!(tx.elapsed_ns < plain.elapsed_ns, "Tx vs plain");
    }

    #[test]
    fn texture_hurts_random_gathers() {
        let inp = SpmvInput::new("rnd", "random", gen::power_law(8000, 10.0, 1.6, 13));
        let gpu = quiet();
        let (_, plain) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, false);
        let (_, tx) = spmv_csr_vector(&inp.csr, &inp.x, &gpu, true);
        assert!(
            tx.elapsed_ns > plain.elapsed_ns,
            "Tx should lose to plain on random columns"
        );
    }

    #[test]
    fn code_variant_registers_paper_inventory() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
        assert_eq!(cv.n_variants(), 6);
        assert_eq!(cv.n_features(), 5);
        assert_eq!(cv.variant_names(), VARIANT_NAMES.map(String::from).to_vec());
        assert_eq!(cv.default_variant(), Some(0));
    }

    #[test]
    fn constraints_veto_dia_on_scattered_matrices() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &DeviceConfig::fermi_c2050().noiseless());
        let scattered = SpmvInput::new("pl", "power_law", gen::power_law(2000, 8.0, 1.5, 3));
        assert!(
            !cv.constraints_satisfied(1, &scattered),
            "DIA should be vetoed"
        );
        let banded = SpmvInput::new("band", "banded", gen::banded(2000, 3, 1.0, 3));
        assert!(cv.constraints_satisfied(1, &banded));
    }

    #[test]
    fn variant_objective_is_positive_and_deterministic() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
        let inp = SpmvInput::new("det", "banded", gen::banded(1000, 2, 1.0, 1));
        let a = cv.run_variant(0, &inp);
        let b = cv.run_variant(0, &inp);
        assert!(a > 0.0);
        assert_eq!(a, b, "same input + seed must reproduce exactly");
    }
}
