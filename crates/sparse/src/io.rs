//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's tuning script (Figure 3) collects its training inputs with
//! `glob.glob("inputs/training/*.mtx")` — the UFL Sparse Matrix
//! collection ships in Matrix Market format. This module reads and writes
//! the `coordinate` flavour (the only one sparse collections use), with
//! `general`, `symmetric` and `skew-symmetric` symmetry and `real` /
//! `integer` / `pattern` fields.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Parse {
        /// 1-based line number where parsing failed (0 = header missing).
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "io error: {e}"),
            MtxError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> MtxError {
    MtxError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Symmetry declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Read a Matrix Market file from any buffered reader.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix, MtxError> {
    let mut lines = reader.lines().enumerate();

    // --- Header line ---
    let (hline_no, header) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (no + 1, line);
                }
            }
            None => return Err(parse_err(0, "empty file")),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(
            hline_no,
            "expected '%%MatrixMarket matrix ...' header",
        ));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(
            hline_no,
            format!("unsupported format '{}'", tokens[2]),
        ));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(hline_no, format!("unsupported field '{other}'"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(parse_err(
                hline_no,
                format!("unsupported symmetry '{other}'"),
            ))
        }
    };

    // --- Size line (after comments) ---
    let (sline_no, size_line) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (no + 1, line);
                }
            }
            None => return Err(parse_err(0, "missing size line")),
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(parse_err(sline_no, "size line must be 'rows cols nnz'"));
    }
    let n_rows: usize = dims[0]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad row count"))?;
    let n_cols: usize = dims[1]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad column count"))?;
    let nnz: usize = dims[2]
        .parse()
        .map_err(|_| parse_err(sline_no, "bad nnz count"))?;

    // --- Entries ---
    let mut coo = CooMatrix::new(n_rows, n_cols);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let expected = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() < expected {
            return Err(parse_err(no + 1, format!("expected {expected} fields")));
        }
        let r: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad row index"))?;
        let c: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(no + 1, "bad column index"))?;
        if r == 0 || c == 0 || r > n_rows || c > n_cols {
            return Err(parse_err(
                no + 1,
                "index out of range (Matrix Market is 1-based)",
            ));
        }
        let v: f64 = if field == Field::Pattern {
            1.0
        } else {
            parts[2]
                .parse()
                .map_err(|_| parse_err(no + 1, "bad value"))?
        };
        let (r, c) = (r - 1, c - 1);
        coo.push(r, c, v);
        // Expand symmetric storage (lower triangle given).
        if r != c {
            match symmetry {
                Symmetry::General => {}
                Symmetry::Symmetric => coo.push(c, r, v),
                Symmetry::SkewSymmetric => coo.push(c, r, -v),
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("header declared {nnz} entries, file has {seen}"),
        ));
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Read a `.mtx` file from disk.
pub fn read_mtx_file(path: impl AsRef<Path>) -> Result<CsrMatrix, MtxError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(std::io::BufReader::new(file))
}

/// Write a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% generated by nitro-sparse")?;
    writeln!(w, "{} {} {}", m.n_rows, m.n_cols, m.nnz())?;
    for r in 0..m.n_rows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {v:?}", r + 1, c + 1)?;
        }
    }
    w.flush()
}

/// Write a `.mtx` file to disk.
pub fn write_mtx_file(m: &CsrMatrix, path: impl AsRef<Path>) -> Result<(), MtxError> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(m, file)?;
    Ok(())
}

/// Export a collection of inputs as `.mtx` files into a directory —
/// lets external tools (or the real Nitro's Python scripts) consume the
/// synthetic collections. Returns the written paths.
pub fn export_collection(
    inputs: &[crate::spmv::SpmvInput],
    dir: impl AsRef<Path>,
) -> Result<Vec<std::path::PathBuf>, MtxError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(inputs.len());
    for input in inputs {
        let safe: String = input
            .name
            .chars()
            .map(|ch| if ch.is_alphanumeric() { ch } else { '_' })
            .collect();
        let path = dir.join(format!("{safe}.mtx"));
        write_mtx_file(&input.csr, &path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Load every `.mtx` file in a directory as an [`crate::spmv::SpmvInput`]
/// collection — the Rust analog of the paper's
/// `glob.glob("inputs/training/*.mtx")` (Figure 3). Files are loaded in
/// sorted order for determinism; the group is the directory name.
pub fn load_collection(dir: impl AsRef<Path>) -> Result<Vec<crate::spmv::SpmvInput>, MtxError> {
    let dir = dir.as_ref();
    let group = dir
        .file_name()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "mtx".into());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mtx"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let csr = read_mtx_file(&path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_default();
        out.push(crate::spmv::SpmvInput::new(name, group.clone(), csr));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<CsrMatrix, MtxError> {
        read_matrix_market(Cursor::new(s))
    }

    #[test]
    fn reads_general_real_matrix() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 4\n\
             1 1 2.5\n\
             2 2 -1.0\n\
             3 1 4.0\n\
             3 3 1e2\n",
        )
        .unwrap();
        assert_eq!((m.n_rows, m.n_cols, m.nnz()), (3, 3, 4));
        assert_eq!(m.diag(0), 2.5);
        assert_eq!(m.row(2).1, &[4.0, 100.0]);
    }

    #[test]
    fn expands_symmetric_storage() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             2 2 2\n\
             1 1 1.0\n\
             2 1 3.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 3);
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m.row(0).1, &[1.0, 3.0]);
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 1 5.0\n",
        )
        .unwrap();
        assert_eq!(m.row(0).1, &[-5.0]);
        assert_eq!(m.row(1).1, &[5.0]);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let m = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 3 2\n\
             1 3\n\
             2 1\n",
        )
        .unwrap();
        assert_eq!(m.row(0).1, &[1.0]);
        assert_eq!(m.n_cols, 3);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n").is_err());
        assert!(parse("not a header\n").is_err());
    }

    #[test]
    fn one_based_zero_index_rejected() {
        let r = parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n");
        assert!(matches!(r, Err(MtxError::Parse { .. })));
    }

    #[test]
    fn write_read_round_trip() {
        let original = crate::gen::clustered(60, 5, 16, 42);
        let mut buf = Vec::new();
        write_matrix_market(&original, &mut buf).unwrap();
        let back = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn collection_export_import_round_trip() {
        let dir = std::env::temp_dir().join(format!("nitro-mtx-{}", std::process::id()));
        let inputs = vec![
            crate::spmv::SpmvInput::new("a/one", "t", crate::gen::banded(30, 2, 1.0, 1)),
            crate::spmv::SpmvInput::new("b/two", "t", crate::gen::random_uniform(25, 3, 2)),
        ];
        let paths = export_collection(&inputs, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        let loaded = load_collection(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by filename: a_one then b_two.
        assert_eq!(loaded[0].csr, inputs[0].csr);
        assert_eq!(loaded[1].csr, inputs[1].csr);
        std::fs::remove_dir_all(dir).ok();
    }
}
