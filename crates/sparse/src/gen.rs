//! Deterministic synthetic matrix generators.
//!
//! Substitute for the UFL Sparse Matrix collection the paper draws its
//! training and test inputs from: each generator produces a structural
//! *regime* in which a different SpMV variant tends to win — banded and
//! stencil matrices favour DIA, uniform row lengths favour ELL, power-law
//! rows favour CSR-Vector, and locality-clustered columns favour the
//! texture-cached variants. Every generator is fully determined by its
//! parameters and seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

fn val(rng: &mut StdRng) -> f64 {
    rng.random_range(0.1..2.0)
}

/// Banded matrix: every row has entries on the same set of diagonals
/// (DIA's best case). `half_bw` diagonals on each side of the main are
/// kept with probability `density` (whole diagonals, preserving the DIA
/// structure).
pub fn banded(n: usize, half_bw: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (-(half_bw as i64)..=half_bw as i64)
        .filter(|&o| o == 0 || rng.random_bool(density.clamp(0.0, 1.0)))
        .collect();
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        for &o in &offsets {
            let c = r as i64 + o;
            if c >= 0 && (c as usize) < n {
                coo.push(r, c as usize, val(&mut rng));
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// 2-D 5-point (or 9-point) stencil on an `nx × ny` grid — the classic
/// PDE discretization and the paper's "matrices related to stencils".
pub fn stencil_2d(nx: usize, ny: usize, nine_point: bool) -> CsrMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::new(n, n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let r = idx(x, y);
            coo.push(r, r, if nine_point { 8.0 } else { 4.0 });
            let mut neighbour = |dx: i64, dy: i64| {
                let (cx, cy) = (x as i64 + dx, y as i64 + dy);
                if cx >= 0 && cy >= 0 && (cx as usize) < nx && (cy as usize) < ny {
                    coo.push(r, idx(cx as usize, cy as usize), -1.0);
                }
            };
            neighbour(-1, 0);
            neighbour(1, 0);
            neighbour(0, -1);
            neighbour(0, 1);
            if nine_point {
                neighbour(-1, -1);
                neighbour(1, -1);
                neighbour(-1, 1);
                neighbour(1, 1);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// 3-D 7-point stencil on an `nx × ny × nz` grid.
pub fn stencil_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::new(n, n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = idx(x, y, z);
                coo.push(r, r, 6.0);
                let mut neighbour = |dx: i64, dy: i64, dz: i64| {
                    let (cx, cy, cz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if cx >= 0
                        && cy >= 0
                        && cz >= 0
                        && (cx as usize) < nx
                        && (cy as usize) < ny
                        && (cz as usize) < nz
                    {
                        coo.push(r, idx(cx as usize, cy as usize, cz as usize), -1.0);
                    }
                };
                neighbour(-1, 0, 0);
                neighbour(1, 0, 0);
                neighbour(0, -1, 0);
                neighbour(0, 1, 0);
                neighbour(0, 0, -1);
                neighbour(0, 0, 1);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Uniform row lengths (ELL's best case): every row has exactly `k`
/// entries whose columns fall within `window` of the diagonal
/// (`window >= n` means anywhere).
pub fn uniform_rows(n: usize, k: usize, window: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let (lo, hi) = col_window(r, n, window);
        let span = hi - lo;
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(r); // keep the diagonal
        while cols.len() < k.min(span) {
            cols.insert(lo + rng.random_range(0..span));
        }
        for c in cols {
            coo.push(r, c, val(&mut rng));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Power-law row lengths (CSR-Vector's home turf): most rows are short,
/// a few are very long — think social-network adjacency.
pub fn power_law(n: usize, avg_k: f64, alpha: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    // Discrete Pareto: len = min_k * u^(-1/alpha), scaled so the mean is
    // roughly avg_k.
    let min_k = (avg_k * (alpha - 1.0) / alpha).max(1.0);
    for r in 0..n {
        let u: f64 = rng.random_range(1e-6..1.0);
        let len = (min_k * u.powf(-1.0 / alpha)).min(n as f64 / 2.0).round() as usize;
        let len = len.max(1);
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(r);
        while cols.len() < len {
            cols.insert(rng.random_range(0..n));
        }
        for c in cols {
            coo.push(r, c, val(&mut rng));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Random matrix with binomially varying row lengths around `avg_k`.
pub fn random_uniform(n: usize, avg_k: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let len = 1 + rng.random_range(0..(2 * avg_k).max(2));
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(r);
        while cols.len() < len.min(n) {
            cols.insert(rng.random_range(0..n));
        }
        for c in cols {
            coo.push(r, c, val(&mut rng));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Variable row lengths with strong column locality (the texture-cached
/// CSR variant's sweet spot: too irregular for DIA/ELL, but gathers hit
/// cache).
pub fn clustered(n: usize, k_max: usize, window: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let len = 1 + rng.random_range(0..k_max.max(1));
        let (lo, hi) = col_window(r, n, window);
        let span = hi - lo;
        let mut cols = std::collections::BTreeSet::new();
        cols.insert(r);
        while cols.len() < len.min(span) {
            cols.insert(lo + rng.random_range(0..span));
        }
        for c in cols {
            coo.push(r, c, val(&mut rng));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Block-diagonal matrix with dense random blocks.
pub fn block_diag(n: usize, block: usize, fill: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut start = 0;
    while start < n {
        let end = (start + block).min(n);
        for r in start..end {
            coo.push(r, r, val(&mut rng) + 1.0);
            for c in start..end {
                if c != r && rng.random_bool(fill.clamp(0.0, 1.0)) {
                    coo.push(r, c, val(&mut rng));
                }
            }
        }
        start = end;
    }
    CsrMatrix::from_coo(&coo)
}

/// Symmetrize and diagonally shift into an SPD, diagonally dominant
/// matrix: `B = (A + Aᵀ)/2 + shift·I` with `shift` exceeding the largest
/// off-diagonal row sum. Solver benchmarks build on this.
pub fn make_spd(a: &CsrMatrix, dominance: f64) -> CsrMatrix {
    let t = a.transpose();
    let mut coo = CooMatrix::new(a.n_rows, a.n_cols);
    for r in 0..a.n_rows {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(r, c as usize, v / 2.0);
        }
        let (tc, tv) = t.row(r);
        for (&c, &v) in tc.iter().zip(tv) {
            coo.push(r, c as usize, v / 2.0);
        }
    }
    coo.sort_and_combine();
    let sym = CsrMatrix::from_coo(&coo);
    // Row-wise shift to enforce strict diagonal dominance.
    let mut out = CooMatrix::new(sym.n_rows, sym.n_cols);
    for r in 0..sym.n_rows {
        let (cols, vals) = sym.row(r);
        let off: f64 = cols
            .iter()
            .zip(vals)
            .filter(|(&c, _)| c as usize != r)
            .map(|(_, v)| v.abs())
            .sum();
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != r {
                out.push(r, c as usize, v);
            }
        }
        out.push(r, r, off * dominance.max(1.01) + 1.0);
    }
    CsrMatrix::from_coo(&out)
}

/// A "nearly SPD" matrix with weak diagonals on a fraction of rows —
/// designed so some Krylov solver/preconditioner combinations fail to
/// converge, as happens for 35 of the paper's 94 test systems.
pub fn weak_diagonal(n: usize, k: usize, weak_fraction: f64, seed: u64) -> CsrMatrix {
    let base = make_spd(&random_uniform(n, k, seed), 1.2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let (cols, vals) = base.row(r);
        let weaken = rng.random_bool(weak_fraction.clamp(0.0, 1.0));
        for (&c, &v) in cols.iter().zip(vals) {
            let scale = if weaken && c as usize == r { 0.22 } else { 1.0 };
            coo.push(r, c as usize, v * scale);
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn col_window(r: usize, n: usize, window: usize) -> (usize, usize) {
    if window >= n {
        return (0, n);
    }
    let half = window / 2;
    let lo = r.saturating_sub(half);
    let hi = (lo + window).min(n);
    (hi.saturating_sub(window), hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banded(100, 3, 0.8, 7), banded(100, 3, 0.8, 7));
        assert_eq!(power_law(100, 6.0, 1.8, 9), power_law(100, 6.0, 1.8, 9));
        assert_ne!(random_uniform(100, 5, 1), random_uniform(100, 5, 2));
    }

    #[test]
    fn banded_is_dia_friendly() {
        let m = banded(500, 4, 1.0, 3);
        assert!(
            features::dia_fill(&m) < 1.5,
            "fill {}",
            features::dia_fill(&m)
        );
    }

    #[test]
    fn stencils_have_expected_structure() {
        let m5 = stencil_2d(10, 10, false);
        assert_eq!(m5.n_rows, 100);
        // Interior rows have 5 entries.
        assert_eq!(m5.row_len(55), 5);
        assert!(m5.is_symmetric(1e-12));
        let m7 = stencil_3d(5, 5, 5);
        assert_eq!(m7.row_len(62), 7); // interior voxel
    }

    #[test]
    fn uniform_rows_is_ell_friendly() {
        let m = uniform_rows(400, 8, 400, 11);
        assert!(features::ell_fill(&m) < 1.05);
        assert!(features::row_length_sd(&m) < 0.5);
    }

    #[test]
    fn power_law_has_long_tail() {
        let m = power_law(2000, 8.0, 1.5, 13);
        assert!(features::max_row_deviation(&m) > 20.0);
        assert!(
            features::ell_fill(&m) > 3.0,
            "ell fill {}",
            features::ell_fill(&m)
        );
    }

    #[test]
    fn clustered_stays_in_window() {
        let m = clustered(1000, 12, 64, 17);
        for r in 0..m.n_rows {
            let (cols, _) = m.row(r);
            for &c in cols {
                assert!((c as i64 - r as i64).abs() <= 64);
            }
        }
    }

    #[test]
    fn make_spd_is_symmetric_dominant() {
        let m = make_spd(&random_uniform(200, 6, 5), 1.5);
        assert!(m.is_symmetric(1e-9));
        assert_eq!(features::diag_dominance(&m), 1.0);
    }

    #[test]
    fn weak_diagonal_breaks_dominance_partially() {
        let m = weak_diagonal(300, 5, 0.4, 21);
        let d = features::diag_dominance(&m);
        assert!(d > 0.2 && d < 0.95, "dominance {d}");
    }
}
