//! Diagonal (DIA) format: stores whole diagonals, padding included.
//!
//! DIA is extremely fast for banded/stencil matrices (perfectly coalesced,
//! no column indices to read) but its storage is `n_diags × n_rows`, so a
//! matrix with scattered nonzeros "fills in" catastrophically — exactly the
//! trade-off the paper's `DIA-Fill` feature and `__dia_cutoff` constraint
//! exist to manage.

use crate::csr::CsrMatrix;

/// A sparse matrix in DIA form.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Diagonal offsets (col − row), ascending.
    pub offsets: Vec<i64>,
    /// `data[d * n_rows + r]` is the entry of diagonal `d` at row `r`
    /// (zero where the diagonal leaves the matrix or the entry is absent).
    pub data: Vec<f64>,
}

impl DiaMatrix {
    /// Convert from CSR. Returns `None` when the matrix has more than
    /// `max_diags` distinct diagonals — the storage would explode, which
    /// is what the paper's DIA cutoff constraint guards against.
    pub fn from_csr(csr: &CsrMatrix, max_diags: usize) -> Option<Self> {
        let mut offsets: Vec<i64> = Vec::new();
        {
            let mut seen = std::collections::BTreeSet::new();
            for r in 0..csr.n_rows {
                let (cols, _) = csr.row(r);
                for &c in cols {
                    seen.insert(c as i64 - r as i64);
                    if seen.len() > max_diags {
                        return None;
                    }
                }
            }
            offsets.extend(seen);
        }
        let mut data = vec![0.0; offsets.len() * csr.n_rows];
        for r in 0..csr.n_rows {
            let (cols, vals) = csr.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let off = c as i64 - r as i64;
                let d = offsets.binary_search(&off).expect("offset recorded above");
                data[d * csr.n_rows + r] = v;
            }
        }
        Some(Self {
            n_rows: csr.n_rows,
            n_cols: csr.n_cols,
            offsets,
            data,
        })
    }

    /// Number of stored diagonals.
    pub fn n_diags(&self) -> usize {
        self.offsets.len()
    }

    /// Fill ratio: stored cells (including padding) over true nonzeros.
    pub fn fill_ratio(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            return f64::INFINITY;
        }
        (self.n_diags() * self.n_rows) as f64 / nnz as f64
    }

    /// Reference CPU SpMV: `y = A x`.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols, "x too short");
        let mut y = vec![0.0; self.n_rows];
        for (d, &off) in self.offsets.iter().enumerate() {
            let base = d * self.n_rows;
            #[allow(clippy::needless_range_loop)] // r also offsets the diagonal arithmetic
            for r in 0..self.n_rows {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < self.n_cols {
                    y[r] += self.data[base + r] * x[c as usize];
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn tridiagonal_has_three_offsets() {
        let d = DiaMatrix::from_csr(&tridiag(6), 16).unwrap();
        assert_eq!(d.offsets, vec![-1, 0, 1]);
        assert!((d.fill_ratio(tridiag(6).nnz()) - 18.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = tridiag(8);
        let dia = DiaMatrix::from_csr(&csr, 16).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin() + 1.0).collect();
        let expect = csr.spmv_reference(&x);
        let got = dia.spmv_reference(&x);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn too_many_diagonals_rejected() {
        // An anti-diagonal matrix touches n distinct offsets.
        let n = 32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, n - 1 - i, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        assert!(DiaMatrix::from_csr(&csr, 8).is_none());
        assert!(DiaMatrix::from_csr(&csr, n).is_some());
    }

    #[test]
    fn empty_matrix_fill_is_infinite() {
        let coo = CooMatrix::new(4, 4);
        let csr = CsrMatrix::from_coo(&coo);
        let dia = DiaMatrix::from_csr(&csr, 4).unwrap();
        assert_eq!(dia.fill_ratio(0), f64::INFINITY);
    }
}
