//! Compressed Sparse Row (CSR) format — the workhorse representation.

use crate::coo::CooMatrix;

/// A sparse matrix in CSR form: row pointers into column/value arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s entries.
    pub row_ptr: Vec<usize>,
    /// Column index per nonzero, ascending within each row.
    pub cols: Vec<u32>,
    /// Value per nonzero.
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from a COO matrix (duplicates are combined).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut sorted = coo.clone();
        sorted.sort_and_combine();
        let mut row_ptr = vec![0usize; sorted.n_rows + 1];
        for &r in &sorted.rows {
            row_ptr[r as usize + 1] += 1;
        }
        for r in 0..sorted.n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            n_rows: sorted.n_rows,
            n_cols: sorted.n_cols,
            row_ptr,
            cols: sorted.cols,
            vals: sorted.vals,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Length of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Column/value slices of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.cols[span.clone()], &self.vals[span])
    }

    /// All row lengths.
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.n_rows).map(|r| self.row_len(r)).collect()
    }

    /// The main-diagonal entry of row `r` (0 when absent).
    pub fn diag(&self, r: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(r as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Reference CPU SpMV: `y = A x`.
    ///
    /// # Panics
    /// Panics if `x` is shorter than `n_cols`.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols, "x too short");
        (0..self.n_rows)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Transpose (used by the 1-norm feature and the nonsymmetric solver
    /// tests).
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n_cols, self.n_rows);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(c as usize, r, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Whether the sparsity pattern and values are symmetric (within
    /// `tol`). SPD generators rely on this check in tests.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.cols != self.cols {
            return false;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_builds_row_ptr() {
        let m = sample();
        assert_eq!(m.row_ptr, vec![0, 2, 3, 5]);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row(1), (&[1u32][..], &[3.0][..]));
    }

    #[test]
    fn spmv_matches_dense_computation() {
        let m = sample();
        let y = m.spmv_reference(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn csr_and_coo_spmv_agree() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, (i + 1) as f64);
            coo.push(i, (i + 1) % 4, 0.5);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(coo.spmv_reference(&x), csr.spmv_reference(&x));
    }

    #[test]
    fn diag_extraction() {
        let m = sample();
        assert_eq!(m.diag(0), 1.0);
        assert_eq!(m.diag(1), 3.0);
        assert_eq!(m.diag(2), 5.0);
        // Row without diagonal:
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let m2 = CsrMatrix::from_coo(&coo);
        assert_eq!(m2.diag(0), 0.0);
    }

    #[test]
    fn transpose_involutes() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetry_check() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 2.0);
        assert!(CsrMatrix::from_coo(&coo).is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }
}
