//! Property tests: format conversions and kernels agree with the COO
//! reference on arbitrary matrices.

use nitro_simt::{DeviceConfig, Gpu};
use nitro_sparse::dia::DiaMatrix;
use nitro_sparse::ell::EllMatrix;
use nitro_sparse::spmv::{spmv_csr_vector, spmv_dia, spmv_ell};
use nitro_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// Arbitrary small matrix as a set of triplets.
fn arb_matrix() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..40).prop_flat_map(|n| {
        let entries = prop::collection::vec(((0..n), (0..n), -10.0f64..10.0), 1..120);
        (Just(n), entries)
    })
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in entries {
        coo.push(r, c, v);
    }
    CsrMatrix::from_coo(&coo)
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * x.abs().max(1.0))
}

proptest! {
    /// COO → CSR preserves the SpMV result.
    #[test]
    fn coo_csr_agree((n, entries) in arb_matrix()) {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        prop_assert!(close(&coo.spmv_reference(&x), &csr.spmv_reference(&x)));
    }

    /// CSR row pointers are monotone and bound nnz.
    #[test]
    fn csr_invariants((n, entries) in arb_matrix()) {
        let csr = build(n, &entries);
        prop_assert_eq!(csr.row_ptr.len(), n + 1);
        prop_assert!(csr.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*csr.row_ptr.last().unwrap(), csr.nnz());
        for r in 0..n {
            let (cols, _) = csr.row(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {} unsorted/dup", r);
        }
    }

    /// All format conversions preserve the product, and all simulated
    /// kernels match the reference.
    #[test]
    fn kernels_match_reference((n, entries) in arb_matrix()) {
        let csr = build(n, &entries);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.3).collect();
        let reference = csr.spmv_reference(&x);
        let gpu = Gpu::new(DeviceConfig::fermi_c2050().noiseless());

        let (y, t) = spmv_csr_vector(&csr, &x, &gpu, false);
        prop_assert!(close(&reference, &y));
        prop_assert!(t.elapsed_ns > 0.0);
        let (y, _) = spmv_csr_vector(&csr, &x, &gpu, true);
        prop_assert!(close(&reference, &y));

        if let Some(dia) = DiaMatrix::from_csr(&csr, 4096) {
            prop_assert!(close(&reference, &dia.spmv_reference(&x)));
            let (y, _) = spmv_dia(&dia, &x, &gpu, false);
            prop_assert!(close(&reference, &y));
            let (y, _) = spmv_dia(&dia, &x, &gpu, true);
            prop_assert!(close(&reference, &y));
        }
        if let Some(ell) = EllMatrix::from_csr(&csr, 1e9) {
            prop_assert!(close(&reference, &ell.spmv_reference(&x)));
            let (y, _) = spmv_ell(&ell, &x, &gpu, false);
            prop_assert!(close(&reference, &y));
            let (y, _) = spmv_ell(&ell, &x, &gpu, true);
            prop_assert!(close(&reference, &y));
        }
    }

    /// Transpose twice is the identity for arbitrary matrices.
    #[test]
    fn transpose_involution((n, entries) in arb_matrix()) {
        let csr = build(n, &entries);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }
}
