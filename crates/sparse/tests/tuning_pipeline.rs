//! End-to-end SpMV tuning: the Figure-6 pipeline at miniature scale.

use nitro_core::{ClassifierConfig, Context};
use nitro_simt::DeviceConfig;
use nitro_sparse::collection::spmv_small_sets;
use nitro_sparse::spmv::build_code_variant;
use nitro_tuner::{evaluate_fixed_variant, evaluate_model, Autotuner, ProfileTable};

#[test]
fn nitro_tuned_spmv_beats_every_fixed_variant() {
    let ctx = Context::new();
    let cfg = DeviceConfig::fermi_c2050();
    let mut cv = build_code_variant(&ctx, &cfg);
    // Cheap fixed-parameter SVM keeps this test fast; the full harness
    // grid-searches.
    cv.policy_mut().classifier = ClassifierConfig::Svm {
        c: Some(32.0),
        gamma: Some(2.0),
        grid_search: false,
        cache_bytes: None,
    };

    let (train, test) = spmv_small_sets(0xBEEF);
    let test_table = ProfileTable::build(&cv, &test);

    let (report, summary) = Autotuner::new()
        .tune_and_evaluate(&mut cv, &train, &test_table)
        .expect("tuning succeeds");

    assert_eq!(report.training_inputs, train.len());
    assert!(
        summary.mean_relative_perf > 0.85,
        "Nitro at {:.1}% of exhaustive best",
        summary.mean_relative_perf * 100.0
    );

    // No single variant should match the tuned selector on this mix.
    for v in 0..cv.n_variants() {
        let fixed = evaluate_fixed_variant(&test_table, v);
        assert!(
            fixed.mean_relative_perf < summary.mean_relative_perf + 1e-9,
            "variant {v} at {:.1}% outperformed Nitro at {:.1}%",
            fixed.mean_relative_perf * 100.0,
            summary.mean_relative_perf * 100.0
        );
    }
}

#[test]
fn trained_model_round_trips_through_disk() {
    let dir = std::env::temp_dir().join(format!("nitro-spmv-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ctx = Context::with_model_dir(&dir);
    let cfg = DeviceConfig::fermi_c2050();

    let mut cv = build_code_variant(&ctx, &cfg);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    let (train, test) = spmv_small_sets(0xF00D);
    Autotuner {
        save_model: true,
        ..Default::default()
    }
    .tune(&mut cv, &train)
    .unwrap();

    // A fresh library instance (fresh process in real life) reloads it.
    let mut cv2 = build_code_variant(&ctx, &cfg);
    cv2.load_model().expect("artifact loads and validates");
    let table = ProfileTable::build(&cv2, &test);
    let model = cv2.export_artifact().unwrap().model;
    let s = evaluate_model(&table, &model, cv2.default_variant());
    assert!(
        s.mean_relative_perf > 0.8,
        "reloaded model at {:.2}",
        s.mean_relative_perf
    );
    std::fs::remove_dir_all(dir).ok();
}
