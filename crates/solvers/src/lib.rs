//! # nitro-solvers — the Linear Solvers & Preconditioners benchmark
//!
//! The paper's second benchmark (Figure 4, "Solvers") selects among six
//! (solver, preconditioner) combinations from CULA Sparse. This crate
//! builds the whole substrate from scratch:
//!
//! * [`krylov`] — real Conjugate Gradients and BiCGStab in f64, with
//!   honest breakdown/divergence detection.
//! * [`precond`] — Jacobi, Blocked Jacobi and a factorized
//!   approximate-inverse preconditioner.
//! * [`variants`] — the six code variants with a simulated-GPU cost
//!   model (`iterations × per-iteration kernel time`), returning ∞ when
//!   a combination fails to converge — which is what lets Nitro learn to
//!   "select a converging variant with high accuracy" (§V-A).
//! * [`collection`] — 26 training + 100 test systems whose groups span
//!   the paper's behaviours, including ~6 systems nothing solves.

#![warn(missing_docs)]

pub mod collection;
pub mod krylov;
pub mod precond;
pub mod variants;

pub use krylov::{bicgstab, cg, SolveOutcome};
pub use precond::{ApproxInverse, BlockJacobi, Jacobi, Preconditioner};
pub use variants::{
    build_code_variant, run_variant, run_with_preconditioner, Method, Precond, SolverInput,
};
