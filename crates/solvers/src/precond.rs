//! Preconditioners for the Krylov solvers (paper Figure 4: Jacobi,
//! Blocked Jacobi and Factorized/Approximate Inverse, as in CULA Sparse).

use nitro_sparse::CsrMatrix;

/// A preconditioner: applies `z = M r` with `M ≈ A⁻¹`.
pub trait Preconditioner: Send + Sync {
    /// Name used in variant labels.
    fn name(&self) -> &'static str;

    /// Apply the preconditioner: `z ← M r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Simulated cost of one application, in "SpMV-equivalents" — the
    /// solver benchmark converts this to nanoseconds using its measured
    /// per-SpMV cost.
    fn apply_cost_spmv_equiv(&self) -> f64;

    /// Simulated one-time setup cost, in SpMV-equivalents.
    fn setup_cost_spmv_equiv(&self) -> f64;
}

/// Point Jacobi: `M = D⁻¹`. The cheapest and least robust option —
/// it amplifies rows with tiny diagonals.
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the matrix diagonal; zero diagonals invert to zero
    /// (the corresponding component is left untouched, which typically
    /// stalls convergence — deliberately so, that is Jacobi's weakness).
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = (0..a.n_rows)
            .map(|r| {
                let d = a.diag(r);
                if d.abs() > 1e-300 {
                    1.0 / d
                } else {
                    0.0
                }
            })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }

    fn apply_cost_spmv_equiv(&self) -> f64 {
        0.15
    }

    fn setup_cost_spmv_equiv(&self) -> f64 {
        0.2
    }
}

/// Blocked Jacobi: invert dense diagonal blocks of size `block`.
/// More robust than point Jacobi (captures local coupling), costlier to
/// set up and apply.
pub struct BlockJacobi {
    n: usize,
    block: usize,
    /// Row-major inverse of each block, concatenated.
    inv_blocks: Vec<f64>,
}

impl BlockJacobi {
    /// Extract, densify and invert each diagonal block. Singular blocks
    /// fall back to point-Jacobi behaviour on their rows.
    pub fn new(a: &CsrMatrix, block: usize) -> Self {
        assert!(block >= 1);
        let n = a.n_rows;
        let nb = n.div_ceil(block);
        let mut inv_blocks = vec![0.0; nb * block * block];
        let mut dense = vec![0.0f64; block * block];
        for bi in 0..nb {
            let start = bi * block;
            let end = (start + block).min(n);
            let bs = end - start;
            dense[..block * block].fill(0.0);
            for r in start..end {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let c = c as usize;
                    if c >= start && c < end {
                        dense[(r - start) * block + (c - start)] = v;
                    }
                }
            }
            let out = &mut inv_blocks[bi * block * block..(bi + 1) * block * block];
            if !invert_dense(&dense, bs, block, out) {
                // Singular: diagonal fallback.
                out.fill(0.0);
                for k in 0..bs {
                    let d = dense[k * block + k];
                    out[k * block + k] = if d.abs() > 1e-300 { 1.0 / d } else { 0.0 };
                }
            }
        }
        Self {
            n,
            block,
            inv_blocks,
        }
    }
}

impl Preconditioner for BlockJacobi {
    fn name(&self) -> &'static str {
        "BJacobi"
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let b = self.block;
        let nb = self.n.div_ceil(b);
        for bi in 0..nb {
            let start = bi * b;
            let end = (start + b).min(self.n);
            let inv = &self.inv_blocks[bi * b * b..(bi + 1) * b * b];
            for i in start..end {
                let mut acc = 0.0;
                for j in start..end {
                    acc += inv[(i - start) * b + (j - start)] * r[j];
                }
                z[i] = acc;
            }
        }
    }

    fn apply_cost_spmv_equiv(&self) -> f64 {
        // Dense block rows cost ~block multiplies per unknown.
        0.15 + 0.05 * self.block as f64
    }

    fn setup_cost_spmv_equiv(&self) -> f64 {
        // Block inversion: ~block² work per unknown.
        1.0 + 0.02 * (self.block * self.block) as f64
    }
}

/// Approximate inverse via a damped one-term Neumann expansion:
/// `M = D⁻¹ (2I − A D⁻¹)`, a factorized sparse-approximate-inverse
/// stand-in for CULA's FAInv. Stronger than Jacobi when `ρ(I − D⁻¹A) < 1`,
/// and — like real approximate inverses — it *diverges* when the
/// diagonal scaling is a poor contraction, so some systems defeat it.
pub struct ApproxInverse {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    scratch: parking_lot::Mutex<Vec<f64>>,
}

impl ApproxInverse {
    /// Build from the matrix (keeps a reference copy for the `A D⁻¹ r`
    /// product).
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = (0..a.n_rows)
            .map(|r| {
                let d = a.diag(r);
                if d.abs() > 1e-300 {
                    1.0 / d
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            a: a.clone(),
            inv_diag,
            scratch: parking_lot::Mutex::new(vec![0.0; a.n_rows]),
        }
    }
}

impl Preconditioner for ApproxInverse {
    fn name(&self) -> &'static str {
        "FAInv"
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // z = D⁻¹ (2 r − A D⁻¹ r)
        let mut t = self.scratch.lock();
        for ((ti, &ri), &di) in t.iter_mut().zip(r).zip(&self.inv_diag) {
            *ti = ri * di;
        }
        let at = self.a.spmv_reference(&t);
        for i in 0..r.len() {
            z[i] = self.inv_diag[i] * (2.0 * r[i] - at[i]);
        }
    }

    fn apply_cost_spmv_equiv(&self) -> f64 {
        1.3 // one SpMV plus vector work
    }

    fn setup_cost_spmv_equiv(&self) -> f64 {
        3.0 // pattern analysis + scaling
    }
}

/// Gauss–Jordan inversion of the `bs × bs` top-left of a `stride`-row
/// dense block. Returns false on (near-)singularity.
fn invert_dense(a: &[f64], bs: usize, stride: usize, out: &mut [f64]) -> bool {
    let mut m = a.to_vec();
    out.fill(0.0);
    for k in 0..bs {
        out[k * stride + k] = 1.0;
    }
    for col in 0..bs {
        // Partial pivot.
        let mut pivot_row = col;
        let mut best = m[col * stride + col].abs();
        for r in (col + 1)..bs {
            let v = m[r * stride + col].abs();
            if v > best {
                best = v;
                pivot_row = r;
            }
        }
        if best < 1e-12 {
            return false;
        }
        if pivot_row != col {
            for c in 0..bs {
                m.swap(col * stride + c, pivot_row * stride + c);
                out.swap(col * stride + c, pivot_row * stride + c);
            }
        }
        let piv = m[col * stride + col];
        for c in 0..bs {
            m[col * stride + c] /= piv;
            out[col * stride + c] /= piv;
        }
        for r in 0..bs {
            if r == col {
                continue;
            }
            let f = m[r * stride + col];
            if f != 0.0 {
                for c in 0..bs {
                    m[r * stride + c] -= f * m[col * stride + c];
                    out[r * stride + c] -= f * out[col * stride + c];
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_sparse::gen;

    fn spd(n: usize, seed: u64) -> CsrMatrix {
        gen::make_spd(&gen::random_uniform(n, 4, seed), 1.4)
    }

    fn residual_reduction(p: &dyn Preconditioner, a: &CsrMatrix) -> f64 {
        // One step of preconditioned Richardson: how much does M shrink
        // the error of x = 0 for b = A·1?
        let ones = vec![1.0; a.n_rows];
        let b = a.spmv_reference(&ones);
        let mut z = vec![0.0; a.n_rows];
        p.apply(&b, &mut z);
        // Error after one step: ||1 − z|| / ||1||.
        let err: f64 = z
            .iter()
            .map(|&zi| (1.0 - zi) * (1.0 - zi))
            .sum::<f64>()
            .sqrt();
        err / (a.n_rows as f64).sqrt()
    }

    #[test]
    fn jacobi_inverts_diagonal_matrices_exactly() {
        let mut coo = nitro_sparse::CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, (i + 1) as f64);
        }
        let a = CsrMatrix::from_coo(&coo);
        let j = Jacobi::new(&a);
        let mut z = vec![0.0; 4];
        j.apply(&[1.0, 2.0, 3.0, 4.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn block_jacobi_inverts_block_diagonal_exactly() {
        let a = gen::block_diag(32, 4, 0.9, 3);
        let bj = BlockJacobi::new(&a, 4);
        // For a truly block-diagonal matrix, M = A⁻¹: one application of
        // M to A·x recovers x.
        let x: Vec<f64> = (0..32).map(|i| 1.0 + (i % 5) as f64).collect();
        let b = a.spmv_reference(&x);
        let mut z = vec![0.0; 32];
        bj.apply(&b, &mut z);
        for (xi, zi) in x.iter().zip(&z) {
            assert!((xi - zi).abs() < 1e-8, "{xi} vs {zi}");
        }
    }

    #[test]
    fn stronger_preconditioners_reduce_error_more() {
        let a = spd(200, 11);
        let jac = residual_reduction(&Jacobi::new(&a), &a);
        let fainv = residual_reduction(&ApproxInverse::new(&a), &a);
        assert!(
            fainv < jac,
            "FAInv one-step error {fainv} should beat Jacobi {jac} on dominant SPD"
        );
    }

    #[test]
    fn costs_are_ordered_cheap_to_strong() {
        let a = spd(64, 5);
        let j = Jacobi::new(&a);
        let bj = BlockJacobi::new(&a, 8);
        let f = ApproxInverse::new(&a);
        assert!(j.apply_cost_spmv_equiv() < bj.apply_cost_spmv_equiv());
        assert!(bj.apply_cost_spmv_equiv() < f.apply_cost_spmv_equiv());
    }

    #[test]
    fn zero_diagonal_does_not_produce_nan() {
        let mut coo = nitro_sparse::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let j = Jacobi::new(&a);
        let mut z = vec![0.0; 2];
        j.apply(&[1.0, 1.0], &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dense_inversion_handles_permutation_pivoting() {
        // A matrix requiring pivoting: [[0, 1], [1, 0]].
        let a = [0.0, 1.0, 1.0, 0.0];
        let mut out = [0.0; 4];
        assert!(invert_dense(&a, 2, 2, &mut out));
        assert_eq!(out, [0.0, 1.0, 1.0, 0.0]);
    }
}
