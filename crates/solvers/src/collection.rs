//! Synthetic linear-system collections (paper §IV: 26 training and 100
//! test systems of symmetric sparse matrices from the UFL collection).
//!
//! Groups are engineered to span the paper's observed behaviours:
//! well-conditioned SPD systems every variant solves, weak-diagonal and
//! nonsymmetric systems that defeat specific (solver, preconditioner)
//! combinations, block-structured systems where Blocked Jacobi shines,
//! and a few systems nothing solves (the paper found 6 such among its
//! 100).

use nitro_sparse::{gen, CooMatrix, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::variants::SolverInput;

/// Group names for the solver collection.
pub const GROUPS: [&str; 6] = [
    "spd_dominant",
    "spd_marginal",
    "spd_weak",
    "nonsym_dominant",
    "block",
    "hopeless",
];

/// Generate the `idx`-th system of a group.
pub fn group_system(group: &str, idx: usize, seed: u64) -> CsrMatrix {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9) ^ hash(group));
    let n = rng.random_range(400..1_500);
    match group {
        // Strongly dominant SPD: everything converges fast; the cheapest
        // preconditioner usually wins on time.
        "spd_dominant" => gen::make_spd(
            &gen::random_uniform(n, rng.random_range(3..8), rng.random()),
            rng.random_range(1.5..3.0),
        ),
        // Marginally dominant SPD: many iterations; stronger
        // preconditioners pay off.
        "spd_marginal" => gen::make_spd(
            &gen::random_uniform(n, rng.random_range(4..10), rng.random()),
            rng.random_range(1.01..1.08),
        ),
        // Weak diagonals: Jacobi-family preconditioners misbehave, but a
        // sturdier combination usually still converges (the paper's "35 of
        // 94 systems had at least one non-converging variant").
        "spd_weak" => gen::weak_diagonal(
            n,
            rng.random_range(3..8),
            rng.random_range(0.08..0.35),
            rng.random(),
        ),
        // Nonsymmetric dominant: CG breaks down, BiCGStab succeeds.
        "nonsym_dominant" => nonsym_dominant(
            n,
            rng.random_range(3..8),
            rng.random_range(1.2..2.0),
            rng.random(),
        ),
        // Block structure: Blocked Jacobi captures the coupling.
        "block" => {
            let b = gen::block_diag(n, 8, rng.random_range(0.5..0.9), rng.random());
            // Weak cross-block coupling keeps it solvable but makes point
            // Jacobi slow.
            let noise = gen::banded(n, 12, 0.15, rng.random());
            let scaled = scale(&noise, 0.08);
            gen::make_spd(&add(&b, &scaled), 1.05)
        }
        // Indefinite, non-dominant, nonsymmetric: nothing converges.
        "hopeless" => hopeless(n, rng.random()),
        other => panic!("unknown solver group '{other}'"),
    }
}

/// Nonsymmetric diagonally dominant matrix.
fn nonsym_dominant(n: usize, k: usize, dominance: f64, seed: u64) -> CsrMatrix {
    let base = gen::random_uniform(n, k, seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let (cols, vals) = base.row(r);
        let off: f64 = cols
            .iter()
            .zip(vals)
            .filter(|(&c, _)| c as usize != r)
            .map(|(_, v)| v.abs())
            .sum();
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != r {
                coo.push(r, c as usize, v);
            }
        }
        coo.push(r, r, off * dominance + 0.5);
    }
    CsrMatrix::from_coo(&coo)
}

/// Indefinite, skew-heavy system designed to defeat all six variants.
fn hopeless(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        // Alternating-sign tiny diagonal: indefinite and non-dominant.
        let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
        coo.push(r, r, sign * 0.01);
        for _ in 0..4 {
            let c = rng.random_range(0..n);
            if c != r {
                // Skew component: A[r][c] positive, A[c][r] negative.
                coo.push(r, c, rng.random_range(0.5..1.5));
                coo.push(c, r, -rng.random_range(0.5..1.5));
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn add(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.n_rows, a.n_cols);
    for m in [a, b] {
        for r in 0..m.n_rows {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c as usize, v);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn scale(a: &CsrMatrix, s: f64) -> CsrMatrix {
    let mut out = a.clone();
    for v in out.vals.iter_mut() {
        *v *= s;
    }
    out
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Training set: 26 systems (paper count) spread over the solvable groups
/// plus one hopeless example.
pub fn solver_training_set(seed: u64) -> Vec<SolverInput> {
    let plan: [(&str, usize); 6] = [
        ("spd_dominant", 5),
        ("spd_marginal", 5),
        ("spd_weak", 5),
        ("nonsym_dominant", 5),
        ("block", 5),
        ("hopeless", 1),
    ];
    build_set("train", &plan, 0, seed)
}

/// Test set: 100 systems with ~6 hopeless ones (paper: "no variant was
/// able to solve linear systems represented by 6 matrices").
pub fn solver_test_set(seed: u64) -> Vec<SolverInput> {
    let plan: [(&str, usize); 6] = [
        ("spd_dominant", 19),
        ("spd_marginal", 19),
        ("spd_weak", 19),
        ("nonsym_dominant", 19),
        ("block", 18),
        ("hopeless", 6),
    ];
    build_set("test", &plan, 1000, seed)
}

/// A small train/test pair for unit and integration tests.
pub fn solver_small_sets(seed: u64) -> (Vec<SolverInput>, Vec<SolverInput>) {
    let train: [(&str, usize); 4] = [
        ("spd_dominant", 3),
        ("spd_marginal", 3),
        ("nonsym_dominant", 3),
        ("spd_weak", 3),
    ];
    let test: [(&str, usize); 4] = [
        ("spd_dominant", 4),
        ("spd_marginal", 4),
        ("nonsym_dominant", 4),
        ("spd_weak", 4),
    ];
    (
        build_set("train", &train, 0, seed),
        build_set("test", &test, 500, seed),
    )
}

fn build_set(tag: &str, plan: &[(&str, usize)], idx_base: usize, seed: u64) -> Vec<SolverInput> {
    let mut out = Vec::new();
    for &(group, count) in plan {
        for idx in 0..count {
            let a = group_system(group, idx_base + idx, seed);
            out.push(SolverInput::new(format!("{tag}/{group}/{idx}"), group, a));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{run_variant, VARIANTS};
    use nitro_simt::DeviceConfig;

    #[test]
    fn set_sizes_match_paper() {
        assert_eq!(solver_training_set(1).len(), 26);
        assert_eq!(solver_test_set(1).len(), 100);
    }

    #[test]
    fn sets_are_deterministic() {
        let a = solver_training_set(5);
        let b = solver_training_set(5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.a, y.a);
        }
    }

    #[test]
    fn hopeless_systems_defeat_every_variant() {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let inp = SolverInput::new("h", "hopeless", group_system("hopeless", 0, 3));
        for (m, p, name) in VARIANTS {
            let (out, _) = run_variant(m, p, &inp, &cfg);
            assert!(
                !out.converged,
                "{name} unexpectedly solved a hopeless system"
            );
        }
    }

    #[test]
    fn dominant_spd_solvable_by_all() {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let inp = SolverInput::new("s", "spd", group_system("spd_dominant", 2, 3));
        for (m, p, name) in VARIANTS {
            let (out, _) = run_variant(m, p, &inp, &cfg);
            assert!(out.converged, "{name} failed on dominant SPD");
        }
    }

    #[test]
    fn nonsym_defeats_cg_not_bicgstab() {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let inp = SolverInput::new("ns", "nonsym", group_system("nonsym_dominant", 1, 7));
        use crate::variants::{Method, Precond};
        let (cg_out, _) = run_variant(Method::Cg, Precond::Jacobi, &inp, &cfg);
        let (bi_out, _) = run_variant(Method::BiCgStab, Precond::Jacobi, &inp, &cfg);
        assert!(
            bi_out.converged,
            "BiCGStab should handle nonsymmetric dominant"
        );
        assert!(
            !cg_out.converged || cg_out.iterations > bi_out.iterations,
            "CG should struggle on nonsymmetric systems"
        );
    }
}
