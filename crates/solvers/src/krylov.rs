//! Krylov solvers: Conjugate Gradients and BiCGStab, preconditioned.
//!
//! Real f64 implementations — convergence and breakdown are genuine, which
//! is what makes the paper's Solver benchmark interesting: for 35 of its
//! 94 test systems at least one (solver, preconditioner) combination
//! fails, and Nitro must learn to avoid those.

use nitro_sparse::CsrMatrix;

use crate::precond::Preconditioner;

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOutcome {
    /// Whether the relative residual reached the tolerance.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Preconditioned Conjugate Gradients. Requires SPD `A` (and an SPD
/// preconditioner) for guaranteed convergence; on other systems it may
/// stagnate, diverge or break down — all reported honestly.
pub fn cg(
    a: &CsrMatrix,
    b: &[f64],
    m: &dyn Preconditioner,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, SolveOutcome) {
    let n = a.n_rows;
    let mut x = vec![0.0; n];
    let norm_b = norm(b).max(1e-300);
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);

    for it in 0..max_iterations {
        let rel = norm(&r) / norm_b;
        if !rel.is_finite() || rel > 1e8 {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        if rel <= tolerance {
            return (
                x,
                SolveOutcome {
                    converged: true,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        let ap = a.spmv_reference(&p);
        let pap = dot(&p, &ap);
        if pap.abs() < 1e-300 || !pap.is_finite() {
            // Breakdown (A not SPD along p).
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        m.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        if !beta.is_finite() {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rel = norm(&r) / norm_b;
    (
        x,
        SolveOutcome {
            converged: rel <= tolerance,
            iterations: max_iterations,
            relative_residual: rel,
        },
    )
}

/// Preconditioned BiCGStab: handles nonsymmetric systems; may still break
/// down (`ρ → 0` or `ω → 0`).
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    m: &dyn Preconditioner,
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, SolveOutcome) {
    let n = a.n_rows;
    let mut x = vec![0.0; n];
    let norm_b = norm(b).max(1e-300);
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];

    for it in 0..max_iterations {
        let rel = norm(&r) / norm_b;
        if !rel.is_finite() || rel > 1e8 {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        if rel <= tolerance {
            return (
                x,
                SolveOutcome {
                    converged: true,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        m.apply(&p, &mut phat);
        v = a.spmv_reference(&phat);
        let denom = dot(&r_hat, &v);
        if denom.abs() < 1e-300 {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        alpha = rho / denom;
        let s: Vec<f64> = r.iter().zip(&v).map(|(&ri, &vi)| ri - alpha * vi).collect();
        if norm(&s) / norm_b <= tolerance {
            axpy(alpha, &phat, &mut x);
            return (
                x,
                SolveOutcome {
                    converged: true,
                    iterations: it + 1,
                    relative_residual: norm(&s) / norm_b,
                },
            );
        }
        m.apply(&s, &mut shat);
        let t = a.spmv_reference(&shat);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        omega = dot(&t, &s) / tt;
        if omega.abs() < 1e-300 || !omega.is_finite() {
            return (
                x,
                SolveOutcome {
                    converged: false,
                    iterations: it,
                    relative_residual: rel,
                },
            );
        }
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
    }
    let rel = norm(&r) / norm_b;
    (
        x,
        SolveOutcome {
            converged: rel <= tolerance,
            iterations: max_iterations,
            relative_residual: rel,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{ApproxInverse, BlockJacobi, Jacobi, Preconditioner};
    use nitro_sparse::gen;

    fn check_solution(a: &CsrMatrix, x: &[f64], x_true: &[f64]) {
        for (xi, ti) in x.iter().zip(x_true) {
            assert!((xi - ti).abs() < 1e-3, "{xi} vs {ti} (n = {})", a.n_rows);
        }
    }

    #[test]
    fn cg_solves_spd_with_every_preconditioner() {
        let a = gen::make_spd(&gen::random_uniform(150, 4, 3), 1.5);
        let x_true: Vec<f64> = (0..150).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = a.spmv_reference(&x_true);
        let preconds: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(Jacobi::new(&a)),
            Box::new(BlockJacobi::new(&a, 8)),
            Box::new(ApproxInverse::new(&a)),
        ];
        for p in &preconds {
            let (x, out) = cg(&a, &b, p.as_ref(), 500, 1e-8);
            assert!(out.converged, "{} failed: {:?}", p.name(), out);
            check_solution(&a, &x, &x_true);
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_systems() {
        // Nonsymmetric but diagonally dominant.
        let base = gen::random_uniform(120, 4, 9);
        let a = {
            let mut coo = nitro_sparse::CooMatrix::new(120, 120);
            for r in 0..120 {
                let (cols, vals) = base.row(r);
                let off: f64 = cols
                    .iter()
                    .zip(vals)
                    .filter(|(&c, _)| c as usize != r)
                    .map(|(_, v)| v.abs())
                    .sum();
                for (&c, &v) in cols.iter().zip(vals) {
                    if c as usize != r {
                        coo.push(r, c as usize, v);
                    }
                }
                coo.push(r, r, off * 1.3 + 1.0);
            }
            CsrMatrix::from_coo(&coo)
        };
        assert!(!a.is_symmetric(1e-12));
        let x_true: Vec<f64> = (0..120).map(|i| (i as f64 * 0.1).sin() + 2.0).collect();
        let b = a.spmv_reference(&x_true);
        let j = Jacobi::new(&a);
        let (x, out) = bicgstab(&a, &b, &j, 500, 1e-9);
        assert!(out.converged, "{out:?}");
        check_solution(&a, &x, &x_true);
    }

    #[test]
    fn stronger_preconditioner_converges_in_fewer_iterations() {
        let a = gen::make_spd(&gen::random_uniform(300, 5, 17), 1.1);
        let b = a.spmv_reference(&vec![1.0; 300]);
        let (_, jac) = cg(&a, &b, &Jacobi::new(&a), 1000, 1e-8);
        let (_, fainv) = cg(&a, &b, &ApproxInverse::new(&a), 1000, 1e-8);
        assert!(jac.converged && fainv.converged);
        assert!(
            fainv.iterations < jac.iterations,
            "FAInv {} vs Jacobi {}",
            fainv.iterations,
            jac.iterations
        );
    }

    #[test]
    fn some_combinations_fail_on_indefinite_systems() {
        // This is the behaviour behind the paper's "35 of 94 matrices had
        // at least one non-converging variant": an indefinite system
        // (alternating-sign diagonal) defeats CG.
        let a = crate::collection::group_system("hopeless", 1, 13);
        let b = a.spmv_reference(&vec![1.0; a.n_rows]);
        let (_, out) = cg(&a, &b, &ApproxInverse::new(&a), 300, 1e-8);
        assert!(!out.converged, "expected failure, got {out:?}");
    }

    #[test]
    fn iteration_cap_reported_without_convergence() {
        let a = gen::make_spd(&gen::random_uniform(200, 5, 29), 1.02);
        let b = a.spmv_reference(&vec![1.0; 200]);
        let (_, out) = cg(&a, &b, &Jacobi::new(&a), 3, 1e-14);
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = gen::make_spd(&gen::random_uniform(50, 3, 31), 1.5);
        let b = vec![0.0; 50];
        let (x, out) = cg(&a, &b, &Jacobi::new(&a), 100, 1e-10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
