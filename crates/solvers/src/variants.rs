//! The six (solver, preconditioner) code variants and their cost model.
//!
//! Mirrors the paper's CULA Sparse benchmark (Figure 4): {CG, BiCGStab} ×
//! {Jacobi, Blocked Jacobi, Factorized Approximate Inverse}. Each variant
//! runs the *real* solver in f64; the simulated GPU time is
//!
//! ```text
//! setup + iterations × (spmv_time × (solver SpMVs + precond equivalents)
//!                        + per-iteration kernel-launch overhead)
//! ```
//!
//! with the per-matrix SpMV time measured once on the simulated device.
//! Non-converging runs return ∞, reproducing the paper's treatment (§V-A:
//! six test systems were solved by no variant at all).

use std::sync::OnceLock;

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
use nitro_simt::{DeviceConfig, Gpu};
use nitro_sparse::spmv::spmv_csr_vector;
use nitro_sparse::{features, CsrMatrix};

use crate::krylov::{bicgstab, cg, SolveOutcome};
use crate::precond::{ApproxInverse, BlockJacobi, Jacobi, Preconditioner};

/// Relative-residual tolerance used by all variants.
pub const TOLERANCE: f64 = 1e-6;
/// Iteration cap — beyond this a variant is declared non-converging.
pub const MAX_ITERATIONS: usize = 400;
/// Block size for the Blocked Jacobi preconditioner.
pub const BLOCK_SIZE: usize = 8;

/// One linear system instance.
#[derive(Debug)]
pub struct SolverInput {
    /// Instance name (seeds the simulated device noise).
    pub name: String,
    /// Collection group.
    pub group: String,
    /// The system matrix.
    pub a: CsrMatrix,
    /// The right-hand side (generated as `A·x_true`).
    pub b: Vec<f64>,
    /// Simulation noise seed.
    pub gpu_seed: u64,
    spmv_ns: OnceLock<f64>,
}

impl SolverInput {
    /// Build an instance; the RHS comes from a deterministic `x_true`.
    pub fn new(name: impl Into<String>, group: impl Into<String>, a: CsrMatrix) -> Self {
        let name = name.into();
        let gpu_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
        });
        let x_true: Vec<f64> = (0..a.n_rows)
            .map(|i| 1.0 + ((i as f64) * 0.37).sin() * 0.5)
            .collect();
        let b = a.spmv_reference(&x_true);
        Self {
            name,
            group: group.into(),
            a,
            b,
            gpu_seed,
            spmv_ns: OnceLock::new(),
        }
    }

    /// Simulated time of one SpMV on this matrix (cached; the solver cost
    /// model multiplies it by iteration counts).
    pub fn spmv_ns(&self, cfg: &DeviceConfig) -> f64 {
        *self.spmv_ns.get_or_init(|| {
            let gpu = Gpu::with_seed(cfg.clone().noiseless(), self.gpu_seed);
            let x = vec![1.0; self.a.n_cols];
            spmv_csr_vector(&self.a, &x, &gpu, false).1.elapsed_ns
        })
    }
}

/// Which Krylov method a variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Conjugate Gradients (SPD systems).
    Cg,
    /// BiCGStab (general systems).
    BiCgStab,
}

/// Which preconditioner a variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precond {
    /// Point Jacobi.
    Jacobi,
    /// Blocked Jacobi with [`BLOCK_SIZE`] blocks.
    BlockJacobi,
    /// Factorized approximate inverse.
    FaInv,
}

/// The paper's six variants, in registration order.
pub const VARIANTS: [(Method, Precond, &str); 6] = [
    (Method::Cg, Precond::Jacobi, "CG-Jacobi"),
    (Method::Cg, Precond::BlockJacobi, "CG-BJacobi"),
    (Method::Cg, Precond::FaInv, "CG-FAInv"),
    (Method::BiCgStab, Precond::Jacobi, "BiCGStab-Jacobi"),
    (Method::BiCgStab, Precond::BlockJacobi, "BiCGStab-BJacobi"),
    (Method::BiCgStab, Precond::FaInv, "BiCGStab-FAInv"),
];

/// Run one variant on an input, returning `(outcome, simulated ns)` —
/// ∞ ns when it does not converge.
pub fn run_variant(
    method: Method,
    precond: Precond,
    input: &SolverInput,
    cfg: &DeviceConfig,
) -> (SolveOutcome, f64) {
    let p: Box<dyn Preconditioner> = match precond {
        Precond::Jacobi => Box::new(Jacobi::new(&input.a)),
        Precond::BlockJacobi => Box::new(BlockJacobi::new(&input.a, BLOCK_SIZE)),
        Precond::FaInv => Box::new(ApproxInverse::new(&input.a)),
    };
    let salt = (method as u64) << 8 ^ (precond as u64) << 16;
    run_with_preconditioner(method, p.as_ref(), input, cfg, salt)
}

/// Run a solver with an explicit preconditioner instance. This is the
/// hook the parameter-tuning extension uses: a *family* of Block Jacobi
/// variants with different block sizes is just this function called with
/// different [`BlockJacobi`] instances (see `CodeVariant::add_variant_family`).
pub fn run_with_preconditioner(
    method: Method,
    p: &dyn Preconditioner,
    input: &SolverInput,
    cfg: &DeviceConfig,
    salt: u64,
) -> (SolveOutcome, f64) {
    let (_, outcome) = match method {
        Method::Cg => cg(&input.a, &input.b, p, MAX_ITERATIONS, TOLERANCE),
        Method::BiCgStab => bicgstab(&input.a, &input.b, p, MAX_ITERATIONS, TOLERANCE),
    };
    if !outcome.converged {
        return (outcome, f64::INFINITY);
    }

    let spmv = input.spmv_ns(cfg);
    // Solver structure: CG does 1 SpMV + 1 precond + ~5 vector kernels per
    // iteration; BiCGStab does 2 SpMVs + 2 preconds + ~9 vector kernels.
    let (spmvs, preconds, vec_kernels) = match method {
        Method::Cg => (1.0, 1.0, 5.0),
        Method::BiCgStab => (2.0, 2.0, 9.0),
    };
    let vec_bytes = input.a.n_rows as f64 * 8.0 * 3.0; // read-read-write per kernel
    let vec_ns = vec_kernels * (cfg.launch_overhead_ns + cfg.dram_ns(vec_bytes));
    let per_iter = spmv * (spmvs + preconds * p.apply_cost_spmv_equiv()) + vec_ns;
    let setup = p.setup_cost_spmv_equiv() * spmv + cfg.launch_overhead_ns;

    // Deterministic measurement jitter, consistent with the device model.
    let mut noise_rng = nitro_simt::SplitMix64::new(input.gpu_seed ^ salt);
    let noise = noise_rng.noise_factor(cfg.noise_rel_sigma);

    (
        outcome,
        (setup + outcome.iterations as f64 * per_iter) * noise,
    )
}

/// Assemble the Solvers `code_variant`: 6 variants and the 8 numerical
/// features of Figure 4 (after Bhowmick et al.). The default variant is
/// BiCGStab-Jacobi — the most generally applicable combination.
pub fn build_code_variant(ctx: &Context, cfg: &DeviceConfig) -> CodeVariant<SolverInput> {
    let mut cv = CodeVariant::new("solvers", ctx);
    for (method, precond, name) in VARIANTS {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new(name, move |inp: &SolverInput| {
            run_variant(method, precond, inp, &cfg).1
        }));
    }
    cv.set_default(3); // BiCGStab-Jacobi

    cv.add_input_feature(FnFeature::with_cost(
        "NNZ",
        |i: &SolverInput| i.a.nnz() as f64,
        |i: &SolverInput| features::cost::constant(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Nrows",
        |i: &SolverInput| i.a.n_rows as f64,
        |i: &SolverInput| features::cost::constant(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Trace",
        |i: &SolverInput| features::trace(&i.a),
        |i: &SolverInput| features::cost::per_row(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "DiagAvg",
        |i: &SolverInput| features::diag_avg(&i.a),
        |i: &SolverInput| features::cost::per_row(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "DiagVar",
        |i: &SolverInput| features::diag_var(&i.a),
        |i: &SolverInput| features::cost::per_row(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "DiagDominance",
        |i: &SolverInput| features::diag_dominance(&i.a),
        |i: &SolverInput| features::cost::per_nnz(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "LBw",
        |i: &SolverInput| features::left_bandwidth(&i.a),
        |i: &SolverInput| features::cost::per_row(&i.a),
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Norm1",
        |i: &SolverInput| features::norm1(&i.a),
        |i: &SolverInput| features::cost::per_nnz(&i.a),
    ));
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_sparse::gen;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050().noiseless()
    }

    fn spd_input(n: usize, seed: u64) -> SolverInput {
        SolverInput::new(
            format!("spd{n}-{seed}"),
            "spd",
            gen::make_spd(&gen::random_uniform(n, 4, seed), 1.4),
        )
    }

    #[test]
    fn converging_variants_report_finite_time() {
        let inp = spd_input(150, 3);
        for (m, p, name) in VARIANTS {
            let (out, ns) = run_variant(m, p, &inp, &cfg());
            assert!(out.converged, "{name} failed on dominant SPD");
            assert!(ns.is_finite() && ns > 0.0, "{name} time {ns}");
        }
    }

    #[test]
    fn non_convergence_maps_to_infinite_cost() {
        // Use the collection's engineered "hopeless" group: indefinite and
        // skew-heavy, defeating every variant.
        let inp = SolverInput::new(
            "hopeless",
            "hopeless",
            crate::collection::group_system("hopeless", 0, 7),
        );
        let mut failures = 0;
        for (m, p, _) in VARIANTS {
            let (out, ns) = run_variant(m, p, &inp, &cfg());
            if !out.converged {
                assert_eq!(ns, f64::INFINITY);
                failures += 1;
            }
        }
        assert!(failures > 0, "expected at least one failing combination");
    }

    #[test]
    fn fewer_iterations_can_beat_cheaper_preconditioner() {
        // On a weakly dominant SPD system, FAInv converges in fewer
        // iterations; whether it wins on time is exactly what Nitro must
        // learn. Here we only check both outcomes are finite and ordered
        // by iteration count.
        let inp = spd_input(400, 11);
        let (jac, t_jac) = run_variant(Method::Cg, Precond::Jacobi, &inp, &cfg());
        let (fainv, t_fainv) = run_variant(Method::Cg, Precond::FaInv, &inp, &cfg());
        assert!(jac.converged && fainv.converged);
        assert!(fainv.iterations <= jac.iterations);
        assert!(t_jac.is_finite() && t_fainv.is_finite());
    }

    #[test]
    fn code_variant_matches_paper_inventory() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &cfg());
        assert_eq!(cv.n_variants(), 6);
        assert_eq!(cv.n_features(), 8);
        assert_eq!(cv.variant_names()[0], "CG-Jacobi");
        assert_eq!(cv.default_variant(), Some(3));
    }

    #[test]
    fn variant_times_are_deterministic() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
        let inp = spd_input(100, 5);
        assert_eq!(cv.run_variant(0, &inp), cv.run_variant(0, &inp));
    }
}
