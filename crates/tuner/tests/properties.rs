//! Property tests for the profiling and evaluation layer.

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Objective};
use nitro_tuner::{evaluate_fixed_variant, evaluate_selection, ProfileTable};
use proptest::prelude::*;

/// A code variant whose costs are table-driven: variant v on input i costs
/// `costs[i][v]` (provided through the input itself).
type Row = Vec<f64>;

fn table_cv(n_variants: usize, ctx: &Context) -> CodeVariant<Row> {
    let mut cv = CodeVariant::new("prop", ctx);
    for v in 0..n_variants {
        cv.add_variant(FnVariant::new(format!("v{v}"), move |row: &Row| row[v]));
    }
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("sum", |row: &Row| row.iter().sum()));
    cv
}

proptest! {
    /// The labeled best variant really has the minimal cost, and relative
    /// performance is 1.0 exactly for it and <= 1.0 elsewhere.
    #[test]
    fn best_variant_is_argmin(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..1e6, 3), 1..30)
    ) {
        let ctx = Context::new();
        let cv = table_cv(3, &ctx);
        let table = ProfileTable::build(&cv, &rows);
        for (i, row) in rows.iter().enumerate() {
            let best = table.best_variant(i).expect("finite costs");
            for v in 0..3 {
                prop_assert!(row[best] <= row[v]);
                prop_assert!(table.relative_perf(i, v) <= 1.0 + 1e-12);
            }
            prop_assert!((table.relative_perf(i, best) - 1.0).abs() < 1e-12);
        }
    }

    /// Oracle selection always evaluates to exactly 1.0 mean performance,
    /// and any other selection is never better.
    #[test]
    fn oracle_dominates_every_selection(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..1e6, 4), 1..30),
        picks in prop::collection::vec(0usize..4, 30)
    ) {
        let ctx = Context::new();
        let cv = table_cv(4, &ctx);
        let table = ProfileTable::build(&cv, &rows);
        let oracle: Vec<usize> = table.labels().into_iter().map(|(_, l)| l).collect();
        let oracle_summary = evaluate_selection(&table, &oracle);
        prop_assert!((oracle_summary.mean_relative_perf - 1.0).abs() < 1e-12);
        let arbitrary: Vec<usize> = (0..rows.len()).map(|i| picks[i % picks.len()]).collect();
        let arbitrary_summary = evaluate_selection(&table, &arbitrary);
        prop_assert!(arbitrary_summary.mean_relative_perf <= 1.0 + 1e-12);
    }

    /// Fixed-variant summaries are internally consistent: fraction
    /// thresholds are ordered and mispredictions bounded by n.
    #[test]
    fn summary_invariants(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..1e6, 3), 1..40),
        v in 0usize..3,
    ) {
        let ctx = Context::new();
        let cv = table_cv(3, &ctx);
        let table = ProfileTable::build(&cv, &rows);
        let s = evaluate_fixed_variant(&table, v);
        prop_assert!(s.frac_ge_90 <= s.frac_ge_70 + 1e-12);
        prop_assert!(s.mispredictions <= s.n_inputs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s.mean_relative_perf));
    }

    /// Under a Maximize objective, the best variant is the argmax.
    #[test]
    fn maximize_flips_argmin_to_argmax(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..1e6, 3), 1..20)
    ) {
        let ctx = Context::new();
        let mut cv = table_cv(3, &ctx);
        cv.policy_mut().objective = Objective::Maximize;
        let table = ProfileTable::build(&cv, &rows);
        for (i, row) in rows.iter().enumerate() {
            let best = table.best_variant(i).unwrap();
            for v in 0..3 {
                prop_assert!(row[best] >= row[v]);
            }
        }
    }

    /// Feature-subset slicing preserves costs and labels exactly.
    #[test]
    fn subset_preserves_labels(
        rows in prop::collection::vec(prop::collection::vec(0.1f64..1e6, 3), 1..20)
    ) {
        let ctx = Context::new();
        let mut cv = table_cv(3, &ctx);
        cv.add_input_feature(FnFeature::new("max", |row: &Row| {
            row.iter().cloned().fold(f64::MIN, f64::max)
        }));
        let table = ProfileTable::build(&cv, &rows);
        let sliced = table.with_feature_subset(&[1]);
        prop_assert_eq!(table.labels(), sliced.labels());
        prop_assert_eq!(&table.costs, &sliced.costs);
        prop_assert_eq!(sliced.feature_names.len(), 1);
    }
}
