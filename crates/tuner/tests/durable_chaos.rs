//! Property: durable tuning under *composed* failure — a simulated
//! crash at an arbitrary journal offset (`kill_after_appends`) followed
//! by resume attempts whose appends run under a seeded [`ChaosFs`]
//! fault policy — either converges to the **bit-identical** artifact an
//! uninterrupted run produces, or surfaces a *typed* error (torn-write
//! `Io` or a `NITRO113` retry-exhaustion audit). Never a silently
//! divergent model, never an unrecoverable journal: a final clean run
//! must always succeed from whatever the faulted runs left on disk.

use std::sync::Arc;

use nitro_core::context::temp_model_dir;
use nitro_core::{
    ChaosFs, ClassifierConfig, CodeVariant, Context, FnFeature, FnVariant, NitroError, RetryPolicy,
};
use nitro_store::TuningJournal;
use nitro_tuner::Autotuner;
use proptest::prelude::*;

fn toy(ctx: &Context) -> CodeVariant<f64> {
    let mut cv = CodeVariant::new("toy", ctx);
    cv.add_variant(FnVariant::new("rising", |&x: &f64| 1.0 + x));
    cv.add_variant(FnVariant::new("falling", |&x: &f64| 11.0 - x));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
    cv.policy_mut().classifier = ClassifierConfig::Svm {
        c: Some(10.0),
        gamma: Some(1.0),
        grid_search: false,
        cache_bytes: None,
    };
    cv
}

fn training_inputs() -> Vec<f64> {
    (0..24).map(|i| i as f64 * 0.4).collect()
}

fn artifact_bytes(cv: &CodeVariant<f64>) -> String {
    cv.export_artifact().unwrap().to_json().unwrap()
}

/// A faulted run may fail only in one of the typed ways; anything else
/// (a `ModelMismatch`, say) would mean corruption was misread as a
/// different run's journal.
fn assert_typed(err: &NitroError) -> Result<(), TestCaseError> {
    match err {
        NitroError::Io(_) => Ok(()),
        NitroError::Audit { diagnostics } => {
            prop_assert!(
                diagnostics.iter().all(|d| d.code == "NITRO113"),
                "faulted append may only exhaust retries (NITRO113): {diagnostics:?}"
            );
            Ok(())
        }
        other => Err(TestCaseError::fail(format!(
            "fault surfaced as an untyped error: {other}"
        ))),
    }
}

proptest! {
    #[test]
    fn crashed_then_faulted_tuning_resumes_bit_identical_or_types_the_error(
        seed in 0u64..u64::MAX,
        kill_at in 1u64..60,
        torn_p in 0.0f64..0.35,
        enospc_p in 0.0f64..0.35,
    ) {
        let dir = temp_model_dir("durable-chaos").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let inputs = training_inputs();

        // The uninterrupted run every resumed run must reproduce.
        let mut reference = toy(&ctx);
        Autotuner::new().tune(&mut reference, &inputs).unwrap();
        let reference = artifact_bytes(&reference);

        // Run 1: crash at an arbitrary journal offset. The kill hook
        // tears the tail exactly as a mid-write kill would, so it must
        // surface as Io — or the run finishes because the journal never
        // reached `kill_at` appends.
        {
            let mut cv = toy(&ctx);
            let mut journal = TuningJournal::open(&path).unwrap();
            journal.kill_after_appends(kill_at);
            match Autotuner::new().tune_durable(&mut cv, &inputs, &mut journal) {
                Ok(_) => prop_assert_eq!(&artifact_bytes(&cv), &reference),
                Err(NitroError::Io(_)) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "kill hook must surface as Io, got {other}"
                    )));
                }
            }
        }

        // Runs 2..: resume with chaos-faulted appends. Each attempt
        // either completes bit-identically or fails typed; reopen-time
        // recovery may only ever be a torn tail or a checksum truncation.
        let mut converged = false;
        for attempt in 0..6u64 {
            let mut cv = toy(&ctx);
            let mut journal = TuningJournal::open(&path).unwrap();
            prop_assert!(
                journal
                    .recovery_diagnostics()
                    .iter()
                    .all(|d| d.code == "NITRO070" || d.code == "NITRO071"),
                "unexpected recovery: {:?}",
                journal.recovery_diagnostics()
            );
            journal.set_fs_policy(Some(Arc::new(ChaosFs::with_probs(
                seed.wrapping_add(attempt),
                torn_p,
                enospc_p,
                0.0,
                0.0,
            ))));
            journal.set_retry(RetryPolicy {
                max_attempts: 3,
                backoff_base_ns: 10,
                ..RetryPolicy::default()
            });
            match Autotuner::new().tune_durable(&mut cv, &inputs, &mut journal) {
                Ok(_) => {
                    prop_assert_eq!(&artifact_bytes(&cv), &reference,
                        "a faulted-but-completed resume diverged");
                    converged = true;
                    break;
                }
                Err(err) => assert_typed(&err)?,
            }
        }

        // However the faulted attempts went, a clean resume always
        // converges to the reference artifact from what's on disk.
        if !converged {
            let mut cv = toy(&ctx);
            let mut journal = TuningJournal::open(&path).unwrap();
            Autotuner::new()
                .tune_durable(&mut cv, &inputs, &mut journal)
                .unwrap();
            prop_assert_eq!(&artifact_bytes(&cv), &reference,
                "clean resume after chaos diverged");
        }

        std::fs::remove_dir_all(dir).ok();
    }
}
