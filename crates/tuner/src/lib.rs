//! # nitro-tuner — the Nitro autotuner
//!
//! The offline half of Nitro (the paper's Python component, §II-C): given
//! a configured [`nitro_core::CodeVariant`] and training inputs, it
//!
//! 1. exhaustively profiles variants per input ([`ProfileTable`]),
//! 2. labels each input with its best variant,
//! 3. fits the policy's classifier (grid-searched RBF SVM by default),
//! 4. installs — and optionally persists — the model.
//!
//! With `policy.incremental = Some(StoppingCriterion::…)` the tuner runs
//! the paper's *incremental tuning* instead (§III-B): features are
//! computed for every training input, but exhaustive profiling is paid
//! only for a small seed plus the inputs Best-vs-Second-Best active
//! learning asks for.
//!
//! [`report`] converts model selections into the paper's metric —
//! relative performance against exhaustive search — which is what
//! Figures 5–7 plot.
//!
//! ```
//! use nitro_core::{ClassifierConfig, CodeVariant, Context, FnFeature, FnVariant};
//! use nitro_tuner::Autotuner;
//!
//! let ctx = Context::new();
//! let mut f = CodeVariant::<f64>::new("f", &ctx);
//! f.add_variant(FnVariant::new("a", |&x: &f64| 1.0 + x));
//! f.add_variant(FnVariant::new("b", |&x: &f64| 11.0 - x));
//! f.set_default(0);
//! f.add_input_feature(FnFeature::new("x", |&x: &f64| x));
//! f.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
//!
//! let train: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
//! Autotuner::new().tune(&mut f, &train).unwrap();
//! assert_eq!(f.call(&9.9).unwrap().variant_name, "b");
//! ```

#![warn(missing_docs)]

pub mod autotuner;
pub mod durable;
pub mod online;
pub mod profile;
pub mod report;

pub use autotuner::{Autotuner, PhaseTiming, TuneReport};
pub use online::{OnlineCodeVariant, OnlineOptions, OnlineStats};
pub use profile::ProfileTable;
pub use report::{evaluate_fixed_variant, evaluate_model, evaluate_selection, EvalSummary};
