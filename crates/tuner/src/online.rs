//! Online tuning: learn variant selection *during* deployment.
//!
//! The paper's workflow is offline: an expert runs the autotuner, ships a
//! model, end users consume it. Its conclusion, however, aims at "a
//! mainstream autotuning framework that supports both expert users and
//! the general programming community" — and general users won't run a
//! tuning script. [`OnlineCodeVariant`] closes that gap: it wraps a
//! configured [`CodeVariant`] and, with a (decaying) exploration
//! probability, pays for an exhaustive profile of the incoming input —
//! labeling it on the spot — then periodically retrains the model on
//! everything labeled so far. Selection quality converges toward the
//! offline-trained model without any training phase, in the spirit of
//! STAPL's dynamic selection (paper §I/§VI).

use nitro_core::{CodeVariant, Invocation, NitroError, Result, TrainedModel};
use nitro_ml::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::ProfileTable;

/// Options for online tuning.
#[derive(Debug, Clone, Copy)]
pub struct OnlineOptions {
    /// Initial probability of exploring (exhaustively profiling) a call.
    pub explore_probability: f64,
    /// Multiplied into the exploration probability after every
    /// exploration — exploration decays as the model matures.
    pub explore_decay: f64,
    /// Exploration probability never drops below this (drift guard).
    pub explore_floor: f64,
    /// Retrain after this many new labels.
    pub retrain_every: usize,
    /// Deterministic seed for the exploration coin.
    pub seed: u64,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        Self {
            explore_probability: 0.5,
            explore_decay: 0.9,
            explore_floor: 0.02,
            retrain_every: 4,
            seed: 0x0821_9E37,
        }
    }
}

/// Counters describing an online tuner's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Total dispatched calls.
    pub calls: u64,
    /// Calls that paid for exhaustive exploration.
    pub explorations: u64,
    /// Model retrains performed.
    pub retrains: u64,
}

/// A self-tuning `code_variant`: no offline phase required.
pub struct OnlineCodeVariant<I> {
    inner: CodeVariant<I>,
    options: OnlineOptions,
    explore_probability: f64,
    labeled: Dataset,
    since_retrain: usize,
    coin: StdRng,
    stats: OnlineStats,
}

impl<I: Send + Sync> OnlineCodeVariant<I> {
    /// Wrap a configured (but untrained) code variant.
    pub fn new(inner: CodeVariant<I>, options: OnlineOptions) -> Self {
        let labeled = Dataset::new(inner.n_variants());
        Self {
            inner,
            explore_probability: options.explore_probability,
            options,
            labeled,
            since_retrain: 0,
            coin: StdRng::seed_from_u64(options.seed),
            stats: OnlineStats::default(),
        }
    }

    /// Dispatch one call. Exploration calls run *every* variant (their
    /// returned [`Invocation`] reflects the best one found); exploitation
    /// calls behave exactly like [`CodeVariant::call`].
    pub fn call(&mut self, input: &I) -> Result<Invocation> {
        self.stats.calls += 1;
        let explore =
            !self.inner.has_model() || self.coin.random::<f64>() < self.explore_probability;
        if explore {
            self.stats.explorations += 1;
            self.explore_probability = (self.explore_probability * self.options.explore_decay)
                .max(self.options.explore_floor);
            return self.explore(input);
        }
        self.inner.call(input)
    }

    /// Exhaustively profile the input, record its label, maybe retrain,
    /// and report the best variant found.
    fn explore(&mut self, input: &I) -> Result<Invocation> {
        let (features, feature_cost_ns, costs, _) = ProfileTable::profile_one(&self.inner, input);
        let objective = self.inner.policy().objective;
        let worst = objective.worst();
        let mut best: Option<(usize, f64)> = None;
        for (v, &c) in costs.iter().enumerate() {
            if c == worst || c.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, bc)| objective.better(c, bc)) {
                best = Some((v, c));
            }
        }
        let (variant, cost) = best.ok_or(NitroError::NoSelectionPossible)?;

        self.labeled.push(features.clone(), variant);
        self.since_retrain += 1;
        let classes_seen = self
            .labeled
            .class_counts()
            .iter()
            .filter(|&&c| c > 0)
            .count();
        if self.since_retrain >= self.options.retrain_every && classes_seen >= 1 {
            let model = TrainedModel::train(&self.inner.policy().classifier, &self.labeled);
            self.inner.install_model(model);
            self.since_retrain = 0;
            self.stats.retrains += 1;
        }

        Ok(Invocation {
            variant,
            variant_name: self.inner.variant_names()[variant].clone(),
            objective: cost,
            features,
            feature_cost_ns,
            fell_back_to_default: false,
        })
    }

    /// Life-so-far counters.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// Labels gathered so far.
    pub fn n_labels(&self) -> usize {
        self.labeled.len()
    }

    /// Read access to the wrapped code variant (e.g. to export the model).
    pub fn inner(&self) -> &CodeVariant<I> {
        &self.inner
    }

    /// Unwrap, keeping the learned model installed.
    pub fn into_inner(self) -> CodeVariant<I> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{ClassifierConfig, Context, FnFeature, FnVariant};

    fn toy(ctx: &Context) -> CodeVariant<f64> {
        let mut cv = CodeVariant::new("online-toy", ctx);
        cv.add_variant(FnVariant::new("low", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("high", |&x: &f64| 11.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
        cv
    }

    /// Deterministic stream of inputs spanning both regimes.
    fn stream(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 100) as f64 / 10.0).collect()
    }

    #[test]
    fn first_call_explores_and_installs_a_model_eventually() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        for x in stream(40) {
            online.call(&x).unwrap();
        }
        let stats = online.stats();
        assert!(stats.explorations >= 4, "{stats:?}");
        assert!(stats.retrains >= 1, "{stats:?}");
        assert!(online.inner().has_model());
    }

    #[test]
    fn converges_to_correct_selection_without_offline_tuning() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        // Warm-up traffic.
        for x in stream(120) {
            online.call(&x).unwrap();
        }
        // Fresh traffic must be routed correctly (x < 5 → low, else high).
        let mut correct = 0;
        let probes = [0.5, 2.0, 4.0, 6.0, 8.0, 9.5];
        for &x in &probes {
            let out = online.call(&x).unwrap();
            let expected = if x < 5.0 { "low" } else { "high" };
            // Exploration calls always pick the true best, exploitation
            // uses the model; both should match the expectation by now.
            if out.variant_name == expected {
                correct += 1;
            }
        }
        assert!(correct >= 5, "{correct}/6 correct after online training");
    }

    #[test]
    fn exploration_rate_decays() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(
            toy(&ctx),
            OnlineOptions {
                explore_probability: 1.0,
                explore_decay: 0.5,
                ..Default::default()
            },
        );
        for x in stream(200) {
            online.call(&x).unwrap();
        }
        let s = online.stats();
        // With decay 0.5 from 1.0 and floor 0.02, explorations should be a
        // small fraction of 200 calls.
        assert!(s.explorations < 40, "{s:?}");
        assert!(s.calls == 200);
    }

    #[test]
    fn into_inner_keeps_the_learned_model() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        for x in stream(60) {
            online.call(&x).unwrap();
        }
        let mut cv = online.into_inner();
        assert!(cv.has_model());
        assert_eq!(cv.call(&9.0).unwrap().variant_name, "high");
    }
}
